//! A synthetic substitute for the "Trucks" real dataset (273 delivery-truck
//! trajectories, ~112K segments, from rtreeportal.org — no longer
//! distributable).
//!
//! The quality experiment of the paper (Figure 9) needs exactly three
//! properties from this data, all of which the generator reproduces:
//!
//! 1. many trajectories sharing the same streets, so a compressed query has
//!    plausible *confusers*: trucks move along a grid road network between
//!    random destinations, pausing at stops;
//! 2. irregular sampling: the nominal GPS period is jittered and samples
//!    drop out, so trajectories have varying rates (the situation LCSS/EDR
//!    mishandle);
//! 3. local shape detail for TD-TR to erode: per-sample GPS noise plus
//!    frequent turns.
//!
//! All trucks share the common period `[0, duration]` so that any
//! trajectory's validity covers any query period — the paper's standing
//! assumption.

use mst_prng::Rng;
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryBuilder};

/// Configuration of the fleet generator.
#[derive(Debug, Clone, PartialEq)]
pub struct TrucksConfig {
    /// Number of trucks (the real dataset: 273).
    pub num_trucks: usize,
    /// Common observation period in seconds.
    pub duration: f64,
    /// Nominal GPS sampling period in seconds.
    pub sample_period: f64,
    /// Relative jitter of the sampling period (0.2 = ±20%).
    pub sample_jitter: f64,
    /// Probability that a scheduled sample is lost.
    pub dropout: f64,
    /// Standard deviation of the per-sample position noise, in meters.
    pub gps_noise: f64,
    /// Side length of the square city, in meters.
    pub world_size: f64,
    /// Distance between parallel streets of the road grid, in meters.
    pub grid_spacing: f64,
    /// Number of depots trucks start from.
    pub num_depots: usize,
    /// Per-tour cruising speed range, in m/s.
    pub speed_range: (f64, f64),
    /// Dwell time range at each destination, in seconds.
    pub dwell_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl TrucksConfig {
    /// A configuration matched to the real dataset's shape statistics:
    /// 273 trucks, ~411 samples each (~112K segments total).
    pub fn paper_like(seed: u64) -> Self {
        TrucksConfig {
            num_trucks: 273,
            duration: 12_600.0,
            sample_period: 30.0,
            sample_jitter: 0.2,
            dropout: 0.05,
            gps_noise: 4.0,
            world_size: 10_000.0,
            grid_spacing: 500.0,
            num_depots: 6,
            speed_range: (7.0, 14.0),
            dwell_range: (60.0, 600.0),
            seed,
        }
    }

    /// A small configuration for tests and examples (fast to generate and
    /// index).
    pub fn small(num_trucks: usize, seed: u64) -> Self {
        TrucksConfig {
            num_trucks,
            duration: 3_000.0,
            ..TrucksConfig::paper_like(seed)
        }
    }

    /// Number of grid nodes per axis.
    fn grid_nodes(&self) -> usize {
        (self.world_size / self.grid_spacing) as usize + 1
    }

    /// Generates the fleet.
    pub fn generate(&self) -> Vec<Trajectory> {
        assert!(self.num_trucks > 0);
        assert!(self.duration > 2.0 * self.sample_period);
        assert!((0.0..1.0).contains(&self.dropout));
        let mut rng = Rng::seed_from(self.seed);
        let n = self.grid_nodes();
        // Depots: fixed grid nodes shared by the fleet.
        let depots: Vec<(usize, usize)> = (0..self.num_depots.max(1))
            .map(|_| (rng.usize_below(n), rng.usize_below(n)))
            .collect();
        (0..self.num_trucks)
            .map(|i| {
                let depot = depots[i % depots.len()];
                self.generate_truck(depot, &mut rng)
            })
            .collect()
    }

    /// Builds one truck: a ground-truth tour plan along the grid, then noisy
    /// irregular samples of it.
    fn generate_truck(&self, depot: (usize, usize), rng: &mut Rng) -> Trajectory {
        let plan = self.tour_plan(depot, rng);
        let ground = Trajectory::new(plan).expect("plan has ordered waypoints");

        let mut b = TrajectoryBuilder::new();
        let mut t: f64 = 0.0;
        loop {
            let clamped = t.min(self.duration);
            let is_last = clamped >= self.duration;
            let keep = is_last || b.is_empty() || !rng.chance(self.dropout);
            if keep {
                let p = ground
                    .position_at(clamped)
                    .expect("plan covers [0, duration]");
                let x = (p.x + rng.normal(0.0, self.gps_noise)).clamp(0.0, self.world_size);
                let y = (p.y + rng.normal(0.0, self.gps_noise)).clamp(0.0, self.world_size);
                b.push(SamplePoint::new(clamped, x, y))
                    .expect("sampling times strictly increase");
            }
            if is_last {
                break;
            }
            let jitter = 1.0 + self.sample_jitter * (rng.f64() * 2.0 - 1.0);
            t += self.sample_period * jitter;
        }
        b.build().expect("duration guarantees >= 2 samples")
    }

    /// Ground-truth waypoints: drive Manhattan routes between random grid
    /// nodes, dwell at each destination, until the observation period is
    /// exhausted.
    fn tour_plan(&self, depot: (usize, usize), rng: &mut Rng) -> Vec<SamplePoint> {
        let n = self.grid_nodes();
        let g = self.grid_spacing;
        let node_pos = |(cx, cy): (usize, usize)| (cx as f64 * g, cy as f64 * g);

        let mut waypoints: Vec<SamplePoint> = Vec::new();
        let mut t = 0.0;
        let (mut cx, mut cy) = depot;
        let (x0, y0) = node_pos((cx, cy));
        waypoints.push(SamplePoint::new(t, x0, y0));

        while t <= self.duration {
            // Pick a destination different from the current node, biased
            // towards moderate trip lengths (delivery rounds, not random
            // teleports across the city).
            let reach = (n / 3).max(2) as i64;
            let tx = (cx as i64 + rng.i64_range_inclusive(-reach, reach)).clamp(0, n as i64 - 1)
                as usize;
            let ty = (cy as i64 + rng.i64_range_inclusive(-reach, reach)).clamp(0, n as i64 - 1)
                as usize;
            if tx == cx && ty == cy {
                continue;
            }
            let speed = rng.f64_range(self.speed_range.0, self.speed_range.1);
            // Manhattan route: along x first or y first, at random.
            let corner = if rng.bool() { (tx, cy) } else { (cx, ty) };
            let mut from = (cx, cy);
            for target in [corner, (tx, ty)] {
                if target == from {
                    continue;
                }
                let (fx, fy) = node_pos(from);
                let (gx, gy) = node_pos(target);
                let dist = (gx - fx).abs() + (gy - fy).abs();
                t += dist / speed;
                waypoints.push(SamplePoint::new(t, gx, gy));
                from = target;
            }
            cx = tx;
            cy = ty;
            // Dwell at the destination.
            let dwell = rng.f64_range(self.dwell_range.0, self.dwell_range.1);
            t += dwell;
            let (px, py) = node_pos((cx, cy));
            waypoints.push(SamplePoint::new(t, px, py));
        }
        waypoints
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_fleet_with_common_period() {
        let cfg = TrucksConfig::small(8, 11);
        let fleet = cfg.generate();
        assert_eq!(fleet.len(), 8);
        for t in &fleet {
            assert_eq!(t.start_time(), 0.0);
            assert_eq!(t.end_time(), cfg.duration);
            assert!(t.num_points() > 10);
            for p in t.points() {
                assert!((0.0..=cfg.world_size).contains(&p.x));
                assert!((0.0..=cfg.world_size).contains(&p.y));
            }
        }
    }

    #[test]
    fn sampling_is_irregular() {
        let cfg = TrucksConfig::small(3, 5);
        let fleet = cfg.generate();
        let t = &fleet[0];
        let mut periods: Vec<f64> = t.points().windows(2).map(|w| w[1].t - w[0].t).collect();
        periods.sort_by(f64::total_cmp);
        let min = periods[0];
        let max = periods[periods.len() - 1];
        assert!(
            max / min > 1.3,
            "sampling periods should vary (min {min}, max {max})"
        );
    }

    #[test]
    fn trucks_share_streets() {
        // Different trucks from the same depot must overlap spatially —
        // that is the confusability the quality experiment relies on.
        let cfg = TrucksConfig::small(12, 2);
        let fleet = cfg.generate();
        let a = fleet[0].mbb();
        let overlapping = fleet[1..].iter().filter(|t| t.mbb().intersects(&a)).count();
        assert!(overlapping >= 6, "only {overlapping} overlap");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TrucksConfig::small(4, 77).generate();
        let b = TrucksConfig::small(4, 77).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn paper_like_matches_dataset_scale() {
        // Shrink the fleet but keep per-truck parameters: samples per truck
        // should land near 411 (112203 segments / 273 trucks).
        let cfg = TrucksConfig {
            num_trucks: 6,
            ..TrucksConfig::paper_like(123)
        };
        let fleet = cfg.generate();
        let avg: f64 =
            fleet.iter().map(|t| t.num_points() as f64).sum::<f64>() / fleet.len() as f64;
        assert!(
            (330.0..=480.0).contains(&avg),
            "average samples per truck {avg}"
        );
    }

    #[test]
    fn speeds_are_plausible_for_urban_trucks() {
        let cfg = TrucksConfig::small(5, 9);
        for t in cfg.generate() {
            // GPS noise inflates instantaneous speeds a little; still far
            // below anything absurd.
            assert!(t.max_speed() < 40.0, "max speed {}", t.max_speed());
        }
    }
}
