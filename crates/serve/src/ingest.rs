//! The seam between the serving layer and the durable store.
//!
//! The coalescer flushes each tick's ingest frames as **one** write
//! batch through an [`IngestBackend`]; the backend logs the batch,
//! issues a single group-commit fsync, applies it to the shared shards,
//! and reports per-operation outcomes. [`mst_wal::DurableDatabase`] is
//! the real backend ([`DurableDatabase::apply_independent`] is exactly
//! this contract); the trait erases its `LogStore` type parameter so the
//! mux stays generic over the index substrate only.
//!
//! Visibility is generation-based, inherited from the exec layer:
//! applying an operation publishes a new index-snapshot generation per
//! shard, queries already executing finish on the generation they
//! pinned, and queries admitted after the ingest ack see the new state.
//! No global write lock exists anywhere on this path.

use mst_exec::IngestOp;
use mst_wal::{DurableDatabase, DurableSubstrate, LogStore};

/// Per-operation outcome of a flushed write batch.
pub(crate) type IngestResult = Result<(u64, bool), String>;

/// WAL-side counters a durable backend exposes for the stats report.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WalCounters {
    /// Records appended to the log.
    pub(crate) appends: u64,
    /// Group-commit fsyncs issued.
    pub(crate) fsyncs: u64,
    /// Records replayed by the recovery that opened this database.
    pub(crate) replayed_records: u64,
}

/// A durable write lane the coalescer can flush ingest batches through.
/// The replication accessors expose the committed log so the coalescer
/// can also serve `Subscribe`/`ReplicaAck` streams without knowing the
/// store's types.
pub(crate) trait IngestBackend: Send {
    /// Applies one write batch: validates each operation independently,
    /// logs the valid ones, makes them durable with one fsync, applies
    /// them to the shared in-memory shards, and returns one result per
    /// operation — `Ok((lsn, applied))` or a refusal message. The outer
    /// error is a store-level failure (nothing of the batch was acked).
    fn apply_batch(&mut self, ops: &[IngestOp]) -> Result<Vec<IngestResult>, String>;

    /// Current WAL counters, read after each flush for the stats report.
    fn wal_counters(&self) -> WalCounters;

    /// Highest LSN whose group-commit fsync has returned — the cap on
    /// what replication may ship (un-fsynced appends never leave the
    /// primary).
    fn committed_lsn(&self) -> u64;

    /// First LSN still present in the log; checkpoints raise it. A
    /// subscriber below the floor needs a snapshot, not records.
    fn replication_floor(&self) -> Result<u64, String>;

    /// A full store snapshot encoded at [`Self::committed_lsn`], for
    /// replica bootstrap.
    fn encode_snapshot(&self) -> Result<Vec<u8>, String>;

    /// Committed WAL frames from `from_lsn` onward, verbatim, capped by
    /// `max_bytes` (at least one frame ships if any is available).
    fn read_records(&self, from_lsn: u64, max_bytes: usize) -> Result<Vec<Vec<u8>>, String>;
}

impl<I, S> IngestBackend for DurableDatabase<I, S>
where
    I: DurableSubstrate + Send,
    S: LogStore + Send,
    S::Log: Send,
{
    fn apply_batch(&mut self, ops: &[IngestOp]) -> Result<Vec<IngestResult>, String> {
        let results = self.apply_independent(ops).map_err(|e| e.to_string())?;
        Ok(results
            .into_iter()
            .map(|r| r.map_err(|e| e.to_string()))
            .collect())
    }

    fn wal_counters(&self) -> WalCounters {
        let stats = self.stats();
        WalCounters {
            appends: stats.wal_appends,
            fsyncs: stats.wal_fsyncs,
            replayed_records: stats.replayed_records,
        }
    }

    fn committed_lsn(&self) -> u64 {
        self.applied_lsn()
    }

    fn replication_floor(&self) -> Result<u64, String> {
        DurableDatabase::replication_floor(self).map_err(|e| e.to_string())
    }

    fn encode_snapshot(&self) -> Result<Vec<u8>, String> {
        self.encode_current_snapshot().map_err(|e| e.to_string())
    }

    fn read_records(&self, from_lsn: u64, max_bytes: usize) -> Result<Vec<Vec<u8>>, String> {
        self.read_committed_frames(from_lsn, max_bytes)
            .map_err(|e| e.to_string())
    }
}
