//! The multiplexed serving core: a blocking acceptor, a pool of
//! non-blocking I/O workers, and one coalescer thread that batches the
//! queries pending across **all** connections into single executor
//! submissions.
//!
//! # Thread topology
//!
//! ```text
//! acceptor ──Conn──▶ io worker 0..N ──Event::Query──▶ coalescer
//!                        ▲                               │ try_submit_batch
//!                        └──────WorkerMsg::Response──────┤
//!                                                        ▼
//!                                         executor workers ──Event::Done──▶ (same channel)
//! ```
//!
//! * The **acceptor** owns the listener: cap check, then round-robin
//!   handoff of the raw stream to an I/O worker. It blocks in
//!   `accept()`; shutdown pokes it with a self-connection.
//! * Each **I/O worker** owns its connections outright: it reads
//!   non-blocking, carves frames incrementally
//!   ([`crate::protocol::split_frame_v2`]), answers `Stats`, `Shutdown`,
//!   handshakes and typed errors directly (so cheap requests overtake
//!   slow queries — the out-of-order guarantee), and forwards query
//!   work to the coalescer. A connection at its pipeline depth simply
//!   stops being read — TCP backpressure, no bookkeeping.
//! * The **coalescer** is the single wait point: incoming queries,
//!   finished executions, and worker drain notices all arrive on one
//!   channel. Per tick it serves answer-cache hits, attaches duplicate
//!   concurrent queries to one in-flight execution (dedup), and hands
//!   the whole backlog to the executor in **one**
//!   [`mst_exec::ExecHandle::try_submit_batch`] call.
//!
//! # Drain correctness
//!
//! Each worker sends all its `Query` events and then one `Drained`
//! event on the same channel sender, so per-sender FIFO guarantees the
//! coalescer has seen every forwarded query once all `Drained` notices
//! are in. It then runs the backlog dry, waits for `outstanding == 0`
//! (every forwarded query answered — admitted work is never dropped),
//! signals `CoalescerDone`, and the workers flush + close. A stall
//! bound (consecutive empty timeouts) caps the drain if an executor
//! outcome is lost to a bug, trading a hung shutdown for a loud one.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
// Park intervals and flush pauses below are scheduling inputs, not
// measurements; no clock is ever read in this module.
use std::time::Duration; // invariant: no clock is read; determinism holds

use mst_exec::{
    BatchQuery, IngestOp, OutcomeSink, QueryAnswer, QueryOutcome, RoutedQuery, SubmitError,
};
use mst_search::KmstSubstrate;
use mst_search::QueryProfile;
use mst_trajectory::Trajectory;

use crate::cache::cache_key;
use crate::ingest::IngestBackend;
use crate::protocol::split_frame_v2;
use crate::protocol::{
    classify_first_payload, encode_frame_v2, ErrorCode, FirstFrame, Request, Response, SplitFrame,
    WireError, MAX_FRAME, VERSION,
};
use crate::server::{build_query, initiate_shutdown, ServerStats, Shared};

/// How long an I/O worker parks on its control channel when a pass made
/// no progress. Small: it bounds the latency of *discovering* a new
/// request on an otherwise idle connection.
const IO_PARK: Duration = Duration::from_micros(300);

/// The coalescer's park interval; also the unit of its drain stall
/// bound.
const COALESCER_PARK: Duration = Duration::from_millis(25);

/// Consecutive empty park intervals during a drain before the coalescer
/// declares a lost outcome and force-exits (~5 s).
const STALL_LIMIT: u32 = 200;

/// Cap on unflushed response bytes per connection. A peer that stops
/// reading while answers pile up gets disconnected instead of growing
/// server memory without bound.
const WRITE_BUF_CAP: usize = 8 << 20;

/// Read chunk size for the per-worker scratch buffer.
const READ_CHUNK: usize = 64 << 10;

/// Stop reading a connection whose parse buffer already holds this much
/// (a frame can legitimately be `4 + 8 + MAX_FRAME` bytes).
const READ_BUF_CAP: usize = (MAX_FRAME as usize + 12) * 2;

/// Bounded final flush after `CoalescerDone`: rounds x pause ≈ 1 s.
const DRAIN_FLUSH_ROUNDS: usize = 500;
const DRAIN_FLUSH_PAUSE: Duration = Duration::from_millis(2);

/// Control messages into an I/O worker.
pub(crate) enum WorkerMsg {
    /// A fresh connection from the acceptor.
    Conn(TcpStream),
    /// A response payload to frame and write to one connection.
    Response {
        conn: u64,
        request_id: u64,
        payload: Arc<Vec<u8>>,
    },
    /// The coalescer has answered everything; flush and exit.
    CoalescerDone,
}

/// Events into the coalescer — the single channel it blocks on.
pub(crate) enum Event {
    /// A validated query forwarded by an I/O worker.
    Query {
        worker: usize,
        conn: u64,
        request_id: u64,
        /// Canonical cache key (kind + options + geometry).
        key: Vec<u8>,
        query: BatchQuery,
    },
    /// A validated ingest operation forwarded by an I/O worker. The
    /// coalescer accumulates these into one write batch per tick and
    /// flushes it through the durable backend **before** submitting the
    /// tick's query backlog, so an acked write is visible to every query
    /// admitted after its ack.
    Ingest {
        worker: usize,
        conn: u64,
        request_id: u64,
        op: IngestOp,
    },
    /// A replication fetch forwarded by an I/O worker: a `Subscribe` or
    /// the ack-doubling-as-poll `ReplicaAck`. Served by the coalescer
    /// **after** the tick's write batch flushes, so every batch reflects
    /// the newest committed state.
    Repl {
        worker: usize,
        conn: u64,
        request_id: u64,
        /// First LSN the subscriber still needs.
        from_lsn: u64,
        /// Whether this was a `Subscribe` (a fresh stream; `from_lsn`
        /// below the floor triggers a snapshot bootstrap).
        subscribe: bool,
    },
    /// An execution finished (token, outcome) — delivered by the
    /// executor workers through [`EventSink`].
    Done(u64, QueryOutcome),
    /// A worker stopped forwarding queries (drain has begun). Sent on
    /// the same sender as that worker's `Query` events, so per-sender
    /// FIFO guarantees the coalescer has seen them all first.
    Drained,
}

/// Adapts the coalescer's event channel into the executor's
/// [`OutcomeSink`], so completions land in the same queue as new work
/// and the coalescer has exactly one thing to wait on.
struct EventSink(Sender<Event>);

impl OutcomeSink for EventSink {
    fn complete(&self, token: u64, outcome: QueryOutcome) {
        // invariant: a send failure means the coalescer already exited
        // (forced drain); the outcome is undeliverable by design then
        let _ = self.0.send(Event::Done(token, outcome));
    }
}

/// The acceptor's configuration crumb.
pub(crate) struct MuxConfig {
    pub(crate) max_connections: usize,
}

/// The accept loop: cap check, then round-robin handoff to the I/O
/// workers. Runs on the `mst-serve-accept` thread until shutdown.
pub(crate) fn accept_loop<I>(
    shared: &Arc<Shared<I>>,
    listener: &TcpListener,
    workers: &[Sender<WorkerMsg>],
    cfg: &MuxConfig,
) where
    I: KmstSubstrate + Send + 'static,
{
    let mut next_worker = 0usize;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            drop(stream);
            break;
        }
        // ordering: the live count is advisory admission control; a
        // slightly stale read admits or rejects one connection early,
        // never corrupts state.
        let live = shared.live_conns.load(Ordering::Relaxed);
        if live >= cfg.max_connections {
            ServerStats::bump(&shared.stats.connections_rejected);
            reject_connection(stream, cfg.max_connections);
            continue;
        }
        ServerStats::bump(&shared.stats.connections_accepted);
        // ordering: see the live count read above — same advisory gauge.
        shared.live_conns.fetch_add(1, Ordering::Relaxed);
        if workers.is_empty()
            || workers[next_worker % workers.len()]
                .send(WorkerMsg::Conn(stream))
                .is_err()
        {
            // The worker is gone (tear-down race): undo the registration
            // and let the dropped stream close the connection.
            // ordering: advisory gauge, as above.
            shared.live_conns.fetch_sub(1, Ordering::Relaxed);
        }
        next_worker = next_worker.wrapping_add(1);
    }
    // Dropping the listener here (by returning) refuses later connects.
}

/// Answers an over-cap connection with one v2 `Overloaded` frame at
/// request id 0 and closes it.
fn reject_connection(mut stream: TcpStream, max_connections: usize) {
    let payload = Response::Overloaded {
        queued: 0,
        capacity: u32::try_from(max_connections).unwrap_or(u32::MAX),
    }
    .encode();
    // invariant: the rejected client may already be gone; the rejection
    // frame is best-effort by design
    let _ = crate::protocol::write_frame_v2(&mut stream, 0, &payload);
}

/// One connection's state machine, owned by exactly one I/O worker.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Prefix of `write_buf` already written to the socket.
    written: usize,
    /// Queries forwarded to the coalescer and not yet answered.
    inflight: usize,
    /// Granted pipeline depth (1 until the handshake completes).
    depth: usize,
    /// Handshake completed — subsequent frames are v2.
    handshaken: bool,
    /// The peer can still send (no EOF, no protocol violation).
    read_open: bool,
    /// Close once the write buffer drains (protocol violations answer
    /// first, then disconnect).
    close_after_flush: bool,
    /// Remove this connection now (socket dead or fully closed).
    dead: bool,
}

impl Conn {
    /// `max_depth` seeds `depth` as the negotiable cap; the handshake
    /// replaces it with the granted value.
    fn new(stream: TcpStream, max_depth: u16) -> Self {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            inflight: 0,
            depth: usize::from(max_depth.max(1)),
            handshaken: false,
            read_open: true,
            close_after_flush: false,
            dead: false,
        }
    }

    /// Queues one v2 frame for writing.
    fn queue_v2(&mut self, request_id: u64, payload: &[u8]) {
        if encode_frame_v2(&mut self.write_buf, request_id, payload).is_err() {
            let err = Response::Error {
                code: ErrorCode::Internal,
                message: "answer exceeds the frame cap; narrow the query".into(),
            }
            .encode();
            // invariant: the fallback error frame is tiny and cannot
            // itself exceed the frame cap
            let _ = encode_frame_v2(&mut self.write_buf, request_id, &err);
        }
    }

    /// Queues one legacy v1 frame — only used to answer v1 clients and
    /// pre-handshake garbage with a typed error before closing.
    fn queue_v1(&mut self, response: &Response) {
        let payload = response.encode();
        let len = u32::try_from(payload.len()).unwrap_or(0);
        if len == 0 || len > MAX_FRAME {
            return;
        }
        self.write_buf.extend_from_slice(&len.to_le_bytes());
        self.write_buf.extend_from_slice(&payload);
    }

    /// Drives pending bytes into the socket without blocking. Returns
    /// true when any byte moved.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    self.dead = true;
                    return progress;
                }
                Ok(n) => {
                    self.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return progress;
                }
            }
        }
        if self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
            if self.close_after_flush {
                self.dead = true;
            }
        } else {
            if self.written > (1 << 20) {
                self.write_buf.drain(..self.written);
                self.written = 0;
            }
            if self.write_buf.len() - self.written > WRITE_BUF_CAP {
                // The peer stopped reading while answers piled up.
                self.dead = true;
            }
        }
        progress
    }

    /// Whether this worker pass should read the socket.
    fn wants_read(&self) -> bool {
        self.read_open
            && !self.close_after_flush
            && self.read_buf.len() < READ_BUF_CAP
            && (!self.handshaken || self.inflight < self.depth)
    }
}

/// One I/O worker: owns a set of connections, parses their frames,
/// answers cheap requests directly, forwards queries, writes responses.
pub(crate) fn io_worker_loop<I>(
    worker: usize,
    shared: &Arc<Shared<I>>,
    control: &Receiver<WorkerMsg>,
    events: &Sender<Event>,
    max_depth: u16,
) where
    I: KmstSubstrate + Send + 'static,
{
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_conn_id = 0u64;
    let mut scratch = vec![0u8; READ_CHUNK];
    let mut draining = false;
    let mut drained_sent = false;
    let mut done = false;

    loop {
        let mut progress = false;
        // 1. Drain control messages (new conns, responses, completion).
        loop {
            match control.try_recv() {
                Ok(msg) => {
                    progress = true;
                    handle_msg(
                        msg,
                        &mut conns,
                        &mut next_conn_id,
                        &mut done,
                        shared,
                        max_depth,
                    );
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => {
                    done = true;
                    break;
                }
            }
        }
        if !draining && shared.shutting_down.load(Ordering::SeqCst) {
            draining = true;
        }

        // 2. Per-connection I/O: write what's pending, read what's new,
        //    parse what's complete.
        let mut dead_conns: Vec<u64> = Vec::new();
        for (&id, conn) in conns.iter_mut() {
            if conn.flush() {
                progress = true;
            }
            if conn.dead {
                dead_conns.push(id);
                continue;
            }
            if !draining && conn.wants_read() {
                match conn.stream.read(&mut scratch) {
                    Ok(0) => {
                        conn.read_open = false;
                    }
                    Ok(n) => {
                        conn.read_buf.extend_from_slice(&scratch[..n]);
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                    }
                }
            }
            if !conn.dead && !draining {
                parse_frames(worker, id, conn, shared, events);
            }
            // A half-closed or violated connection lingers only until its
            // answers are out.
            if !conn.dead
                && !conn.read_open
                && conn.inflight == 0
                && conn.written == conn.write_buf.len()
            {
                conn.dead = true;
            }
            if conn.dead {
                dead_conns.push(id);
            }
        }
        for id in dead_conns {
            if conns.remove(&id).is_some() {
                // ordering: advisory connection gauge for admission
                // control; staleness admits/rejects one conn early.
                shared.live_conns.fetch_sub(1, Ordering::Relaxed);
                progress = true;
            }
        }

        // 3. Drain protocol: tell the coalescer our forwarded total once.
        if draining && !drained_sent {
            drained_sent = true;
            // invariant: if the coalescer is already gone the drain is
            // past the point where this notice matters
            let _ = events.send(Event::Drained);
        }

        // 4. Exit after the coalescer's final word: flush what remains
        //    (bounded), close everything, leave.
        if done {
            for _ in 0..DRAIN_FLUSH_ROUNDS {
                let mut all_clear = true;
                for conn in conns.values_mut() {
                    if !conn.dead && conn.written < conn.write_buf.len() {
                        conn.flush();
                        if !conn.dead && conn.written < conn.write_buf.len() {
                            all_clear = false;
                        }
                    }
                }
                if all_clear {
                    break;
                }
                std::thread::sleep(DRAIN_FLUSH_PAUSE);
            }
            let remaining = conns.len();
            conns.clear();
            // ordering: advisory gauge — final teardown bookkeeping.
            shared.live_conns.fetch_sub(remaining, Ordering::Relaxed);
            return;
        }

        // 5. Park briefly when idle; responses on the control channel
        //    wake us immediately.
        if !progress {
            match control.recv_timeout(IO_PARK) {
                Ok(msg) => handle_msg(
                    msg,
                    &mut conns,
                    &mut next_conn_id,
                    &mut done,
                    shared,
                    max_depth,
                ),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => done = true,
            }
        }
    }
}

fn handle_msg<I>(
    msg: WorkerMsg,
    conns: &mut HashMap<u64, Conn>,
    next_conn_id: &mut u64,
    done: &mut bool,
    shared: &Shared<I>,
    max_depth: u16,
) {
    match msg {
        WorkerMsg::Conn(stream) => {
            if stream.set_nonblocking(true).is_err() {
                // The whole design assumes non-blocking sockets; refuse.
                // ordering: advisory connection gauge (see accept_loop).
                shared.live_conns.fetch_sub(1, Ordering::Relaxed);
                return;
            }
            // invariant: nodelay is a latency optimisation; a socket that
            // rejects it still serves correctly
            let _ = stream.set_nodelay(true);
            conns.insert(*next_conn_id, Conn::new(stream, max_depth));
            *next_conn_id += 1;
        }
        WorkerMsg::Response {
            conn,
            request_id,
            payload,
        } => {
            if let Some(c) = conns.get_mut(&conn) {
                c.inflight = c.inflight.saturating_sub(1);
                c.queue_v2(request_id, &payload);
            }
            // A response for a connection that died in the meantime is
            // dropped — the peer is gone.
        }
        WorkerMsg::CoalescerDone => *done = true,
    }
}

/// Parses every complete frame in the connection's read buffer.
fn parse_frames<I>(
    worker: usize,
    conn_id: u64,
    conn: &mut Conn,
    shared: &Shared<I>,
    events: &Sender<Event>,
) where
    I: KmstSubstrate + Send + 'static,
{
    loop {
        if conn.dead || conn.close_after_flush {
            return;
        }
        if !conn.handshaken {
            if !handshake(conn, shared) {
                return;
            }
            continue;
        }
        let (consumed, request_id, decoded) = match split_frame_v2(&conn.read_buf) {
            Ok(None) => return,
            Ok(Some(SplitFrame {
                consumed,
                request_id,
                payload,
            })) => (consumed, request_id, Request::decode(payload)),
            Err(wire) => {
                ServerStats::bump(&shared.stats.malformed_frames);
                let err = Response::Error {
                    code: ErrorCode::Malformed,
                    message: wire.to_string(),
                }
                .encode();
                conn.queue_v2(0, &err);
                conn.close_after_flush = true;
                return;
            }
        };
        conn.read_buf.drain(..consumed);
        let request = match decoded {
            Ok(request) => request,
            Err(wire) => {
                ServerStats::bump(&shared.stats.malformed_frames);
                let err = Response::Error {
                    code: ErrorCode::Malformed,
                    message: wire.to_string(),
                }
                .encode();
                conn.queue_v2(request_id, &err);
                conn.close_after_flush = true;
                return;
            }
        };
        ServerStats::bump(&shared.stats.requests_decoded);
        match request {
            Request::Hello { .. } => {
                ServerStats::bump(&shared.stats.malformed_frames);
                let err = Response::Error {
                    code: ErrorCode::Malformed,
                    message: "hello after the handshake".into(),
                }
                .encode();
                conn.queue_v2(request_id, &err);
                conn.close_after_flush = true;
                return;
            }
            // Answered directly on the I/O thread: a stats probe must
            // overtake slow queries pipelined ahead of it.
            Request::Stats => {
                let payload = Response::Stats(shared.stats_report()).encode();
                conn.queue_v2(request_id, &payload);
            }
            Request::Shutdown => {
                conn.queue_v2(request_id, &Response::ShutdownAck.encode());
                initiate_shutdown(shared);
                return;
            }
            Request::Insert { id, points } => {
                if !ingest_admitted(conn, request_id, shared) {
                    continue;
                }
                match Trajectory::new(points) {
                    Err(e) => {
                        ServerStats::bump(&shared.stats.invalid_queries);
                        let err = Response::Error {
                            code: ErrorCode::InvalidQuery,
                            message: e.to_string(),
                        }
                        .encode();
                        conn.queue_v2(request_id, &err);
                    }
                    Ok(trajectory) => {
                        conn.inflight += 1;
                        // invariant: see the query send below — a dead
                        // coalescer means a forced drain is tearing the
                        // connection down anyway
                        let _ = events.send(Event::Ingest {
                            worker,
                            conn: conn_id,
                            request_id,
                            op: IngestOp::Insert { id, trajectory },
                        });
                    }
                }
            }
            Request::Delete { id } => {
                if !ingest_admitted(conn, request_id, shared) {
                    continue;
                }
                conn.inflight += 1;
                // invariant: as above — undeliverable only under a drain
                let _ = events.send(Event::Ingest {
                    worker,
                    conn: conn_id,
                    request_id,
                    op: IngestOp::Delete { id },
                });
            }
            Request::Subscribe { from_lsn } => {
                if !repl_admitted(conn, request_id, shared) {
                    continue;
                }
                conn.inflight += 1;
                // invariant: as for queries — undeliverable only when a
                // forced drain is tearing the connection down anyway
                let _ = events.send(Event::Repl {
                    worker,
                    conn: conn_id,
                    request_id,
                    from_lsn,
                    subscribe: true,
                });
            }
            Request::ReplicaAck { lsn } => {
                if !repl_admitted(conn, request_id, shared) {
                    continue;
                }
                ServerStats::raise(&shared.stats.repl_acked_lsn, lsn);
                conn.inflight += 1;
                // invariant: as above — undeliverable only under a drain
                let _ = events.send(Event::Repl {
                    worker,
                    conn: conn_id,
                    request_id,
                    from_lsn: lsn.saturating_add(1),
                    subscribe: false,
                });
            }
            query_request => {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    let err = Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    }
                    .encode();
                    conn.queue_v2(request_id, &err);
                    continue;
                }
                // Read-your-writes gate: a query carrying `min_lsn` is
                // admitted only once this server's applied watermark has
                // reached it. Refusal is typed and immediate (never a
                // block on the I/O thread) so the client can retry or
                // fail over.
                if let Some(required) = request_min_lsn(&query_request) {
                    if !shared.watermark.reached(required) {
                        let err = Response::Error {
                            code: ErrorCode::ReplicaLagging {
                                required,
                                watermark: shared.watermark.current(),
                            },
                            message: "replica has not caught up to the requested LSN".into(),
                        }
                        .encode();
                        conn.queue_v2(request_id, &err);
                        continue;
                    }
                }
                let Some(key) = cache_key(&query_request) else {
                    // Unreachable by construction (all four query kinds
                    // have keys), but a typed answer beats a panic.
                    let err = Response::Error {
                        code: ErrorCode::Internal,
                        message: "request has no query key".into(),
                    }
                    .encode();
                    conn.queue_v2(request_id, &err);
                    continue;
                };
                match build_query(query_request) {
                    Err(message) => {
                        ServerStats::bump(&shared.stats.invalid_queries);
                        let err = Response::Error {
                            code: ErrorCode::InvalidQuery,
                            message,
                        }
                        .encode();
                        conn.queue_v2(request_id, &err);
                    }
                    Ok(query) => {
                        conn.inflight += 1;
                        // invariant: a send failure means the coalescer
                        // exited under a forced drain; the connection is
                        // about to be torn down with it
                        let _ = events.send(Event::Query {
                            worker,
                            conn: conn_id,
                            request_id,
                            key,
                            query,
                        });
                    }
                }
            }
        }
    }
}

/// Gate on an ingest frame: a read-only server (no durable backend)
/// answers `ReadOnly`, a draining server answers `ShuttingDown` — both
/// directly on the I/O thread. Returns whether the operation may be
/// forwarded to the coalescer's write lane.
fn ingest_admitted<I>(conn: &mut Conn, request_id: u64, shared: &Shared<I>) -> bool {
    if shared.replica {
        let err = Response::Error {
            code: ErrorCode::NotPrimary,
            message: "this server is a read-only replica; write to the primary".into(),
        }
        .encode();
        conn.queue_v2(request_id, &err);
        return false;
    }
    if !shared.ingest_enabled {
        let err = Response::Error {
            code: ErrorCode::ReadOnly,
            message: "this server has no durable store; start it with one to ingest".into(),
        }
        .encode();
        conn.queue_v2(request_id, &err);
        return false;
    }
    if shared.shutting_down.load(Ordering::SeqCst) {
        let err = Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        }
        .encode();
        conn.queue_v2(request_id, &err);
        return false;
    }
    true
}

/// Gate on a replication frame: a replica answers `NotPrimary` (streams
/// fan out from the primary only), a server with no durable store
/// answers `ReadOnly` (there is no log to ship), a draining server
/// answers `ShuttingDown`. Returns whether the fetch may be forwarded
/// to the coalescer's replication lane.
fn repl_admitted<I>(conn: &mut Conn, request_id: u64, shared: &Shared<I>) -> bool {
    if shared.replica {
        let err = Response::Error {
            code: ErrorCode::NotPrimary,
            message: "this server is a replica; subscribe to the primary".into(),
        }
        .encode();
        conn.queue_v2(request_id, &err);
        return false;
    }
    if !shared.ingest_enabled {
        let err = Response::Error {
            code: ErrorCode::ReadOnly,
            message: "this server has no durable store and therefore no log to ship".into(),
        }
        .encode();
        conn.queue_v2(request_id, &err);
        return false;
    }
    if shared.shutting_down.load(Ordering::SeqCst) {
        let err = Response::Error {
            code: ErrorCode::ShuttingDown,
            message: "server is draining".into(),
        }
        .encode();
        conn.queue_v2(request_id, &err);
        return false;
    }
    true
}

/// The read-your-writes token carried by a query request, if any.
fn request_min_lsn(request: &Request) -> Option<u64> {
    match request {
        Request::Kmst { options, .. }
        | Request::Knn { options, .. }
        | Request::KnnSegments { options, .. }
        | Request::Range { options, .. } => options.min_lsn,
        _ => None,
    }
}

/// Runs the version handshake on the first complete frame. Returns false
/// when more bytes are needed (or the connection is now closing).
fn handshake<I>(conn: &mut Conn, shared: &Shared<I>) -> bool {
    // Both protocol versions open with the same [len: u32] prefix.
    if conn.read_buf.len() < 4 {
        return false;
    }
    let len = u32::from_le_bytes([
        conn.read_buf[0],
        conn.read_buf[1],
        conn.read_buf[2],
        conn.read_buf[3],
    ]);
    if len == 0 || len > MAX_FRAME + 8 {
        ServerStats::bump(&shared.stats.malformed_frames);
        conn.queue_v1(&Response::Error {
            code: ErrorCode::Malformed,
            message: WireError::Oversized(len).to_string(),
        });
        conn.close_after_flush = true;
        return false;
    }
    let total = 4 + len as usize;
    if conn.read_buf.len() < total {
        return false;
    }
    let verdict = classify_first_payload(&conn.read_buf[4..total]);
    match verdict {
        FirstFrame::V2Hello => {
            let decoded = Request::decode(&conn.read_buf[12..total]);
            conn.read_buf.drain(..total);
            match decoded {
                Ok(Request::Hello {
                    min_version,
                    max_version,
                    depth,
                }) => {
                    if min_version > VERSION || max_version < VERSION {
                        let err = Response::Error {
                            code: ErrorCode::UnsupportedVersion {
                                min: VERSION,
                                max: VERSION,
                            },
                            message: format!(
                                "server speaks protocol v{VERSION}; client offered \
                                 v{min_version}..=v{max_version}"
                            ),
                        }
                        .encode();
                        conn.queue_v2(0, &err);
                        conn.close_after_flush = true;
                        return false;
                    }
                    ServerStats::bump(&shared.stats.requests_decoded);
                    let granted = depth.max(1).min(conn_depth_cap(conn));
                    conn.depth = usize::from(granted);
                    conn.handshaken = true;
                    let ack = Response::HelloAck {
                        version: VERSION,
                        depth: granted,
                    }
                    .encode();
                    conn.queue_v2(0, &ack);
                    true
                }
                _ => {
                    ServerStats::bump(&shared.stats.malformed_frames);
                    let err = Response::Error {
                        code: ErrorCode::Malformed,
                        message: "malformed hello".into(),
                    }
                    .encode();
                    conn.queue_v2(0, &err);
                    conn.close_after_flush = true;
                    false
                }
            }
        }
        FirstFrame::V1Request => {
            // A legacy v1 client: answer in *its* framing with a typed
            // error so it fails loudly, never hangs, never sees silence.
            conn.queue_v1(&Response::Error {
                code: ErrorCode::UnsupportedVersion {
                    min: VERSION,
                    max: VERSION,
                },
                message: format!(
                    "this server speaks wire protocol v{VERSION}; \
                     upgrade the client and open with a hello frame"
                ),
            });
            conn.close_after_flush = true;
            false
        }
        FirstFrame::Unknown => {
            ServerStats::bump(&shared.stats.malformed_frames);
            conn.queue_v1(&Response::Error {
                code: ErrorCode::Malformed,
                message: "first frame is neither a v2 hello nor a v1 request".into(),
            });
            conn.close_after_flush = true;
            false
        }
    }
}

/// The depth cap stored on the connection before the handshake is the
/// configured maximum (the worker seeds it there); expressed as a
/// helper so the clamp reads clearly.
fn conn_depth_cap(conn: &Conn) -> u16 {
    u16::try_from(conn.depth).unwrap_or(u16::MAX)
}

/// One in-flight (or backlogged) execution and everyone waiting on it.
struct PendingExec {
    key: Vec<u8>,
    deadline_us: Option<u64>,
    /// Cache generation observed at admission; guards the insert.
    generation: u64,
    waiters: Vec<(usize, u64, u64)>,
    /// The query itself, present while backlogged, taken at submission.
    query: Option<BatchQuery>,
}

/// The coalescer: the single wait point turning per-connection request
/// streams into batched executor submissions and fanned-out responses.
pub(crate) fn coalescer_loop<I>(
    shared: &Arc<Shared<I>>,
    events: &Receiver<Event>,
    sink_tx: Sender<Event>,
    workers: &[Sender<WorkerMsg>],
    queue_capacity: usize,
    mut ingest: Option<Box<dyn IngestBackend>>,
) where
    I: KmstSubstrate + Send + 'static,
{
    let sink: Arc<dyn OutcomeSink> = Arc::new(EventSink(sink_tx));
    let mut pending: HashMap<u64, PendingExec> = HashMap::new();
    let mut dedup: HashMap<(Vec<u8>, Option<u64>), u64> = HashMap::new();
    let mut backlog: VecDeque<u64> = VecDeque::new();
    // Ingest frames accumulated this tick: (worker, conn, request_id, op).
    let mut write_batch: Vec<(usize, u64, u64, IngestOp)> = Vec::new();
    // Replication fetches accumulated this tick:
    // (worker, conn, request_id, from_lsn, subscribe).
    let mut repl_batch: Vec<(usize, u64, u64, u64, bool)> = Vec::new();
    let mut next_token = 0u64;
    // Queries received and not yet answered (any path).
    let mut outstanding = 0usize;
    let mut drained_workers = 0usize;
    let mut stall = 0u32;

    loop {
        let draining = shared.shutting_down.load(Ordering::SeqCst);
        match events.recv_timeout(COALESCER_PARK) {
            Ok(event) => {
                stall = 0;
                handle_event(
                    event,
                    shared,
                    workers,
                    &mut pending,
                    &mut dedup,
                    &mut backlog,
                    &mut write_batch,
                    &mut repl_batch,
                    &mut next_token,
                    &mut outstanding,
                    &mut drained_workers,
                    queue_capacity,
                );
                while let Ok(event) = events.try_recv() {
                    handle_event(
                        event,
                        shared,
                        workers,
                        &mut pending,
                        &mut dedup,
                        &mut backlog,
                        &mut write_batch,
                        &mut repl_batch,
                        &mut next_token,
                        &mut outstanding,
                        &mut drained_workers,
                        queue_capacity,
                    );
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if draining {
                    stall = stall.saturating_add(1);
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }

        // Durable writes first — one group commit for everything this
        // tick — so a query admitted below sees every acked ingest.
        flush_write_batch(
            shared,
            workers,
            &mut ingest,
            &mut write_batch,
            &mut outstanding,
        );

        // Replication fetches next: they run **after** the flush so a
        // subscriber polling right behind a write batch always ships the
        // records that batch just committed.
        serve_replication(
            shared,
            workers,
            &mut ingest,
            &mut repl_batch,
            &mut outstanding,
        );

        // One batched submission per tick: the whole backlog in one
        // queue-lock round-trip; the executor admits a prefix.
        submit_backlog(
            shared,
            workers,
            &sink,
            &mut pending,
            &mut dedup,
            &mut backlog,
            &mut outstanding,
        );

        if draining
            && drained_workers >= workers.len()
            && backlog.is_empty()
            && (outstanding == 0 || stall > STALL_LIMIT)
        {
            break;
        }
        if draining && stall > STALL_LIMIT {
            // Lost-outcome backstop: a hung executor must not hang the
            // drain forever. Whatever is left gets no answer; the flush
            // below still delivers everything already queued.
            break;
        }
    }
    for tx in workers {
        // invariant: a worker that already exited needs no completion
        // notice; the drain proceeds with the rest
        let _ = tx.send(WorkerMsg::CoalescerDone);
    }
}

/// Sends one response payload to the worker owning the connection.
fn respond(
    workers: &[Sender<WorkerMsg>],
    worker: usize,
    conn: u64,
    request_id: u64,
    payload: Arc<Vec<u8>>,
) {
    if let Some(tx) = workers.get(worker) {
        // invariant: a worker gone mid-teardown drops its connections
        // with it; the undeliverable response has no reader anyway
        let _ = tx.send(WorkerMsg::Response {
            conn,
            request_id,
            payload,
        });
    }
}

/// Encodes a response, downgrading an over-cap answer to a typed
/// internal error (mirrors the v1 server's contract).
fn encode_capped(response: &Response) -> Arc<Vec<u8>> {
    let bytes = response.encode();
    if bytes.len() > MAX_FRAME as usize {
        return Arc::new(
            Response::Error {
                code: ErrorCode::Internal,
                message: "answer exceeds the frame cap; narrow the query".into(),
            }
            .encode(),
        );
    }
    Arc::new(bytes)
}

/// Flushes the tick's accumulated ingest operations through the durable
/// backend as **one** write batch (one WAL group commit), answers every
/// writer with its per-operation outcome, and invalidates the answer
/// cache if any operation changed state. Runs before `submit_backlog`
/// each tick, so queries admitted afterwards see the new state; the
/// generation guard in [`crate::cache::AnswerCache::insert_if`] drops
/// any in-flight answer computed against the pre-ingest state.
fn flush_write_batch<I>(
    shared: &Shared<I>,
    workers: &[Sender<WorkerMsg>],
    ingest: &mut Option<Box<dyn IngestBackend>>,
    write_batch: &mut Vec<(usize, u64, u64, IngestOp)>,
    outstanding: &mut usize,
) where
    I: KmstSubstrate + Send + 'static,
{
    if write_batch.is_empty() {
        return;
    }
    let batch = std::mem::take(write_batch);
    *outstanding = outstanding.saturating_sub(batch.len());
    let Some(backend) = ingest.as_mut() else {
        // Unreachable: the I/O workers gate ingest frames on
        // `Shared::ingest_enabled`, which is true only with a backend.
        let payload = encode_capped(&Response::Error {
            code: ErrorCode::ReadOnly,
            message: "this server has no durable store".into(),
        });
        for (worker, conn, request_id, _) in batch {
            respond(workers, worker, conn, request_id, Arc::clone(&payload));
        }
        return;
    };
    let ops: Vec<IngestOp> = batch.iter().map(|(_, _, _, op)| op.clone()).collect();
    let outcome = backend.apply_batch(&ops);
    // Counters, gauges, and the cache settle BEFORE any ack goes out: a
    // client that pipelines a stats probe (answered on the I/O thread)
    // right behind its acked write must see the write reflected. The
    // watermark in particular must advance before acks, so a client
    // threading `Ingested.lsn` into its next read's `min_lsn` is always
    // admitted here on the primary.
    let committed = backend.committed_lsn();
    shared.watermark.advance(committed);
    ServerStats::raise(&shared.stats.repl_committed_lsn, committed);
    ServerStats::raise(&shared.stats.repl_applied_lsn, committed);
    // WAL counters are gauges owned by the backend; mirror, don't add.
    let wal = backend.wal_counters();
    // ordering: monotonic stats gauges; stale reads only undercount a probe
    shared
        .stats
        .wal_appends
        .store(wal.appends, Ordering::Relaxed);
    // ordering: monotonic stats gauges; stale reads only undercount a probe
    shared.stats.wal_fsyncs.store(wal.fsyncs, Ordering::Relaxed);
    shared
        .stats
        .replayed_records
        // ordering: monotonic stats gauges; stale reads only undercount a probe
        .store(wal.replayed_records, Ordering::Relaxed);
    match outcome {
        Ok(results) => {
            let applied_count = results
                .iter()
                .filter(|r| matches!(r, Ok((_, true))))
                .count() as u64;
            if applied_count > 0 {
                ServerStats::bump_by(&shared.stats.ingest_applied, applied_count);
                // An answer computed against the old state must never be
                // served after an ingest ack.
                shared.cache.invalidate();
            }
            for ((worker, conn, request_id, _), result) in batch.into_iter().zip(results) {
                let response = match result {
                    Ok((lsn, applied)) => Response::Ingested { lsn, applied },
                    Err(message) => Response::Error {
                        code: ErrorCode::InvalidQuery,
                        message,
                    },
                };
                respond(workers, worker, conn, request_id, encode_capped(&response));
            }
        }
        Err(message) => {
            // Store-level failure: nothing was acked; every writer in the
            // batch hears the same internal error.
            let payload = encode_capped(&Response::Error {
                code: ErrorCode::Internal,
                message,
            });
            for (worker, conn, request_id, _) in batch {
                respond(workers, worker, conn, request_id, Arc::clone(&payload));
            }
        }
    }
}

/// Cap on record bytes per `Replicate` response. Keeps any one batch
/// well inside the frame cap while still amortising the round trip
/// during catch-up.
const REPL_BATCH_BYTES: usize = 1 << 20;

/// Answers the tick's accumulated replication fetches from the durable
/// backend's committed log. Runs right after `flush_write_batch`, so a
/// poll that raced a write batch onto the same tick ships that batch's
/// records. A subscriber whose `from_lsn` sits below the log floor
/// (checkpoints truncated past it — or the bootstrap sentinel
/// `from_lsn == 0`, since the floor is always at least 1) receives a
/// full snapshot at the committed LSN instead of records. An empty
/// record batch with no snapshot is the heartbeat: it still carries the
/// primary's committed LSN, so lag gauges stay live under a write-idle
/// primary.
fn serve_replication<I>(
    shared: &Shared<I>,
    workers: &[Sender<WorkerMsg>],
    ingest: &mut Option<Box<dyn IngestBackend>>,
    repl_batch: &mut Vec<(usize, u64, u64, u64, bool)>,
    outstanding: &mut usize,
) where
    I: KmstSubstrate + Send + 'static,
{
    if repl_batch.is_empty() {
        return;
    }
    let batch = std::mem::take(repl_batch);
    *outstanding = outstanding.saturating_sub(batch.len());
    let Some(backend) = ingest.as_mut() else {
        // Unreachable: `repl_admitted` gates on `ingest_enabled`.
        let payload = encode_capped(&Response::Error {
            code: ErrorCode::ReadOnly,
            message: "this server has no durable store".into(),
        });
        for (worker, conn, request_id, _, _) in batch {
            respond(workers, worker, conn, request_id, Arc::clone(&payload));
        }
        return;
    };
    let committed = backend.committed_lsn();
    ServerStats::raise(&shared.stats.repl_committed_lsn, committed);
    ServerStats::raise(&shared.stats.repl_applied_lsn, committed);
    for (worker, conn, request_id, from_lsn, _subscribe) in batch {
        let floor = match backend.replication_floor() {
            Ok(floor) => floor,
            Err(message) => {
                let payload = encode_capped(&Response::Error {
                    code: ErrorCode::Internal,
                    message,
                });
                respond(workers, worker, conn, request_id, payload);
                continue;
            }
        };
        let response = if from_lsn < floor {
            // The log no longer reaches back far enough (or this is the
            // bootstrap sentinel): ship a full snapshot instead.
            match backend.encode_snapshot() {
                Ok(snapshot) => Response::Replicate {
                    committed_lsn: committed,
                    snapshot: Some(snapshot),
                    records: Vec::new(),
                },
                Err(message) => Response::Error {
                    code: ErrorCode::Internal,
                    message,
                },
            }
        } else {
            match backend.read_records(from_lsn, REPL_BATCH_BYTES) {
                Ok(records) => {
                    if records.is_empty() {
                        ServerStats::bump(&shared.stats.repl_heartbeats);
                    } else {
                        ServerStats::bump_by(
                            &shared.stats.repl_records_shipped,
                            records.len() as u64,
                        );
                    }
                    Response::Replicate {
                        committed_lsn: committed,
                        snapshot: None,
                        records,
                    }
                }
                Err(message) => Response::Error {
                    code: ErrorCode::Internal,
                    message,
                },
            }
        };
        respond(workers, worker, conn, request_id, encode_capped(&response));
    }
}

#[allow(clippy::too_many_arguments)]
fn handle_event<I>(
    event: Event,
    shared: &Shared<I>,
    workers: &[Sender<WorkerMsg>],
    pending: &mut HashMap<u64, PendingExec>,
    dedup: &mut HashMap<(Vec<u8>, Option<u64>), u64>,
    backlog: &mut VecDeque<u64>,
    write_batch: &mut Vec<(usize, u64, u64, IngestOp)>,
    repl_batch: &mut Vec<(usize, u64, u64, u64, bool)>,
    next_token: &mut u64,
    outstanding: &mut usize,
    drained_workers: &mut usize,
    queue_capacity: usize,
) where
    I: KmstSubstrate + Send + 'static,
{
    match event {
        Event::Query {
            worker,
            conn,
            request_id,
            key,
            query,
        } => {
            *outstanding += 1;
            // 1. Answer cache: a certified answer for the same canonical
            //    query goes straight back out.
            if let Some(hit) = shared.cache.lookup(&key) {
                ServerStats::bump(&shared.stats.cache_hits);
                ServerStats::bump(&shared.stats.queries_completed);
                let delta = QueryProfile {
                    answer_cache_hits: 1,
                    ..QueryProfile::default()
                };
                if let Ok(mut profile) = shared.profile.lock() {
                    profile.merge(&delta);
                }
                respond(workers, worker, conn, request_id, hit);
                *outstanding -= 1;
                return;
            }
            ServerStats::bump(&shared.stats.cache_misses);
            // 2. Dedup: identical queries (same canonical key AND same
            //    deadline class) concurrently in flight share one
            //    execution. The deadline rides in the dedup key so a
            //    no-deadline query can never be answered by a
            //    potentially-degraded deadline-bearing execution.
            let deadline_us = query.options().deadline_us;
            let dk = (key.clone(), deadline_us);
            if let Some(&token) = dedup.get(&dk) {
                if let Some(p) = pending.get_mut(&token) {
                    p.waiters.push((worker, conn, request_id));
                    return;
                }
            }
            // 3. A new execution: backlog it for the next batch
            //    submission, unless the backlog is already full — then
            //    the newest query answers a typed overload.
            if backlog.len() >= queue_capacity {
                ServerStats::bump(&shared.stats.overload_rejections);
                let queued =
                    u32::try_from(backlog.len() + shared.exec.queue_depth()).unwrap_or(u32::MAX);
                let capacity = u32::try_from(queue_capacity).unwrap_or(u32::MAX);
                let payload = encode_capped(&Response::Overloaded { queued, capacity });
                respond(workers, worker, conn, request_id, payload);
                *outstanding -= 1;
                return;
            }
            let token = *next_token;
            *next_token += 1;
            pending.insert(
                token,
                PendingExec {
                    key,
                    deadline_us,
                    generation: shared.cache.generation(),
                    waiters: vec![(worker, conn, request_id)],
                    query: Some(query),
                },
            );
            dedup.insert(dk, token);
            backlog.push_back(token);
        }
        Event::Ingest {
            worker,
            conn,
            request_id,
            op,
        } => {
            *outstanding += 1;
            write_batch.push((worker, conn, request_id, op));
        }
        Event::Repl {
            worker,
            conn,
            request_id,
            from_lsn,
            subscribe,
        } => {
            *outstanding += 1;
            repl_batch.push((worker, conn, request_id, from_lsn, subscribe));
        }
        Event::Done(token, mut outcome) => {
            let Some(entry) = pending.remove(&token) else {
                return;
            };
            dedup.remove(&(entry.key.clone(), entry.deadline_us));
            let waiters = entry.waiters;
            ServerStats::bump_by(&shared.stats.queries_completed, waiters.len() as u64);
            if outcome.degraded {
                ServerStats::bump_by(&shared.stats.queries_degraded, waiters.len() as u64);
            }
            // Every waiter of this execution was a cache miss; the
            // profile's miss count mirrors the stats counter.
            outcome.profile.answer_cache_misses = waiters.len() as u64;
            if let Ok(mut profile) = shared.profile.lock() {
                profile.merge(&outcome.profile);
            }
            let degraded = outcome.degraded;
            let response = match outcome.answer {
                QueryAnswer::Kmst(matches) => Response::Kmst { degraded, matches },
                QueryAnswer::Knn(matches) => Response::Knn { degraded, matches },
                QueryAnswer::Segments(matches) => Response::Segments { degraded, matches },
                QueryAnswer::Range(entries) => Response::Range { degraded, entries },
            };
            let payload = encode_capped(&response);
            // Only certified answers are cached, and only if no
            // invalidation happened since this query was admitted.
            if !degraded {
                shared
                    .cache
                    .insert_if(entry.key, Arc::clone(&payload), entry.generation);
            }
            *outstanding = outstanding.saturating_sub(waiters.len());
            for (worker, conn, request_id) in waiters {
                respond(workers, worker, conn, request_id, Arc::clone(&payload));
            }
        }
        Event::Drained => {
            *drained_workers += 1;
        }
    }
}

/// Hands the entire backlog to the executor in one batched call. The
/// admitted prefix leaves the backlog; capacity rejections stay (in
/// order) for the next tick; shutdown rejections answer typed errors.
fn submit_backlog<I>(
    shared: &Shared<I>,
    workers: &[Sender<WorkerMsg>],
    sink: &Arc<dyn OutcomeSink>,
    pending: &mut HashMap<u64, PendingExec>,
    dedup: &mut HashMap<(Vec<u8>, Option<u64>), u64>,
    backlog: &mut VecDeque<u64>,
    outstanding: &mut usize,
) where
    I: KmstSubstrate + Send + 'static,
{
    if backlog.is_empty() {
        return;
    }
    let mut batch: Vec<RoutedQuery> = Vec::with_capacity(backlog.len());
    let mut tokens: Vec<u64> = Vec::with_capacity(backlog.len());
    while let Some(token) = backlog.pop_front() {
        let Some(entry) = pending.get_mut(&token) else {
            continue;
        };
        let Some(query) = entry.query.take() else {
            continue;
        };
        tokens.push(token);
        batch.push(RoutedQuery { token, query });
    }
    if batch.is_empty() {
        return;
    }
    let admission = shared.exec.try_submit_batch(batch, sink);
    ServerStats::bump_by(&shared.stats.queries_admitted, admission.admitted as u64);
    for rejected in admission.rejected {
        match rejected.reason {
            SubmitError::Overloaded { .. } => {
                // Not dropped, not client-rejected: the query keeps its
                // backlog slot and rides the next tick's batch.
                if let Some(entry) = pending.get_mut(&rejected.token) {
                    entry.query = Some(rejected.query);
                    backlog.push_back(rejected.token);
                }
            }
            SubmitError::ShuttingDown => {
                // The executor is gone (forced teardown): answer typed.
                if let Some(entry) = pending.remove(&rejected.token) {
                    dedup.remove(&(entry.key.clone(), entry.deadline_us));
                    let payload = encode_capped(&Response::Error {
                        code: ErrorCode::ShuttingDown,
                        message: "server is draining".into(),
                    });
                    *outstanding = outstanding.saturating_sub(entry.waiters.len());
                    for (worker, conn, request_id) in entry.waiters {
                        respond(workers, worker, conn, request_id, Arc::clone(&payload));
                    }
                }
            }
        }
    }
}
