//! The wire protocol: a small length-prefixed binary framing over TCP.
//!
//! # Framing
//!
//! Protocol **v1** (legacy, one request in flight per connection) frames
//! every message as:
//!
//! ```text
//! [payload_len: u32 le] [opcode: u8] [body: payload_len - 1 bytes]
//! ```
//!
//! Protocol **v2** (current) adds a request id so a connection can keep
//! many requests in flight and receive answers out of order:
//!
//! ```text
//! [frame_len: u32 le] [request_id: u64 le] [opcode: u8] [body]
//! ```
//!
//! `frame_len` counts the request id, the opcode byte and the body. A v2
//! session opens with a [`Request::Hello`] carrying [`MAGIC`] at request
//! id 0; the server answers [`Response::HelloAck`] with the negotiated
//! pipeline depth. Every later response echoes the request id of the
//! request it answers — responses to different ids may arrive in any
//! order, responses to one id never split.
//!
//! Both framings cap the payload at [`MAX_FRAME`]; a larger prefix is
//! rejected *before* any allocation, so a hostile 4 GiB length cannot
//! balloon server memory. All integers are little-endian; all
//! coordinates are IEEE 754 doubles by bit pattern.
//!
//! # Opcodes
//!
//! | opcode | direction | message |
//! |--------|-----------|---------|
//! | `0x01` | request   | k-MST query (trajectory + options) |
//! | `0x02` | request   | trajectory-kNN query (trajectory + options) |
//! | `0x03` | request   | point-kNN / nearest-segments query (point + options) |
//! | `0x04` | request   | 3D range query (box + options) |
//! | `0x05` | request   | server stats |
//! | `0x06` | request   | graceful shutdown |
//! | `0x07` | request   | insert a trajectory (online ingest, v2 only) |
//! | `0x08` | request   | delete a trajectory (online ingest, v2 only) |
//! | `0x09` | request   | subscribe to the replication stream (v2 only) |
//! | `0x0A` | request   | replica ack / poll for more records (v2 only) |
//! | `0x0F` | request   | hello (version negotiation, v2 only) |
//! | `0x81` | response  | k-MST matches |
//! | `0x82` | response  | kNN matches |
//! | `0x83` | response  | segment matches |
//! | `0x84` | response  | range hits |
//! | `0x85` | response  | stats report |
//! | `0x86` | response  | shutdown acknowledged |
//! | `0x87` | response  | ingest acknowledged (durable LSN) |
//! | `0x88` | response  | replication batch (snapshot and/or raw WAL frames) |
//! | `0x8F` | response  | hello acknowledged (v2 only) |
//! | `0xE0` | response  | overloaded (admission rejected — backpressure) |
//! | `0xE1` | response  | typed error |
//!
//! # Decoding discipline
//!
//! Decoding is *structural only* and total: every read is bounds-checked
//! ([`Cursor`]), unknown opcodes and trailing bytes are typed errors, and
//! nothing panics on any byte sequence (the workspace's R1 gate covers
//! this crate). Semantic validation — monotonic timestamps, coverage of
//! the query period — happens server-side through the same
//! [`mst_search::Query`] builders the embedded API uses, so a structurally
//! valid but semantically bad query gets [`ErrorCode::InvalidQuery`]
//! while a malformed frame gets [`ErrorCode::Malformed`] and closes the
//! connection.

use mst_index::{KnnMatch, LeafEntry};
use mst_search::{MstMatch, NnMatch, QueryOptions, Substrate};
use mst_trajectory::{Mbb, Point, SamplePoint, Segment, TimeInterval, TrajectoryId};

/// Hard cap on a frame's payload (opcode + body): 4 MiB.
pub const MAX_FRAME: u32 = 4 << 20;

/// The magic the [`Request::Hello`] body opens with: the ASCII bytes
/// `MST2` read as a little-endian `u32`. Distinguishes a v2 handshake
/// from v1 traffic and from random bytes hitting the port.
pub const MAGIC: u32 = u32::from_le_bytes(*b"MST2");

/// The protocol version this build speaks.
pub const VERSION: u16 = 2;

/// Bytes a v2 frame spends on its request id, on top of the payload.
const V2_OVERHEAD: u32 = 8;

/// Why a frame failed to decode (or a stream failed mid-frame). Every
/// variant is a protocol violation or transport fault, never a panic.
#[derive(Debug)]
pub enum WireError {
    /// The stream ended inside a frame, or a body was shorter than its
    /// fields claim.
    Truncated,
    /// A length prefix exceeded [`MAX_FRAME`].
    Oversized(u32),
    /// An opcode byte that names no message.
    BadOpcode(u8),
    /// A structurally invalid body (bad flag byte, impossible count,
    /// invalid interval or segment).
    BadPayload(&'static str),
    /// Bytes left over after a complete message was decoded.
    TrailingBytes,
    /// The transport failed.
    Io(std::io::Error),
}

impl PartialEq for WireError {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (WireError::Truncated, WireError::Truncated) => true,
            (WireError::Oversized(a), WireError::Oversized(b)) => a == b,
            (WireError::BadOpcode(a), WireError::BadOpcode(b)) => a == b,
            (WireError::BadPayload(a), WireError::BadPayload(b)) => a == b,
            (WireError::TrailingBytes, WireError::TrailingBytes) => true,
            (WireError::Io(a), WireError::Io(b)) => a.kind() == b.kind(),
            _ => false,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized(len) => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadPayload(what) => write!(f, "malformed payload: {what}"),
            WireError::TrailingBytes => write!(f, "trailing bytes after message"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// A bounds-checked read cursor over a frame payload. Every accessor
/// returns [`WireError::Truncated`] instead of slicing out of range.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn try_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn try_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn try_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(b);
        Ok(u32::from_le_bytes(raw))
    }

    fn try_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn try_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.try_u64()?))
    }

    /// Asserts the message consumed its whole frame.
    fn finish(self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes)
        }
    }
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_count(out: &mut Vec<u8>, len: usize) -> u32 {
    let count = u32::try_from(len).unwrap_or(u32::MAX);
    put_u32(out, count);
    count
}

/// Reads one `u32` element count and pre-checks it against the bytes
/// actually present (`elem_size` each), so a hostile count cannot drive a
/// huge allocation before the body runs out.
fn try_count(cur: &mut Cursor<'_>, elem_size: usize) -> Result<usize, WireError> {
    let count = usize::try_from(cur.try_u32()?).map_err(|_| WireError::BadPayload("count"))?;
    match count.checked_mul(elem_size) {
        Some(total) if total <= cur.remaining() => Ok(count),
        _ => Err(WireError::Truncated),
    }
}

fn put_options(out: &mut Vec<u8>, opts: &QueryOptions) {
    let k = u32::try_from(opts.k).unwrap_or(u32::MAX);
    put_u32(out, k);
    match opts.period {
        Some(period) => {
            out.push(1);
            put_f64(out, period.start());
            put_f64(out, period.end());
        }
        None => out.push(0),
    }
    match opts.deadline_us {
        Some(us) => {
            out.push(1);
            put_u64(out, us);
        }
        None => out.push(0),
    }
    out.push(u8::from(opts.share_bound));
    match opts.min_lsn {
        Some(lsn) => {
            out.push(1);
            put_u64(out, lsn);
        }
        None => out.push(0),
    }
    out.push(opts.substrate.tag());
}

fn try_options(cur: &mut Cursor<'_>) -> Result<QueryOptions, WireError> {
    let mut opts = QueryOptions::new();
    opts.k = usize::try_from(cur.try_u32()?).map_err(|_| WireError::BadPayload("k"))?;
    opts.period = match cur.try_u8()? {
        0 => None,
        1 => {
            let start = cur.try_f64()?;
            let end = cur.try_f64()?;
            Some(
                TimeInterval::new(start, end)
                    .map_err(|_| WireError::BadPayload("invalid time interval"))?,
            )
        }
        _ => return Err(WireError::BadPayload("period flag")),
    };
    opts.deadline_us = match cur.try_u8()? {
        0 => None,
        1 => Some(cur.try_u64()?),
        _ => return Err(WireError::BadPayload("deadline flag")),
    };
    opts.share_bound = match cur.try_u8()? {
        0 => false,
        1 => true,
        _ => return Err(WireError::BadPayload("share flag")),
    };
    opts.min_lsn = match cur.try_u8()? {
        0 => None,
        1 => Some(cur.try_u64()?),
        _ => return Err(WireError::BadPayload("min_lsn flag")),
    };
    opts.substrate =
        Substrate::from_tag(cur.try_u8()?).ok_or(WireError::BadPayload("substrate tag"))?;
    Ok(opts)
}

fn put_points(out: &mut Vec<u8>, points: &[SamplePoint]) {
    let count = put_count(out, points.len());
    for p in points
        .iter()
        .take(usize::try_from(count).unwrap_or(usize::MAX))
    {
        put_f64(out, p.t);
        put_f64(out, p.x);
        put_f64(out, p.y);
    }
}

fn try_points(cur: &mut Cursor<'_>) -> Result<Vec<SamplePoint>, WireError> {
    let count = try_count(cur, 24)?;
    let mut points = Vec::with_capacity(count);
    for _ in 0..count {
        let t = cur.try_f64()?;
        let x = cur.try_f64()?;
        let y = cur.try_f64()?;
        points.push(SamplePoint::new(t, x, y));
    }
    Ok(points)
}

fn put_sample(out: &mut Vec<u8>, p: SamplePoint) {
    put_f64(out, p.t);
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn try_sample(cur: &mut Cursor<'_>) -> Result<SamplePoint, WireError> {
    let t = cur.try_f64()?;
    let x = cur.try_f64()?;
    let y = cur.try_f64()?;
    Ok(SamplePoint::new(t, x, y))
}

fn put_leaf_entry(out: &mut Vec<u8>, e: &LeafEntry) {
    put_u64(out, e.traj.0);
    put_u32(out, e.seq);
    put_sample(out, e.segment.start());
    put_sample(out, e.segment.end());
}

/// 8 (traj) + 4 (seq) + 2 x 24 (samples).
const LEAF_ENTRY_SIZE: usize = 60;

fn try_leaf_entry(cur: &mut Cursor<'_>) -> Result<LeafEntry, WireError> {
    let traj = TrajectoryId(cur.try_u64()?);
    let seq = cur.try_u32()?;
    let start = try_sample(cur)?;
    let end = try_sample(cur)?;
    let segment = Segment::new(start, end).map_err(|_| WireError::BadPayload("invalid segment"))?;
    Ok(LeafEntry { traj, seq, segment })
}

/// A decoded client request. Trajectories arrive as raw sample lists —
/// [`mst_trajectory::Trajectory::new`] applies the semantic rules
/// server-side so its errors surface as [`ErrorCode::InvalidQuery`], not
/// as protocol violations.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A k-MST query: find the `options.k` most similar trajectories.
    Kmst {
        /// The query trajectory's samples.
        points: Vec<SamplePoint>,
        /// Shared query options (k, period, deadline, bound sharing).
        options: QueryOptions,
    },
    /// A trajectory-kNN query by closest approach.
    Knn {
        /// The query trajectory's samples.
        points: Vec<SamplePoint>,
        /// Shared query options.
        options: QueryOptions,
    },
    /// A point-kNN (nearest segments) query. The time window rides in
    /// `options.period` and is required — the server rejects its absence
    /// as an invalid query, mirroring the builder.
    KnnSegments {
        /// The 2D query location.
        location: Point,
        /// Shared query options.
        options: QueryOptions,
    },
    /// A 3D range query.
    Range {
        /// The spatio-temporal window.
        window: Mbb,
        /// Shared query options.
        options: QueryOptions,
    },
    /// Server counters and the merged work profile.
    Stats,
    /// Graceful shutdown: drain in-flight queries, then stop.
    Shutdown,
    /// Online ingest: insert a new trajectory. Answered with
    /// [`Response::Ingested`] once the record is durable (group-commit
    /// fsync returned) *and* applied to the in-memory shards. Semantic
    /// failures (existing id, degenerate trajectory) answer
    /// [`ErrorCode::InvalidQuery`]; a server without a durable store
    /// answers [`ErrorCode::ReadOnly`].
    Insert {
        /// The new object's identity (must not already exist).
        id: TrajectoryId,
        /// The trajectory's samples; the server applies
        /// [`mst_trajectory::Trajectory::new`]'s semantic rules.
        points: Vec<SamplePoint>,
    },
    /// Online ingest: delete the trajectory stored under an id. A delete
    /// of an absent id acks with `applied: false` — idempotent, not an
    /// error.
    Delete {
        /// The object to remove.
        id: TrajectoryId,
    },
    /// A replica opens the replication stream: ship committed WAL
    /// records starting at `from_lsn`. If `from_lsn` has fallen below
    /// the primary's replication floor (the log was checkpointed past
    /// it), the first [`Response::Replicate`] instead carries a full
    /// snapshot encoded at the primary's committed LSN, and streaming
    /// continues from there. A server with no durable store answers
    /// [`ErrorCode::ReadOnly`]; a replica answers
    /// [`ErrorCode::NotPrimary`].
    Subscribe {
        /// First LSN the replica still needs (its applied LSN + 1).
        from_lsn: u64,
    },
    /// The replica's cumulative ack, doubling as the poll for the next
    /// batch: "everything through `lsn` is applied on my side — send me
    /// what you have from `lsn + 1`". An empty [`Response::Replicate`]
    /// is the heartbeat that keeps lag observable when the primary is
    /// idle.
    ReplicaAck {
        /// Highest LSN the replica has durably applied.
        lsn: u64,
    },
    /// Version negotiation, the first frame of every v2 session (sent at
    /// request id 0). The body opens with [`MAGIC`], then the version
    /// range the client speaks and the pipeline depth it would like.
    Hello {
        /// Lowest protocol version the client accepts.
        min_version: u16,
        /// Highest protocol version the client accepts.
        max_version: u16,
        /// Requested pipeline depth (in-flight requests per connection);
        /// the server grants `min(requested, its cap)` in the ack.
        depth: u16,
    },
}

impl Request {
    /// Encodes the request into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Kmst { points, options } => {
                out.push(0x01);
                put_options(&mut out, options);
                put_points(&mut out, points);
            }
            Request::Knn { points, options } => {
                out.push(0x02);
                put_options(&mut out, options);
                put_points(&mut out, points);
            }
            Request::KnnSegments { location, options } => {
                out.push(0x03);
                put_options(&mut out, options);
                put_f64(&mut out, location.x);
                put_f64(&mut out, location.y);
            }
            Request::Range { window, options } => {
                out.push(0x04);
                put_options(&mut out, options);
                put_f64(&mut out, window.x_min);
                put_f64(&mut out, window.y_min);
                put_f64(&mut out, window.t_min);
                put_f64(&mut out, window.x_max);
                put_f64(&mut out, window.y_max);
                put_f64(&mut out, window.t_max);
            }
            Request::Stats => out.push(0x05),
            Request::Shutdown => out.push(0x06),
            Request::Insert { id, points } => {
                out.push(0x07);
                put_u64(&mut out, id.0);
                put_points(&mut out, points);
            }
            Request::Delete { id } => {
                out.push(0x08);
                put_u64(&mut out, id.0);
            }
            Request::Subscribe { from_lsn } => {
                out.push(0x09);
                put_u64(&mut out, *from_lsn);
            }
            Request::ReplicaAck { lsn } => {
                out.push(0x0A);
                put_u64(&mut out, *lsn);
            }
            Request::Hello {
                min_version,
                max_version,
                depth,
            } => {
                out.push(0x0F);
                put_u32(&mut out, MAGIC);
                put_u16(&mut out, *min_version);
                put_u16(&mut out, *max_version);
                put_u16(&mut out, *depth);
            }
        }
        out
    }

    /// Decodes a frame payload into a request. Total: every malformed
    /// input maps to a typed [`WireError`].
    pub fn decode(payload: &[u8]) -> Result<Request, WireError> {
        let mut cur = Cursor::new(payload);
        let opcode = cur.try_u8()?;
        let request = match opcode {
            0x01 => {
                let options = try_options(&mut cur)?;
                let points = try_points(&mut cur)?;
                Request::Kmst { points, options }
            }
            0x02 => {
                let options = try_options(&mut cur)?;
                let points = try_points(&mut cur)?;
                Request::Knn { points, options }
            }
            0x03 => {
                let options = try_options(&mut cur)?;
                let x = cur.try_f64()?;
                let y = cur.try_f64()?;
                Request::KnnSegments {
                    location: Point::new(x, y),
                    options,
                }
            }
            0x04 => {
                let options = try_options(&mut cur)?;
                let x_min = cur.try_f64()?;
                let y_min = cur.try_f64()?;
                let t_min = cur.try_f64()?;
                let x_max = cur.try_f64()?;
                let y_max = cur.try_f64()?;
                let t_max = cur.try_f64()?;
                let finite = [x_min, y_min, t_min, x_max, y_max, t_max]
                    .iter()
                    .all(|v| v.is_finite());
                if !finite || x_min > x_max || y_min > y_max || t_min > t_max {
                    return Err(WireError::BadPayload("invalid range window"));
                }
                Request::Range {
                    window: Mbb::new(x_min, y_min, t_min, x_max, y_max, t_max),
                    options,
                }
            }
            0x05 => Request::Stats,
            0x06 => Request::Shutdown,
            0x07 => {
                let id = TrajectoryId(cur.try_u64()?);
                let points = try_points(&mut cur)?;
                Request::Insert { id, points }
            }
            0x08 => Request::Delete {
                id: TrajectoryId(cur.try_u64()?),
            },
            0x09 => Request::Subscribe {
                from_lsn: cur.try_u64()?,
            },
            0x0A => Request::ReplicaAck {
                lsn: cur.try_u64()?,
            },
            0x0F => {
                if cur.try_u32()? != MAGIC {
                    return Err(WireError::BadPayload("hello magic"));
                }
                let min_version = cur.try_u16()?;
                let max_version = cur.try_u16()?;
                let depth = cur.try_u16()?;
                if min_version > max_version {
                    return Err(WireError::BadPayload("hello version range"));
                }
                Request::Hello {
                    min_version,
                    max_version,
                    depth,
                }
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        cur.finish()?;
        Ok(request)
    }
}

/// Typed failure codes carried by [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame violated the protocol; the server closes the connection.
    Malformed,
    /// The query was structurally fine but semantically invalid (e.g. a
    /// one-point trajectory, a period the query doesn't cover). The
    /// connection stays open.
    InvalidQuery,
    /// The server is draining and admits nothing new.
    ShuttingDown,
    /// The server failed internally while executing the query.
    Internal,
    /// The peer spoke a protocol version this server does not. Carries
    /// the server's supported range so the client can report precisely
    /// what to upgrade (or downgrade) to. Sent v1-framed to v1 clients —
    /// a legacy `ServeClient` decodes it as a typed error, never a hang.
    UnsupportedVersion {
        /// Lowest version the server speaks.
        min: u16,
        /// Highest version the server speaks.
        max: u16,
    },
    /// The server has no durable store behind it; ingest requests are
    /// refused. Queries keep working on the same connection.
    ReadOnly,
    /// The query carried a read-your-writes token
    /// ([`QueryOptions::min_lsn`]) this server's visible watermark has
    /// not reached. Carries both LSNs so the client can decide to wait,
    /// retry, or fall back to the primary. The connection stays open.
    ReplicaLagging {
        /// The LSN the query required.
        required: u64,
        /// The server's visible watermark at refusal time.
        watermark: u64,
    },
    /// A write or replication subscription hit a replica: replicas are
    /// read-only and only the primary feeds the replication stream.
    NotPrimary,
}

impl ErrorCode {
    fn encode_into(self, out: &mut Vec<u8>) {
        match self {
            ErrorCode::Malformed => out.push(1),
            ErrorCode::InvalidQuery => out.push(2),
            ErrorCode::ShuttingDown => out.push(3),
            ErrorCode::Internal => out.push(4),
            ErrorCode::UnsupportedVersion { min, max } => {
                out.push(5);
                put_u16(out, min);
                put_u16(out, max);
            }
            ErrorCode::ReadOnly => out.push(6),
            ErrorCode::ReplicaLagging {
                required,
                watermark,
            } => {
                out.push(7);
                put_u64(out, required);
                put_u64(out, watermark);
            }
            ErrorCode::NotPrimary => out.push(8),
        }
    }

    fn try_decode(cur: &mut Cursor<'_>) -> Result<Self, WireError> {
        match cur.try_u8()? {
            1 => Ok(ErrorCode::Malformed),
            2 => Ok(ErrorCode::InvalidQuery),
            3 => Ok(ErrorCode::ShuttingDown),
            4 => Ok(ErrorCode::Internal),
            5 => {
                let min = cur.try_u16()?;
                let max = cur.try_u16()?;
                Ok(ErrorCode::UnsupportedVersion { min, max })
            }
            6 => Ok(ErrorCode::ReadOnly),
            7 => {
                let required = cur.try_u64()?;
                let watermark = cur.try_u64()?;
                Ok(ErrorCode::ReplicaLagging {
                    required,
                    watermark,
                })
            }
            8 => Ok(ErrorCode::NotPrimary),
            _ => Err(WireError::BadPayload("error code")),
        }
    }
}

/// Monotonic server counters, as reported by [`Response::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerCounters {
    /// Connections accepted.
    pub connections_accepted: u64,
    /// Connections refused at the connection cap.
    pub connections_rejected: u64,
    /// Frames decoded into well-formed requests.
    pub requests_decoded: u64,
    /// Queries admitted into the execution queue.
    pub queries_admitted: u64,
    /// Queries that completed and answered.
    pub queries_completed: u64,
    /// Completed queries that reported degradation (deadline or shard).
    pub queries_degraded: u64,
    /// Queries rejected with [`Response::Overloaded`].
    pub overload_rejections: u64,
    /// Frames rejected as malformed (connection then closed).
    pub malformed_frames: u64,
    /// Structurally valid requests rejected as semantically invalid.
    pub invalid_queries: u64,
    /// Queries answered straight from the answer cache (no execution).
    pub cache_hits: u64,
    /// Query executions that missed the answer cache.
    pub cache_misses: u64,
    /// Ingest operations durably applied (acked with an LSN).
    pub ingest_applied: u64,
    /// Records appended to the write-ahead log (durable servers only).
    pub wal_appends: u64,
    /// Group-commit fsyncs issued by the write-ahead log.
    pub wal_fsyncs: u64,
    /// Log records replayed by the recovery that built this server's
    /// database (0 for a fresh or read-only server).
    pub replayed_records: u64,
    /// Primary: highest LSN committed to the local log (the replication
    /// watermark replicas are chasing). Replica: 0.
    pub repl_committed_lsn: u64,
    /// Primary: highest LSN any replica has cumulatively acked (the
    /// lag gauge is `repl_committed_lsn - repl_acked_lsn`). Replica: 0.
    pub repl_acked_lsn: u64,
    /// Primary: WAL records shipped down replication streams.
    pub repl_records_shipped: u64,
    /// Primary: empty replication batches sent as heartbeats.
    pub repl_heartbeats: u64,
    /// Replica: highest LSN durably applied from the stream (equals the
    /// visible watermark). Primary: its own committed LSN.
    pub repl_applied_lsn: u64,
    /// Replica: records applied from the replication stream.
    pub repl_records_applied: u64,
    /// Replica: times the applier lost the primary and reconnected.
    pub repl_reconnects: u64,
}

/// A fixed-size summary of the server's merged [`mst_search::QueryProfile`]:
/// the headline work counters, stable across profile growth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileSummary {
    /// Elements pushed onto best-first priority queues.
    pub heap_pushes: u64,
    /// Elements popped off best-first priority queues.
    pub heap_pops: u64,
    /// Index node accesses, all levels.
    pub nodes_accessed: u64,
    /// Buffer-pool hits.
    pub buffer_hits: u64,
    /// Buffer-pool misses.
    pub buffer_misses: u64,
    /// DISSIM piece integrals evaluated (exact + trapezoid).
    pub piece_evals: u64,
    /// Heuristic-2 early terminations.
    pub early_terminations: u64,
}

/// The full stats report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReport {
    /// Server-level counters.
    pub counters: ServerCounters,
    /// Merged work profile of every completed query.
    pub profile: ProfileSummary,
}

/// A decoded server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// k-MST matches, ascending dissimilarity.
    Kmst {
        /// Whether the answer is best-so-far rather than certified.
        degraded: bool,
        /// The matches.
        matches: Vec<MstMatch>,
    },
    /// Trajectory-kNN matches, ascending closest approach.
    Knn {
        /// Whether the answer is degraded.
        degraded: bool,
        /// The matches.
        matches: Vec<NnMatch>,
    },
    /// Point-kNN segment matches, ascending distance.
    Segments {
        /// Whether the answer is degraded.
        degraded: bool,
        /// The matches.
        matches: Vec<KnnMatch>,
    },
    /// Range hits in canonical (trajectory, sequence) order.
    Range {
        /// Whether the answer is degraded.
        degraded: bool,
        /// The hits.
        entries: Vec<LeafEntry>,
    },
    /// Server counters and merged profile.
    Stats(StatsReport),
    /// The server accepted the shutdown request and is draining.
    ShutdownAck,
    /// A replication batch: committed WAL frames shipped verbatim
    /// (self-delimiting, checksummed — the replica re-verifies before
    /// logging), optionally preceded by a full snapshot when the
    /// subscriber's position fell below the primary's replication
    /// floor. `records` empty and `snapshot` absent is the heartbeat.
    Replicate {
        /// The primary's committed LSN at send time: the position the
        /// replica is chasing, even when this batch is empty.
        committed_lsn: u64,
        /// A full store snapshot (the `encode_snapshot` format) when
        /// the replica must bootstrap; `None` on the steady path.
        snapshot: Option<Vec<u8>>,
        /// Sealed WAL frames, verbatim, in LSN order.
        records: Vec<Vec<u8>>,
    },
    /// An ingest operation is durable and visible: its log record's
    /// group-commit fsync returned before this frame was sent.
    Ingested {
        /// The operation's log sequence number (for a no-op delete of an
        /// absent id: the LSN the state is nonetheless consistent
        /// through).
        lsn: u64,
        /// Whether state changed (`false` only for the no-op delete).
        applied: bool,
    },
    /// The server accepted the v2 handshake.
    HelloAck {
        /// The negotiated protocol version.
        version: u16,
        /// The granted pipeline depth: at most this many requests may be
        /// in flight on the connection at once.
        depth: u16,
    },
    /// Admission control rejected the query: the execution queue is full.
    /// Backpressure, not failure — retry later.
    Overloaded {
        /// Jobs queued at rejection time.
        queued: u32,
        /// The queue's capacity.
        capacity: u32,
    },
    /// A typed error.
    Error {
        /// What class of failure.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

fn put_degraded_header(out: &mut Vec<u8>, opcode: u8, degraded: bool) {
    out.push(opcode);
    out.push(u8::from(degraded));
}

fn try_degraded(cur: &mut Cursor<'_>) -> Result<bool, WireError> {
    match cur.try_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        _ => Err(WireError::BadPayload("degraded flag")),
    }
}

impl Response {
    /// Encodes the response into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Kmst { degraded, matches } => {
                put_degraded_header(&mut out, 0x81, *degraded);
                put_count(&mut out, matches.len());
                for m in matches {
                    put_u64(&mut out, m.traj.0);
                    put_f64(&mut out, m.dissim);
                }
            }
            Response::Knn { degraded, matches } => {
                put_degraded_header(&mut out, 0x82, *degraded);
                put_count(&mut out, matches.len());
                for m in matches {
                    put_u64(&mut out, m.traj.0);
                    put_f64(&mut out, m.distance);
                    put_f64(&mut out, m.time);
                }
            }
            Response::Segments { degraded, matches } => {
                put_degraded_header(&mut out, 0x83, *degraded);
                put_count(&mut out, matches.len());
                for m in matches {
                    put_leaf_entry(&mut out, &m.entry);
                    put_f64(&mut out, m.distance);
                }
            }
            Response::Range { degraded, entries } => {
                put_degraded_header(&mut out, 0x84, *degraded);
                put_count(&mut out, entries.len());
                for e in entries {
                    put_leaf_entry(&mut out, e);
                }
            }
            Response::Stats(report) => {
                out.push(0x85);
                let c = &report.counters;
                for v in [
                    c.connections_accepted,
                    c.connections_rejected,
                    c.requests_decoded,
                    c.queries_admitted,
                    c.queries_completed,
                    c.queries_degraded,
                    c.overload_rejections,
                    c.malformed_frames,
                    c.invalid_queries,
                    c.cache_hits,
                    c.cache_misses,
                    c.ingest_applied,
                    c.wal_appends,
                    c.wal_fsyncs,
                    c.replayed_records,
                    c.repl_committed_lsn,
                    c.repl_acked_lsn,
                    c.repl_records_shipped,
                    c.repl_heartbeats,
                    c.repl_applied_lsn,
                    c.repl_records_applied,
                    c.repl_reconnects,
                ] {
                    put_u64(&mut out, v);
                }
                let p = &report.profile;
                for v in [
                    p.heap_pushes,
                    p.heap_pops,
                    p.nodes_accessed,
                    p.buffer_hits,
                    p.buffer_misses,
                    p.piece_evals,
                    p.early_terminations,
                ] {
                    put_u64(&mut out, v);
                }
            }
            Response::ShutdownAck => out.push(0x86),
            Response::Replicate {
                committed_lsn,
                snapshot,
                records,
            } => {
                out.push(0x88);
                put_u64(&mut out, *committed_lsn);
                match snapshot {
                    Some(bytes) => {
                        out.push(1);
                        put_count(&mut out, bytes.len());
                        out.extend_from_slice(bytes);
                    }
                    None => out.push(0),
                }
                put_count(&mut out, records.len());
                for r in records {
                    put_count(&mut out, r.len());
                    out.extend_from_slice(r);
                }
            }
            Response::Ingested { lsn, applied } => {
                out.push(0x87);
                put_u64(&mut out, *lsn);
                out.push(u8::from(*applied));
            }
            Response::HelloAck { version, depth } => {
                out.push(0x8F);
                put_u16(&mut out, *version);
                put_u16(&mut out, *depth);
            }
            Response::Overloaded { queued, capacity } => {
                out.push(0xE0);
                put_u32(&mut out, *queued);
                put_u32(&mut out, *capacity);
            }
            Response::Error { code, message } => {
                out.push(0xE1);
                code.encode_into(&mut out);
                let bytes = message.as_bytes();
                let mut len = bytes.len().min(usize::from(u16::MAX));
                // Truncation must not split a multi-byte character, or the
                // peer's utf-8 decode of the message fails.
                while len > 0 && !message.is_char_boundary(len) {
                    len -= 1;
                }
                out.extend_from_slice(&(len as u16).to_le_bytes());
                out.extend_from_slice(&bytes[..len]);
            }
        }
        out
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Response, WireError> {
        let mut cur = Cursor::new(payload);
        let opcode = cur.try_u8()?;
        let response = match opcode {
            0x81 => {
                let degraded = try_degraded(&mut cur)?;
                let count = try_count(&mut cur, 16)?;
                let mut matches = Vec::with_capacity(count);
                for _ in 0..count {
                    let traj = TrajectoryId(cur.try_u64()?);
                    let dissim = cur.try_f64()?;
                    matches.push(MstMatch { traj, dissim });
                }
                Response::Kmst { degraded, matches }
            }
            0x82 => {
                let degraded = try_degraded(&mut cur)?;
                let count = try_count(&mut cur, 24)?;
                let mut matches = Vec::with_capacity(count);
                for _ in 0..count {
                    let traj = TrajectoryId(cur.try_u64()?);
                    let distance = cur.try_f64()?;
                    let time = cur.try_f64()?;
                    matches.push(NnMatch {
                        traj,
                        distance,
                        time,
                    });
                }
                Response::Knn { degraded, matches }
            }
            0x83 => {
                let degraded = try_degraded(&mut cur)?;
                let count = try_count(&mut cur, LEAF_ENTRY_SIZE + 8)?;
                let mut matches = Vec::with_capacity(count);
                for _ in 0..count {
                    let entry = try_leaf_entry(&mut cur)?;
                    let distance = cur.try_f64()?;
                    matches.push(KnnMatch { entry, distance });
                }
                Response::Segments { degraded, matches }
            }
            0x84 => {
                let degraded = try_degraded(&mut cur)?;
                let count = try_count(&mut cur, LEAF_ENTRY_SIZE)?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(try_leaf_entry(&mut cur)?);
                }
                Response::Range { degraded, entries }
            }
            0x85 => {
                let mut counters = [0u64; 29];
                for slot in &mut counters {
                    *slot = cur.try_u64()?;
                }
                Response::Stats(StatsReport {
                    counters: ServerCounters {
                        connections_accepted: counters[0],
                        connections_rejected: counters[1],
                        requests_decoded: counters[2],
                        queries_admitted: counters[3],
                        queries_completed: counters[4],
                        queries_degraded: counters[5],
                        overload_rejections: counters[6],
                        malformed_frames: counters[7],
                        invalid_queries: counters[8],
                        cache_hits: counters[9],
                        cache_misses: counters[10],
                        ingest_applied: counters[11],
                        wal_appends: counters[12],
                        wal_fsyncs: counters[13],
                        replayed_records: counters[14],
                        repl_committed_lsn: counters[15],
                        repl_acked_lsn: counters[16],
                        repl_records_shipped: counters[17],
                        repl_heartbeats: counters[18],
                        repl_applied_lsn: counters[19],
                        repl_records_applied: counters[20],
                        repl_reconnects: counters[21],
                    },
                    profile: ProfileSummary {
                        heap_pushes: counters[22],
                        heap_pops: counters[23],
                        nodes_accessed: counters[24],
                        buffer_hits: counters[25],
                        buffer_misses: counters[26],
                        piece_evals: counters[27],
                        early_terminations: counters[28],
                    },
                })
            }
            0x86 => Response::ShutdownAck,
            0x88 => {
                let committed_lsn = cur.try_u64()?;
                let snapshot = match cur.try_u8()? {
                    0 => None,
                    1 => {
                        let len = usize::try_from(cur.try_u32()?)
                            .map_err(|_| WireError::BadPayload("snapshot length"))?;
                        Some(cur.take(len)?.to_vec())
                    }
                    _ => return Err(WireError::BadPayload("snapshot flag")),
                };
                // Each record costs at least its own 4-byte length
                // prefix, so a hostile count fails the pre-check.
                let count = try_count(&mut cur, 4)?;
                let mut records = Vec::with_capacity(count);
                for _ in 0..count {
                    let len = usize::try_from(cur.try_u32()?)
                        .map_err(|_| WireError::BadPayload("record length"))?;
                    records.push(cur.take(len)?.to_vec());
                }
                Response::Replicate {
                    committed_lsn,
                    snapshot,
                    records,
                }
            }
            0x87 => {
                let lsn = cur.try_u64()?;
                let applied = match cur.try_u8()? {
                    0 => false,
                    1 => true,
                    _ => return Err(WireError::BadPayload("applied flag")),
                };
                Response::Ingested { lsn, applied }
            }
            0x8F => {
                let version = cur.try_u16()?;
                let depth = cur.try_u16()?;
                Response::HelloAck { version, depth }
            }
            0xE0 => {
                let queued = cur.try_u32()?;
                let capacity = cur.try_u32()?;
                Response::Overloaded { queued, capacity }
            }
            0xE1 => {
                let code = ErrorCode::try_decode(&mut cur)?;
                let len = {
                    let b = cur.take(2)?;
                    usize::from(u16::from_le_bytes([b[0], b[1]]))
                };
                let bytes = cur.take(len)?;
                let message = String::from_utf8(bytes.to_vec())
                    .map_err(|_| WireError::BadPayload("error message utf-8"))?;
                Response::Error { code, message }
            }
            other => return Err(WireError::BadOpcode(other)),
        };
        cur.finish()?;
        Ok(response)
    }
}

/// Writes one v1 frame: the `u32` length prefix, then the payload.
///
/// Prefix and payload go down in **one** `write_all` — two writes per
/// frame interact catastrophically with Nagle's algorithm plus delayed
/// ACKs (a ~40 ms stall per response on loopback, worse on real links).
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized(u32::MAX))?;
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Appends one v2 frame — `[frame_len][request_id][payload]` — to `out`.
/// Building into a caller-owned buffer lets the mux batch several
/// responses into a single syscall; [`write_frame_v2`] is the one-frame
/// convenience over it.
pub fn encode_frame_v2(
    out: &mut Vec<u8>,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    let len = u32::try_from(payload.len()).map_err(|_| WireError::Oversized(u32::MAX))?;
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    out.reserve(12 + payload.len());
    out.extend_from_slice(&(len + V2_OVERHEAD).to_le_bytes());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// Writes one v2 frame in a single `write_all` (see [`write_frame`] for
/// why one syscall matters).
pub fn write_frame_v2(
    w: &mut impl std::io::Write,
    request_id: u64,
    payload: &[u8],
) -> Result<(), WireError> {
    let mut frame = Vec::with_capacity(12 + payload.len());
    encode_frame_v2(&mut frame, request_id, payload)?;
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame's payload. `Ok(None)` is a clean end-of-stream (the
/// peer closed between frames); EOF *inside* a frame is
/// [`WireError::Truncated`]. The length prefix is validated against
/// [`MAX_FRAME`] before any allocation.
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::from(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len > MAX_FRAME {
        return Err(WireError::Oversized(len));
    }
    let len_usize = usize::try_from(len).map_err(|_| WireError::Oversized(len))?;
    let mut payload = vec![0u8; len_usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads one v2 frame: `Ok(None)` on clean end-of-stream, otherwise the
/// request id and the payload (opcode + body). Validation mirrors
/// [`read_frame`]: the length prefix is checked before any allocation,
/// EOF inside a frame is [`WireError::Truncated`], and a frame too short
/// to hold its request id and opcode is truncated by construction.
pub fn read_frame_v2(r: &mut impl std::io::Read) -> Result<Option<(u64, Vec<u8>)>, WireError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(WireError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::from(e)),
        }
    }
    let len = u32::from_le_bytes(prefix);
    if len == 0 || len > MAX_FRAME + V2_OVERHEAD {
        return Err(WireError::Oversized(len));
    }
    if len <= V2_OVERHEAD {
        return Err(WireError::Truncated);
    }
    let len_usize = usize::try_from(len).map_err(|_| WireError::Oversized(len))?;
    let mut body = vec![0u8; len_usize];
    r.read_exact(&mut body)?;
    let mut id_raw = [0u8; 8];
    id_raw.copy_from_slice(&body[..8]);
    let request_id = u64::from_le_bytes(id_raw);
    body.drain(..8);
    Ok(Some((request_id, body)))
}

/// One v2 frame carved out of a growing read buffer by
/// [`split_frame_v2`]. `consumed` bytes at the front of the buffer held
/// the frame; `payload` borrows the opcode + body within them.
#[derive(Debug, PartialEq)]
pub struct SplitFrame<'a> {
    /// Bytes the frame occupied (length prefix included) — drain this
    /// many from the front of the buffer before the next call.
    pub consumed: usize,
    /// The frame's request id.
    pub request_id: u64,
    /// The frame payload (opcode + body), borrowed from the buffer.
    pub payload: &'a [u8],
}

/// Carves the first complete v2 frame off `buf`, the incremental
/// counterpart of [`read_frame_v2`] for non-blocking reads: the mux
/// appends whatever `read` returned and calls this until it reports
/// `Ok(None)` (frame still incomplete — keep the bytes, read more).
/// A hostile length prefix fails here, before the buffer grows to match.
pub fn split_frame_v2(buf: &[u8]) -> Result<Option<SplitFrame<'_>>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_FRAME + V2_OVERHEAD {
        return Err(WireError::Oversized(len));
    }
    if len <= V2_OVERHEAD {
        return Err(WireError::Truncated);
    }
    let len_usize = usize::try_from(len).map_err(|_| WireError::Oversized(len))?;
    let total = 4 + len_usize;
    if buf.len() < total {
        return Ok(None);
    }
    let mut id_raw = [0u8; 8];
    id_raw.copy_from_slice(&buf[4..12]);
    Ok(Some(SplitFrame {
        consumed: total,
        request_id: u64::from_le_bytes(id_raw),
        payload: &buf[12..total],
    }))
}

/// What the first frame on a fresh connection turned out to be. Both
/// protocol versions open with the same `[len: u32]` prefix, so the
/// server reads one frame blind and classifies its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstFrame {
    /// A v2 handshake: `[request_id][0x0F][MAGIC]...`.
    V2Hello,
    /// A legacy v1 request (its first byte is a v1 request opcode). The
    /// server answers a v1-framed [`ErrorCode::UnsupportedVersion`] so
    /// old clients fail loudly instead of hanging.
    V1Request,
    /// Neither — random bytes, a response opcode, garbage.
    Unknown,
}

/// Classifies the payload of the first frame read off a new connection
/// (the bytes after the length prefix).
pub fn classify_first_payload(payload: &[u8]) -> FirstFrame {
    if payload.len() >= 13 && payload[8] == 0x0F && payload[9..13] == MAGIC.to_le_bytes() {
        return FirstFrame::V2Hello;
    }
    match payload.first() {
        Some(0x01..=0x06) => FirstFrame::V1Request,
        _ => FirstFrame::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> QueryOptions {
        QueryOptions::new()
            .k(7)
            .deadline_us(1_500)
            .share_bound(false)
    }

    #[test]
    fn every_request_round_trips() {
        let window = TimeInterval::new(2.0, 9.0).expect("valid");
        let requests = vec![
            Request::Kmst {
                points: vec![
                    SamplePoint::new(0.0, 1.0, 2.0),
                    SamplePoint::new(1.0, 3.0, 4.0),
                ],
                options: opts().during(&window),
            },
            Request::Knn {
                points: vec![SamplePoint::new(0.5, -1.0, 2.5)],
                options: QueryOptions::new(),
            },
            Request::KnnSegments {
                location: Point::new(3.25, -8.5),
                options: opts().during(&window),
            },
            Request::Range {
                window: Mbb::new(0.0, 1.0, 2.0, 3.0, 4.0, 5.0),
                options: opts(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Insert {
                id: TrajectoryId(99),
                points: vec![
                    SamplePoint::new(0.0, 1.0, 2.0),
                    SamplePoint::new(1.0, 3.0, 4.0),
                ],
            },
            Request::Delete {
                id: TrajectoryId(12),
            },
            Request::Subscribe { from_lsn: 17 },
            Request::ReplicaAck { lsn: 16 },
            Request::Kmst {
                points: vec![
                    SamplePoint::new(0.0, 1.0, 2.0),
                    SamplePoint::new(1.0, 3.0, 4.0),
                ],
                options: opts().min_lsn(88),
            },
            Request::Hello {
                min_version: 2,
                max_version: 2,
                depth: 32,
            },
        ];
        for request in requests {
            let payload = request.encode();
            assert_eq!(Request::decode(&payload).expect("round trip"), request);
        }
    }

    #[test]
    fn every_response_round_trips() {
        let segment = Segment::new(
            SamplePoint::new(0.0, 0.0, 0.0),
            SamplePoint::new(1.0, 2.0, 3.0),
        )
        .expect("valid");
        let entry = LeafEntry {
            traj: TrajectoryId(42),
            seq: 7,
            segment,
        };
        let responses = vec![
            Response::Kmst {
                degraded: false,
                matches: vec![MstMatch {
                    traj: TrajectoryId(3),
                    dissim: 1.25,
                }],
            },
            Response::Knn {
                degraded: true,
                matches: vec![NnMatch {
                    traj: TrajectoryId(9),
                    distance: 0.5,
                    time: 4.0,
                }],
            },
            Response::Segments {
                degraded: false,
                matches: vec![KnnMatch {
                    entry,
                    distance: 2.5,
                }],
            },
            Response::Range {
                degraded: false,
                entries: vec![entry],
            },
            Response::Stats(StatsReport {
                counters: ServerCounters {
                    connections_accepted: 1,
                    queries_admitted: 2,
                    overload_rejections: 3,
                    cache_hits: 5,
                    cache_misses: 6,
                    ..ServerCounters::default()
                },
                profile: ProfileSummary {
                    heap_pushes: 10,
                    nodes_accessed: 20,
                    ..ProfileSummary::default()
                },
            }),
            Response::ShutdownAck,
            Response::Ingested {
                lsn: 77,
                applied: true,
            },
            Response::Ingested {
                lsn: 0,
                applied: false,
            },
            Response::HelloAck {
                version: 2,
                depth: 16,
            },
            Response::Overloaded {
                queued: 4,
                capacity: 4,
            },
            Response::Error {
                code: ErrorCode::InvalidQuery,
                message: "a one-point trajectory has no segments".into(),
            },
            Response::Error {
                code: ErrorCode::UnsupportedVersion { min: 2, max: 2 },
                message: "this server speaks protocol v2 only".into(),
            },
            Response::Error {
                code: ErrorCode::ReadOnly,
                message: "no durable store; ingest disabled".into(),
            },
            Response::Error {
                code: ErrorCode::ReplicaLagging {
                    required: 90,
                    watermark: 85,
                },
                message: "watermark 85 below required 90".into(),
            },
            Response::Error {
                code: ErrorCode::NotPrimary,
                message: "replicas are read-only".into(),
            },
            Response::Replicate {
                committed_lsn: 42,
                snapshot: None,
                records: vec![vec![1, 2, 3], vec![], vec![9; 40]],
            },
            Response::Replicate {
                committed_lsn: 7,
                snapshot: Some(vec![0xAB; 64]),
                records: vec![],
            },
            Response::Replicate {
                committed_lsn: 0,
                snapshot: None,
                records: vec![],
            },
        ];
        for response in responses {
            let payload = response.encode();
            assert_eq!(Response::decode(&payload).expect("round trip"), response);
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_typed_not_a_panic() {
        let request = Request::Kmst {
            points: vec![
                SamplePoint::new(0.0, 1.0, 2.0),
                SamplePoint::new(1.0, 3.0, 4.0),
            ],
            options: opts(),
        };
        let payload = request.encode();
        for cut in 0..payload.len() {
            match Request::decode(&payload[..cut]) {
                Err(WireError::Truncated) => {}
                Err(other) => panic!("cut at {cut}: unexpected error {other}"),
                Ok(_) => panic!("cut at {cut}: decoded from a truncated payload"),
            }
        }
        let response = Response::Segments {
            degraded: false,
            matches: vec![],
        };
        let payload = response.encode();
        for cut in 0..payload.len() {
            assert!(Response::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
        let response = Response::Replicate {
            committed_lsn: 9,
            snapshot: Some(vec![3; 16]),
            records: vec![vec![1, 2], vec![4, 5, 6]],
        };
        let payload = response.encode();
        for cut in 0..payload.len() {
            assert!(Response::decode(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_replication_bodies_are_typed_not_allocated() {
        // A Replicate claiming u32::MAX records with an empty body: the
        // count pre-check fails before any Vec::with_capacity.
        let mut payload = vec![0x88];
        put_u64(&mut payload, 1);
        payload.push(0);
        put_u32(&mut payload, u32::MAX);
        assert_eq!(Response::decode(&payload), Err(WireError::Truncated));
        // A snapshot length larger than the body.
        let mut payload = vec![0x88];
        put_u64(&mut payload, 1);
        payload.push(1);
        put_u32(&mut payload, 1_000_000);
        assert_eq!(Response::decode(&payload), Err(WireError::Truncated));
        // A garbage snapshot flag.
        let mut payload = vec![0x88];
        put_u64(&mut payload, 1);
        payload.push(9);
        assert_eq!(
            Response::decode(&payload),
            Err(WireError::BadPayload("snapshot flag"))
        );
        // A garbage min_lsn flag in options.
        let mut payload = vec![0x09];
        put_u64(&mut payload, 5);
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(WireError::TrailingBytes));
        let mut bad_opts = Request::Stats.encode();
        bad_opts.clear();
        bad_opts.push(0x01);
        put_u32(&mut bad_opts, 1); // k
        bad_opts.push(0); // no period
        bad_opts.push(0); // no deadline
        bad_opts.push(1); // share_bound
        bad_opts.push(7); // bad min_lsn flag
        assert_eq!(
            Request::decode(&bad_opts),
            Err(WireError::BadPayload("min_lsn flag"))
        );
    }

    #[test]
    fn hostile_counts_cannot_drive_allocation() {
        // A Kmst body claiming u32::MAX points with a 4-byte body: the
        // count pre-check fails before any Vec::with_capacity.
        let mut payload = vec![0x01];
        put_options(&mut payload, &QueryOptions::new());
        put_u32(&mut payload, u32::MAX);
        assert_eq!(Request::decode(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn garbage_opcodes_and_flags_are_rejected() {
        assert_eq!(Request::decode(&[0x7f]), Err(WireError::BadOpcode(0x7f)));
        assert_eq!(Response::decode(&[0x13]), Err(WireError::BadOpcode(0x13)));
        // Bad period flag.
        let mut payload = vec![0x01];
        put_u32(&mut payload, 1);
        payload.push(9);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::BadPayload("period flag"))
        );
        // Trailing bytes after a complete message.
        let mut payload = Request::Stats.encode();
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(WireError::TrailingBytes));
        // Inverted interval: structurally malformed.
        let mut payload = vec![0x03];
        let mut bad = Vec::new();
        put_u32(&mut bad, 1);
        bad.push(1);
        put_f64(&mut bad, 9.0);
        put_f64(&mut bad, 2.0);
        bad.push(0);
        bad.push(1);
        payload.extend_from_slice(&bad);
        put_f64(&mut payload, 0.0);
        put_f64(&mut payload, 0.0);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::BadPayload("invalid time interval"))
        );
    }

    #[test]
    fn hostile_range_windows_are_rejected_not_asserted() {
        // Inverted or non-finite corners must map to a typed error and
        // never reach Mbb::new, which debug_asserts min <= max.
        let corners = [
            [9.0, 0.0, 0.0, 1.0, 5.0, 5.0],
            [0.0, 9.0, 0.0, 5.0, 1.0, 5.0],
            [0.0, 0.0, 9.0, 5.0, 5.0, 1.0],
            [f64::NAN, 0.0, 0.0, 5.0, 5.0, 5.0],
            [0.0, 0.0, 0.0, f64::INFINITY, 5.0, 5.0],
        ];
        for c in corners {
            let mut payload = vec![0x04];
            put_options(&mut payload, &QueryOptions::new());
            for v in c {
                put_f64(&mut payload, v);
            }
            assert_eq!(
                Request::decode(&payload),
                Err(WireError::BadPayload("invalid range window"))
            );
        }
    }

    #[test]
    fn oversize_error_messages_truncate_on_a_char_boundary() {
        // 'é' is two bytes, and the 65_535-byte cap is odd: naive
        // truncation would split the last character and make the frame
        // undecodable by the peer.
        let message = "é".repeat(40_000);
        let encoded = Response::Error {
            code: ErrorCode::Internal,
            message,
        }
        .encode();
        match Response::decode(&encoded).expect("truncated frame stays decodable") {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::Internal);
                assert_eq!(message.len(), 65_534);
                assert!(message.chars().all(|ch| ch == 'é'));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn frames_enforce_the_size_cap_and_detect_mid_frame_eof() {
        let mut out = Vec::new();
        write_frame(&mut out, &Request::Stats.encode()).expect("write");
        let mut r = &out[..];
        let payload = read_frame(&mut r).expect("read").expect("one frame");
        assert_eq!(Request::decode(&payload), Ok(Request::Stats));
        assert_eq!(read_frame(&mut r).expect("clean eof"), None);

        // Oversized prefix: rejected before allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert_eq!(
            read_frame(&mut &huge[..]),
            Err(WireError::Oversized(MAX_FRAME + 1))
        );
        // Zero-length frame: no opcode, invalid.
        assert_eq!(
            read_frame(&mut &0u32.to_le_bytes()[..]),
            Err(WireError::Oversized(0))
        );
        // Mid-frame EOF: prefix promises 100 bytes, stream has 3.
        let mut partial = 100u32.to_le_bytes().to_vec();
        partial.extend_from_slice(&[1, 2, 3]);
        assert_eq!(read_frame(&mut &partial[..]), Err(WireError::Truncated));
        // EOF inside the prefix itself.
        assert_eq!(read_frame(&mut &[0x01u8][..]), Err(WireError::Truncated));
    }

    #[test]
    fn hello_rejects_wrong_magic_and_inverted_ranges() {
        let mut payload = vec![0x0F];
        put_u32(&mut payload, 0xDEAD_BEEF);
        put_u16(&mut payload, 2);
        put_u16(&mut payload, 2);
        put_u16(&mut payload, 8);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::BadPayload("hello magic"))
        );
        let mut payload = vec![0x0F];
        put_u32(&mut payload, MAGIC);
        put_u16(&mut payload, 3);
        put_u16(&mut payload, 2);
        put_u16(&mut payload, 8);
        assert_eq!(
            Request::decode(&payload),
            Err(WireError::BadPayload("hello version range"))
        );
    }

    #[test]
    fn v2_frames_round_trip_and_preserve_request_ids() {
        let mut out = Vec::new();
        for id in [0u64, 1, u64::MAX] {
            write_frame_v2(&mut out, id, &Request::Stats.encode()).expect("write");
        }
        let mut r = &out[..];
        for id in [0u64, 1, u64::MAX] {
            let (got_id, payload) = read_frame_v2(&mut r).expect("read").expect("frame");
            assert_eq!(got_id, id);
            assert_eq!(Request::decode(&payload), Ok(Request::Stats));
        }
        assert_eq!(read_frame_v2(&mut r).expect("clean eof"), None);

        // Oversized prefix: rejected before allocation.
        let huge = (MAX_FRAME + 9).to_le_bytes();
        assert_eq!(
            read_frame_v2(&mut &huge[..]),
            Err(WireError::Oversized(MAX_FRAME + 9))
        );
        // A frame too short to hold request id + opcode is truncated.
        let runt = 8u32.to_le_bytes();
        assert_eq!(read_frame_v2(&mut &runt[..]), Err(WireError::Truncated));
        // EOF inside the body.
        let mut partial = 20u32.to_le_bytes().to_vec();
        partial.extend_from_slice(&[0; 10]);
        assert_eq!(read_frame_v2(&mut &partial[..]), Err(WireError::Truncated));
        // An empty payload cannot be framed.
        assert_eq!(
            write_frame_v2(&mut Vec::new(), 1, &[]),
            Err(WireError::Oversized(0))
        );
    }

    #[test]
    fn split_frame_carves_incrementally_and_rejects_hostile_prefixes() {
        let mut wire = Vec::new();
        write_frame_v2(&mut wire, 7, &Request::Stats.encode()).expect("write");
        write_frame_v2(&mut wire, 9, &Request::Shutdown.encode()).expect("write");

        // Incomplete at every prefix of the first frame: keep reading.
        let first_total = 4 + 8 + Request::Stats.encode().len();
        for cut in 0..first_total {
            assert_eq!(split_frame_v2(&wire[..cut]).expect("incomplete"), None);
        }
        // The first frame completes while the second is still partial.
        let frame = split_frame_v2(&wire[..first_total + 3])
            .expect("split")
            .expect("complete frame");
        assert_eq!(frame.consumed, first_total);
        assert_eq!(frame.request_id, 7);
        assert_eq!(Request::decode(frame.payload), Ok(Request::Stats));
        // Draining the first frame exposes the second.
        let frame = split_frame_v2(&wire[first_total..])
            .expect("split")
            .expect("second frame");
        assert_eq!(frame.request_id, 9);
        assert_eq!(Request::decode(frame.payload), Ok(Request::Shutdown));

        // A hostile prefix fails as soon as the 4 length bytes arrive,
        // before the buffer grows to match it.
        let huge = (MAX_FRAME + 9).to_le_bytes();
        assert_eq!(
            split_frame_v2(&huge),
            Err(WireError::Oversized(MAX_FRAME + 9))
        );
        assert_eq!(
            split_frame_v2(&5u32.to_le_bytes()),
            Err(WireError::Truncated)
        );
    }

    #[test]
    fn first_frames_classify_v2_hello_v1_request_and_garbage() {
        // A v2 hello as it appears after the length prefix.
        let hello = Request::Hello {
            min_version: 2,
            max_version: 2,
            depth: 4,
        };
        let mut framed = Vec::new();
        write_frame_v2(&mut framed, 0, &hello.encode()).expect("write");
        assert_eq!(classify_first_payload(&framed[4..]), FirstFrame::V2Hello);
        // Every v1 request opcode classifies as a legacy client.
        for request in [Request::Stats, Request::Shutdown] {
            assert_eq!(
                classify_first_payload(&request.encode()),
                FirstFrame::V1Request
            );
        }
        // Garbage, response opcodes, and empty payloads are unknown.
        assert_eq!(classify_first_payload(&[0x7f, 0, 0]), FirstFrame::Unknown);
        assert_eq!(classify_first_payload(&[0x81]), FirstFrame::Unknown);
        assert_eq!(classify_first_payload(&[]), FirstFrame::Unknown);
        // A truncated would-be hello (magic cut short) is unknown, not v2.
        assert_eq!(classify_first_payload(&framed[4..12]), FirstFrame::Unknown);
    }
}
