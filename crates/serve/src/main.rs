//! The `mst-serve` binary: builds a GSTD demo dataset, binds, and serves
//! until a `Shutdown` frame arrives.
//!
//! ```text
//! mst-serve [--port N] [--workers N] [--queue N] [--objects N] \
//!           [--shards N] [--deadline-ms N] [--io-threads N] \
//!           [--depth N] [--cache N] [--store DIR] \
//!           [--replica-of ADDR] [--verify-store DIR]
//! ```
//!
//! All flags optional; `--port 0` (the default) picks an ephemeral port
//! and prints it, which is what the bench harness and CI smoke use.
//!
//! With `--store DIR` the server runs durably: an existing store in
//! `DIR` is recovered (snapshot + WAL replay; `--objects`/`--shards`
//! are ignored) and an empty `DIR` is seeded with the demo fleet, each
//! insert logged through the WAL. Either way `Insert`/`Delete` frames
//! are accepted and group-committed; without the flag the server is
//! read-only and answers them with a typed `ReadOnly` error.
//!
//! With `--replica-of ADDR` (requires `--store`) the server runs as a
//! read-only replica of the primary at `ADDR`: an empty store
//! bootstraps from the primary's snapshot, an occupied one resumes the
//! stream from its recovered LSN, and the applier follows the primary
//! forever with jittered reconnect backoff. Writes answer a typed
//! `NotPrimary` error.
//!
//! `--verify-store DIR` runs no server at all: it sweeps the store
//! offline — snapshot decode, segment scan, per-frame checksums,
//! gapless-LSN check — prints a report, and exits 0 (clean) or 1
//! (corrupt). Use it before re-serving a store of questionable
//! provenance.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::Arc;

use mst_datagen::GstdConfig;
use mst_exec::{IngestOp, ShardedDatabase};
use mst_index::Rtree3D;
use mst_serve::{RetryPolicy, Server, ServerConfig, ServerHandle};
use mst_trajectory::TrajectoryId;
use mst_wal::{DurableDatabase, FileStore, LogStore, WalConfig};

struct Args {
    port: u16,
    workers: usize,
    queue: usize,
    objects: usize,
    shards: usize,
    deadline_ms: Option<u64>,
    io_threads: usize,
    depth: u16,
    cache: usize,
    store: Option<String>,
    replica_of: Option<String>,
    verify_store: Option<String>,
}

impl Args {
    fn from_env() -> Result<Args, String> {
        let mut args = Args {
            port: 0,
            workers: 2,
            queue: 0,
            objects: 200,
            shards: 4,
            deadline_ms: None,
            io_threads: 1,
            depth: 32,
            cache: 0,
            store: None,
            replica_of: None,
            verify_store: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |flag: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--port" => args.port = parse(&value("--port")?)?,
                "--workers" => args.workers = parse(&value("--workers")?)?,
                "--queue" => args.queue = parse(&value("--queue")?)?,
                "--objects" => args.objects = parse(&value("--objects")?)?,
                "--shards" => args.shards = parse(&value("--shards")?)?,
                "--deadline-ms" => args.deadline_ms = Some(parse(&value("--deadline-ms")?)?),
                "--io-threads" => args.io_threads = parse(&value("--io-threads")?)?,
                "--depth" => args.depth = parse(&value("--depth")?)?,
                "--cache" => args.cache = parse(&value("--cache")?)?,
                "--store" => args.store = Some(value("--store")?),
                "--replica-of" => args.replica_of = Some(value("--replica-of")?),
                "--verify-store" => args.verify_store = Some(value("--verify-store")?),
                "--help" | "-h" => {
                    return Err("usage: mst-serve [--port N] [--workers N] [--queue N] \
                         [--objects N] [--shards N] [--deadline-ms N] [--io-threads N] \
                         [--depth N] [--cache N] [--store DIR] [--replica-of ADDR] \
                         [--verify-store DIR]"
                        .into())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if args.replica_of.is_some() && args.store.is_none() {
            return Err(
                "--replica-of needs --store DIR for the replica's own durable state".into(),
            );
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("invalid value: {raw}"))
}

fn main() {
    let code = run();
    std::process::exit(code);
}

fn run() -> i32 {
    let args = match Args::from_env() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return 2;
        }
    };
    let mut config = ServerConfig::new()
        .port(args.port)
        .workers(args.workers)
        .queue_capacity(args.queue)
        .io_threads(args.io_threads)
        .max_depth(args.depth)
        .cache_capacity(args.cache);
    if let Some(ms) = args.deadline_ms {
        config = config.default_deadline_us(ms.saturating_mul(1000));
    }
    if let Some(dir) = &args.verify_store {
        return verify_store(dir);
    }
    let started = match (&args.store, &args.replica_of) {
        (Some(dir), Some(primary)) => start_replica(config, dir, primary),
        (Some(dir), None) => start_durable(config, &args, dir),
        (None, _) => start_read_only(config, &args),
    };
    let server = match started {
        Ok(server) => server,
        Err(message) => {
            eprintln!("{message}");
            return 1;
        }
    };
    // The bench harness and CI smoke parse this line for the port.
    println!("listening on {}", server.local_addr());
    server.join();
    eprintln!("drained and stopped");
    0
}

/// The demo fleet: the paper's GSTD dataset, ids dense from zero.
fn demo_fleet(objects: usize) -> Vec<(TrajectoryId, mst_trajectory::Trajectory)> {
    GstdConfig::paper_dataset(objects, 42)
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(i as u64), t))
        .collect()
}

/// The classic in-memory path: build the demo fleet, serve it read-only.
fn start_read_only(config: ServerConfig, args: &Args) -> Result<ServerHandle<Rtree3D>, String> {
    eprintln!(
        "building GSTD demo dataset: {} objects across {} shards",
        args.objects, args.shards
    );
    let db = ShardedDatabase::with_rtree(args.shards, demo_fleet(args.objects))
        .map_err(|e| format!("failed to build the database: {e}"))?;
    Server::start(config, Arc::new(db)).map_err(|e| format!("failed to start: {e}"))
}

/// The durable path: recover an existing store in `dir`, or seed an
/// empty one with the demo fleet through the WAL, then serve with
/// online ingest enabled.
fn start_durable(
    config: ServerConfig,
    args: &Args,
    dir: &str,
) -> Result<ServerHandle<Rtree3D>, String> {
    let store = FileStore::open(dir).map_err(|e| format!("failed to open store {dir}: {e}"))?;
    let has_db = store
        .read_snapshot()
        .map_err(|e| format!("failed to probe store {dir}: {e}"))?
        .is_some();
    let durable: DurableDatabase<Rtree3D, FileStore> = if has_db {
        eprintln!("recovering durable store at {dir} (--objects/--shards ignored)");
        let recovered = DurableDatabase::open(store, WalConfig::default())
            .map_err(|e| format!("recovery failed: {e}"))?;
        eprintln!(
            "recovered {} objects at LSN {} ({} records replayed)",
            recovered.database().num_objects(),
            recovered.applied_lsn(),
            recovered.stats().replayed_records,
        );
        recovered
    } else {
        eprintln!(
            "seeding durable store at {dir}: {} objects across {} shards",
            args.objects, args.shards
        );
        let mut fresh = DurableDatabase::create(store, WalConfig::default(), args.shards)
            .map_err(|e| format!("failed to create the store: {e}"))?;
        let ops: Vec<IngestOp> = demo_fleet(args.objects)
            .into_iter()
            .map(|(id, trajectory)| IngestOp::Insert { id, trajectory })
            .collect();
        fresh
            .apply(&ops)
            .map_err(|e| format!("failed to seed the store: {e}"))?;
        // Fold the seed burst into the snapshot so the next recovery
        // replays only post-seed writes.
        fresh
            .checkpoint()
            .map_err(|e| format!("failed to checkpoint the seed: {e}"))?;
        fresh
    };
    Server::start_durable(config, durable).map_err(|e| format!("failed to start: {e}"))
}

/// The replica path: follow the primary at `primary`, bootstrapping an
/// empty store from its snapshot or resuming an occupied one from its
/// recovered LSN.
fn start_replica(
    config: ServerConfig,
    dir: &str,
    primary: &str,
) -> Result<ServerHandle<Rtree3D>, String> {
    let primary: std::net::SocketAddr = primary
        .parse()
        .map_err(|_| format!("--replica-of: not a socket address: {primary}"))?;
    let store = FileStore::open(dir).map_err(|e| format!("failed to open store {dir}: {e}"))?;
    eprintln!("starting replica of {primary} over store {dir}");
    Server::start_replica(
        config,
        store,
        WalConfig::default(),
        primary,
        RetryPolicy::default(),
    )
    .map_err(|e| format!("failed to start the replica: {e}"))
}

/// The offline integrity sweep behind `--verify-store`: no server, just
/// the report and an exit code CI can gate on.
fn verify_store(dir: &str) -> i32 {
    let store = match FileStore::open(dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("failed to open store {dir}: {e}");
            return 1;
        }
    };
    match mst_wal::verify_store::<Rtree3D, _>(&store) {
        Ok(report) => {
            println!(
                "store {dir}: snapshot at LSN {} ({} bytes), {} segments, \
                 {} replayable records, tail {:?}, next LSN {}",
                report.snapshot_lsn,
                report.snapshot_bytes,
                report.segments.len(),
                report.records,
                report.tail,
                report.next_lsn,
            );
            if report.tail == mst_wal::TailState::Clean {
                println!("verdict: clean");
            } else {
                // Survivable crash damage: recovery truncates it, but an
                // operator should know it is there.
                println!("verdict: recoverable (crash-damaged tail)");
            }
            0
        }
        Err(e) => {
            eprintln!("store {dir} failed verification: {e}");
            1
        }
    }
}
