//! The `mst-serve` binary: builds a GSTD demo dataset, binds, and serves
//! until a `Shutdown` frame arrives.
//!
//! ```text
//! mst-serve [--port N] [--workers N] [--queue N] [--objects N] \
//!           [--shards N] [--deadline-ms N] [--io-threads N] \
//!           [--depth N] [--cache N]
//! ```
//!
//! All flags optional; `--port 0` (the default) picks an ephemeral port
//! and prints it, which is what the bench harness and CI smoke use.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::sync::Arc;

use mst_datagen::GstdConfig;
use mst_exec::ShardedDatabase;
use mst_serve::{Server, ServerConfig};
use mst_trajectory::TrajectoryId;

struct Args {
    port: u16,
    workers: usize,
    queue: usize,
    objects: usize,
    shards: usize,
    deadline_ms: Option<u64>,
    io_threads: usize,
    depth: u16,
    cache: usize,
}

impl Args {
    fn from_env() -> Result<Args, String> {
        let mut args = Args {
            port: 0,
            workers: 2,
            queue: 0,
            objects: 200,
            shards: 4,
            deadline_ms: None,
            io_threads: 1,
            depth: 32,
            cache: 0,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |flag: &str| -> Result<String, String> {
                it.next().ok_or_else(|| format!("{flag} needs a value"))
            };
            match flag.as_str() {
                "--port" => args.port = parse(&value("--port")?)?,
                "--workers" => args.workers = parse(&value("--workers")?)?,
                "--queue" => args.queue = parse(&value("--queue")?)?,
                "--objects" => args.objects = parse(&value("--objects")?)?,
                "--shards" => args.shards = parse(&value("--shards")?)?,
                "--deadline-ms" => args.deadline_ms = Some(parse(&value("--deadline-ms")?)?),
                "--io-threads" => args.io_threads = parse(&value("--io-threads")?)?,
                "--depth" => args.depth = parse(&value("--depth")?)?,
                "--cache" => args.cache = parse(&value("--cache")?)?,
                "--help" | "-h" => {
                    return Err("usage: mst-serve [--port N] [--workers N] [--queue N] \
                         [--objects N] [--shards N] [--deadline-ms N] [--io-threads N] \
                         [--depth N] [--cache N]"
                        .into())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(args)
    }
}

fn parse<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.parse().map_err(|_| format!("invalid value: {raw}"))
}

fn main() {
    let code = run();
    std::process::exit(code);
}

fn run() -> i32 {
    let args = match Args::from_env() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            return 2;
        }
    };
    eprintln!(
        "building GSTD demo dataset: {} objects across {} shards",
        args.objects, args.shards
    );
    let fleet = GstdConfig::paper_dataset(args.objects, 42)
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(i as u64), t));
    let db = match ShardedDatabase::with_rtree(args.shards, fleet) {
        Ok(db) => Arc::new(db),
        Err(e) => {
            eprintln!("failed to build the database: {e}");
            return 1;
        }
    };
    let mut config = ServerConfig::new()
        .port(args.port)
        .workers(args.workers)
        .queue_capacity(args.queue)
        .io_threads(args.io_threads)
        .max_depth(args.depth)
        .cache_capacity(args.cache);
    if let Some(ms) = args.deadline_ms {
        config = config.default_deadline_us(ms.saturating_mul(1000));
    }
    let server = match Server::start(config, db) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("failed to start: {e}");
            return 1;
        }
    };
    // The bench harness and CI smoke parse this line for the port.
    println!("listening on {}", server.local_addr());
    server.join();
    eprintln!("drained and stopped");
    0
}
