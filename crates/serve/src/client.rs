//! A minimal blocking client for the wire protocol: one connection, one
//! request in flight at a time. Exists so tests, benches, and examples
//! don't each hand-roll framing — and as the reference for implementing
//! the protocol in other languages.

use std::net::{TcpStream, ToSocketAddrs};

use mst_search::QueryOptions;
use mst_trajectory::{Mbb, Point, Trajectory};

use crate::protocol::{read_frame, write_frame, Request, Response, StatsReport, WireError};

/// A blocking connection to an `mst-serve` instance.
pub struct ServeClient {
    stream: TcpStream,
}

impl ServeClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Ok(ServeClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Sends one request and blocks for its response. A server that
    /// closes the stream instead of answering surfaces as
    /// [`WireError::Truncated`].
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        write_frame(&mut self.stream, &request.encode())?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Response::decode(&payload),
            None => Err(WireError::Truncated),
        }
    }

    /// Runs a k-MST query for the given query trajectory.
    pub fn kmst(
        &mut self,
        query: &Trajectory,
        options: QueryOptions,
    ) -> Result<Response, WireError> {
        self.request(&Request::Kmst {
            points: query.points().to_vec(),
            options,
        })
    }

    /// Runs a trajectory-kNN query.
    pub fn knn(
        &mut self,
        query: &Trajectory,
        options: QueryOptions,
    ) -> Result<Response, WireError> {
        self.request(&Request::Knn {
            points: query.points().to_vec(),
            options,
        })
    }

    /// Runs a point-kNN (nearest segments) query. The time window must
    /// ride in `options.period`.
    pub fn knn_segments(
        &mut self,
        location: Point,
        options: QueryOptions,
    ) -> Result<Response, WireError> {
        self.request(&Request::KnnSegments { location, options })
    }

    /// Runs a 3D range query.
    pub fn range(&mut self, window: &Mbb, options: QueryOptions) -> Result<Response, WireError> {
        self.request(&Request::Range {
            window: *window,
            options,
        })
    }

    /// Fetches server counters and the merged work profile.
    pub fn stats(&mut self) -> Result<StatsReport, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(WireError::BadPayload("expected a stats response")),
        }
    }

    /// Asks the server to shut down gracefully. `Ok(true)` means the
    /// server acknowledged.
    pub fn shutdown(&mut self) -> Result<bool, WireError> {
        Ok(matches!(
            self.request(&Request::Shutdown)?,
            Response::ShutdownAck
        ))
    }

    /// Raw-sends a payload without framing sanity — for adversarial
    /// tests. Hidden from docs; not part of the client contract.
    #[doc(hidden)]
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
