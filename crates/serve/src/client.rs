//! The wire-protocol v2 client: one connection, up to the negotiated
//! pipeline depth in flight, responses claimable in any order.
//!
//! [`ServeClient::connect`] runs the version handshake (hello at request
//! id 0, [`HelloAck`](crate::protocol::Response::HelloAck) back). After
//! that the API splits:
//!
//! * **Ticket style** — [`ServeClient::send`] writes a request and
//!   returns its [`RequestId`] without waiting;
//!   [`ServeClient::poll`] checks for that response without blocking,
//!   [`ServeClient::wait`] blocks for it, and
//!   [`ServeClient::recv_any`] blocks for whichever response lands next.
//!   This is how a caller keeps `depth` queries in flight and lets a fast
//!   `Stats` answer overtake a slow `Kmst` pipelined before it.
//! * **Blocking convenience** — [`ServeClient::kmst`] and friends are
//!   `send` + `wait`, one request at a time, exactly the old v1 surface.
//!
//! Exists so tests, benches, and examples don't each hand-roll framing —
//! and as the reference for implementing the protocol in other languages.

use std::collections::{HashMap, HashSet};
use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration; // invariant: no clock is read; backoff sleeps are counter-jittered

use mst_search::QueryOptions;
use mst_trajectory::{Mbb, Point, Trajectory};

use crate::protocol::{
    split_frame_v2, write_frame_v2, Request, Response, SplitFrame, StatsReport, WireError, VERSION,
};

/// The pipeline depth a client asks for by default (the server may grant
/// less).
const DEFAULT_DEPTH: u16 = 32;

/// Process-wide sequence mixed into every backoff jitter stream, so two
/// policies built from the same seed in the same process still jitter
/// differently. Deterministic: a counter, never a clock.
static RETRY_SEQ: AtomicU64 = AtomicU64::new(0);

/// Bounded, jittered exponential backoff for connection attempts — used
/// by [`ServeClient::connect`], the replication applier's reconnect
/// loop, and [`crate::pool::ClientPool`] failover.
///
/// Attempt `i` (zero-based) sleeps `base_us << i` capped at `max_us`,
/// scaled by a uniform jitter in `[0.5, 1.0)` so a fleet of clients
/// retrying against one recovering server doesn't stampede in lockstep.
/// The jitter stream is seeded from `seed` and a process-wide counter —
/// never a clock — so retry schedules are reproducible under a fixed
/// seed.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total connection attempts before giving up (minimum 1).
    pub attempts: u32,
    /// Sleep before the second attempt, in microseconds.
    pub base_us: u64,
    /// Cap on any single sleep, in microseconds.
    pub max_us: u64,
    /// Jitter seed; same seed + same process history = same schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    /// 5 attempts, 10 ms base, 500 ms cap: rides out a restart without
    /// making a dead endpoint take more than ~1.5 s to diagnose.
    fn default() -> Self {
        RetryPolicy {
            attempts: 5,
            base_us: 10_000,
            max_us: 500_000,
            seed: 0x6d73_745f_7265_7472, // "mst_retr"
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no sleeping — for tests and callers that manage
    /// retries themselves.
    pub fn none() -> Self {
        RetryPolicy {
            attempts: 1,
            base_us: 0,
            max_us: 0,
            seed: 0,
        }
    }

    /// A fresh jitter stream for one retry sequence.
    pub(crate) fn jitter(&self) -> mst_prng::Rng {
        // ordering: the counter only needs uniqueness, not ordering
        // against any other memory; each fetch_add returns a distinct
        // value under any interleaving.
        let sequence = RETRY_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut state = self.seed ^ sequence.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        mst_prng::Rng::seed_from(mst_prng::splitmix64(&mut state))
    }

    /// The jittered sleep before attempt `attempt + 1` (zero-based).
    pub(crate) fn delay_us(&self, attempt: u32, jitter: &mut mst_prng::Rng) -> u64 {
        let exp = self
            .base_us
            .saturating_shl(attempt.min(32))
            .min(self.max_us);
        let scale = 0.5 + jitter.f64() * 0.5;
        (exp as f64 * scale) as u64
    }
}

/// `u64::checked_shl` with saturation — `base << attempt` without the
/// overflow wrap.
trait SaturatingShl {
    fn saturating_shl(self, rhs: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, rhs: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        self.checked_shl(rhs).unwrap_or(u64::MAX)
    }
}

/// The claim on one in-flight request, echoed back in its response
/// frame. Compact, copyable, and hashable — hold as many as the depth
/// allows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestId(u64);

/// A pipelined v2 connection to an `mst-serve` instance.
pub struct ServeClient {
    stream: TcpStream,
    read_buf: Vec<u8>,
    /// Responses that arrived before their id was claimed.
    ready: HashMap<u64, Response>,
    /// Ids sent and not yet answered.
    pending: HashSet<u64>,
    next_id: u64,
    /// Granted pipeline depth.
    depth: u16,
}

impl ServeClient {
    /// Connects and completes the v2 handshake with the default depth
    /// request, retrying refused connections under the default
    /// [`RetryPolicy`] — a server mid-restart is reached, not errored.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        Self::connect_with_retry(addr, DEFAULT_DEPTH, &RetryPolicy::default())
    }

    /// Connects under an explicit retry policy: up to `policy.attempts`
    /// connection attempts separated by jittered exponential backoff.
    /// Only the TCP connect is retried — a completed handshake that the
    /// server rejects (version mismatch, connection cap) fails
    /// immediately, because retrying it cannot change the answer.
    pub fn connect_with_retry(
        addr: impl ToSocketAddrs,
        depth: u16,
        policy: &RetryPolicy,
    ) -> Result<Self, WireError> {
        // Resolve once; retry over the resolved addresses so a DNS
        // hiccup mid-sequence can't change the target set.
        let addrs: Vec<std::net::SocketAddr> = addr.to_socket_addrs()?.collect();
        if addrs.is_empty() {
            return Err(WireError::BadPayload("address resolved to nothing"));
        }
        let mut jitter = policy.jitter();
        let mut last: Option<WireError> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                let delay = policy.delay_us(attempt - 1, &mut jitter);
                if delay > 0 {
                    std::thread::sleep(Duration::from_micros(delay));
                }
            }
            match Self::connect_with_depth(&addrs[..], depth) {
                Ok(client) => return Ok(client),
                // Handshake-level rejections are deterministic; retrying
                // them only delays the caller's real answer.
                Err(WireError::BadPayload(m)) => return Err(WireError::BadPayload(m)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or(WireError::Truncated))
    }

    /// Connects, asking for a specific pipeline depth. The server clamps
    /// the grant to its own cap; [`ServeClient::depth`] reports it.
    pub fn connect_with_depth(addr: impl ToSocketAddrs, depth: u16) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        let mut client = ServeClient {
            stream,
            read_buf: Vec::new(),
            ready: HashMap::new(),
            pending: HashSet::new(),
            next_id: 1,
            depth: 1,
        };
        let hello = Request::Hello {
            min_version: VERSION,
            max_version: VERSION,
            depth: depth.max(1),
        };
        write_frame_v2(&mut client.stream, 0, &hello.encode())?;
        let (id, response) = client.read_one()?;
        if id != 0 {
            return Err(WireError::BadPayload("hello ack carried a nonzero id"));
        }
        match response {
            Response::HelloAck { version, depth } => {
                if version != VERSION {
                    return Err(WireError::BadPayload("server acked an unknown version"));
                }
                client.depth = depth.max(1);
                Ok(client)
            }
            Response::Overloaded { .. } => {
                Err(WireError::BadPayload("server is at its connection cap"))
            }
            Response::Error { .. } => Err(WireError::BadPayload(
                "server rejected the handshake (version mismatch?)",
            )),
            _ => Err(WireError::BadPayload("expected a hello ack")),
        }
    }

    /// The pipeline depth the server granted.
    pub fn depth(&self) -> u16 {
        self.depth
    }

    /// Requests in flight right now.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Writes one request and returns its id without waiting for the
    /// answer. Errors when the pipeline is already at the granted depth —
    /// claim a response first ([`ServeClient::wait`],
    /// [`ServeClient::recv_any`]), then retry.
    pub fn send(&mut self, request: &Request) -> Result<RequestId, WireError> {
        if self.pending.len() >= usize::from(self.depth) {
            return Err(WireError::BadPayload(
                "pipeline depth exhausted; claim a response before sending more",
            ));
        }
        let id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1).max(1);
        write_frame_v2(&mut self.stream, id, &request.encode())?;
        self.pending.insert(id);
        Ok(RequestId(id))
    }

    /// Checks for `id`'s response without blocking: `Ok(Some(..))`
    /// exactly once when it has arrived, `Ok(None)` while it hasn't.
    pub fn poll(&mut self, id: RequestId) -> Result<Option<Response>, WireError> {
        if let Some(response) = self.ready.remove(&id.0) {
            return Ok(Some(response));
        }
        if !self.pending.contains(&id.0) {
            return Err(WireError::BadPayload("unknown or already-claimed id"));
        }
        self.absorb_available()?;
        Ok(self.ready.remove(&id.0))
    }

    /// Blocks until `id`'s response arrives. Other responses landing
    /// first are parked for their own claims.
    pub fn wait(&mut self, id: RequestId) -> Result<Response, WireError> {
        loop {
            if let Some(response) = self.ready.remove(&id.0) {
                return Ok(response);
            }
            if !self.pending.contains(&id.0) {
                return Err(WireError::BadPayload("unknown or already-claimed id"));
            }
            let (got, response) = self.read_one()?;
            self.settle(got, response)?;
        }
    }

    /// Blocks until *any* response arrives and returns it with its id —
    /// the multiplexing primitive for callers juggling many requests.
    pub fn recv_any(&mut self) -> Result<(RequestId, Response), WireError> {
        loop {
            if let Some(&id) = self.ready.keys().next() {
                let Some(response) = self.ready.remove(&id) else {
                    continue;
                };
                return Ok((RequestId(id), response));
            }
            if self.pending.is_empty() {
                return Err(WireError::BadPayload("no requests in flight"));
            }
            let (got, response) = self.read_one()?;
            self.settle(got, response)?;
        }
    }

    /// Sends one request and blocks for its response — the v1-style
    /// convenience path. A server that closes the stream instead of
    /// answering surfaces as [`WireError::Truncated`].
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        let id = self.send(request)?;
        self.wait(id)
    }

    /// Files an arrived response: into `ready` if it answers a pending
    /// id, error if the id is unknown (a server bug or a hostile peer).
    fn settle(&mut self, id: u64, response: Response) -> Result<(), WireError> {
        if !self.pending.remove(&id) {
            return Err(WireError::BadPayload("response to an unknown request id"));
        }
        self.ready.insert(id, response);
        Ok(())
    }

    /// Blocking-reads exactly one frame.
    fn read_one(&mut self) -> Result<(u64, Response), WireError> {
        let mut chunk = [0u8; 16 << 10];
        loop {
            if let Some(parsed) = self.try_parse()? {
                return Ok(parsed);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(WireError::Truncated);
            }
            self.read_buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Absorbs whatever is already readable without blocking, settling
    /// every complete frame.
    fn absorb_available(&mut self) -> Result<(), WireError> {
        self.stream.set_nonblocking(true)?;
        let mut chunk = [0u8; 16 << 10];
        let result = loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => break Err(WireError::Truncated),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => break Err(WireError::Io(e)),
            }
        };
        self.stream.set_nonblocking(false)?;
        result?;
        while let Some((id, response)) = self.try_parse()? {
            self.settle(id, response)?;
        }
        Ok(())
    }

    /// Carves one frame off the read buffer, if a complete one is there.
    fn try_parse(&mut self) -> Result<Option<(u64, Response)>, WireError> {
        let (consumed, id, decoded) = match split_frame_v2(&self.read_buf)? {
            None => return Ok(None),
            Some(SplitFrame {
                consumed,
                request_id,
                payload,
            }) => (consumed, request_id, Response::decode(payload)),
        };
        self.read_buf.drain(..consumed);
        Ok(Some((id, decoded?)))
    }

    /// Runs a k-MST query for the given query trajectory.
    pub fn kmst(
        &mut self,
        query: &Trajectory,
        options: QueryOptions,
    ) -> Result<Response, WireError> {
        self.request(&Request::Kmst {
            points: query.points().to_vec(),
            options,
        })
    }

    /// Runs a trajectory-kNN query.
    pub fn knn(
        &mut self,
        query: &Trajectory,
        options: QueryOptions,
    ) -> Result<Response, WireError> {
        self.request(&Request::Knn {
            points: query.points().to_vec(),
            options,
        })
    }

    /// Runs a point-kNN (nearest segments) query. The time window must
    /// ride in `options.period`.
    pub fn knn_segments(
        &mut self,
        location: Point,
        options: QueryOptions,
    ) -> Result<Response, WireError> {
        self.request(&Request::KnnSegments { location, options })
    }

    /// Runs a 3D range query.
    pub fn range(&mut self, window: &Mbb, options: QueryOptions) -> Result<Response, WireError> {
        self.request(&Request::Range {
            window: *window,
            options,
        })
    }

    /// Inserts a trajectory under `id` on a durable server. The answer
    /// is [`Response::Ingested`] once the write is logged, fsynced, and
    /// applied — or a typed error ([`ErrorCode::ReadOnly`] on a server
    /// without a durable store, [`ErrorCode::InvalidQuery`] for a
    /// duplicate id).
    ///
    /// [`Response::Ingested`]: crate::protocol::Response::Ingested
    /// [`ErrorCode::ReadOnly`]: crate::protocol::ErrorCode::ReadOnly
    /// [`ErrorCode::InvalidQuery`]: crate::protocol::ErrorCode::InvalidQuery
    pub fn insert_trajectory(
        &mut self,
        id: mst_trajectory::TrajectoryId,
        trajectory: &Trajectory,
    ) -> Result<Response, WireError> {
        self.request(&Request::Insert {
            id,
            points: trajectory.points().to_vec(),
        })
    }

    /// Deletes the trajectory stored under `id` on a durable server.
    /// Deleting an absent id answers `Ingested { applied: false }`, not
    /// an error; a substrate without delete support answers
    /// [`ErrorCode::InvalidQuery`](crate::protocol::ErrorCode::InvalidQuery).
    pub fn delete_trajectory(
        &mut self,
        id: mst_trajectory::TrajectoryId,
    ) -> Result<Response, WireError> {
        self.request(&Request::Delete { id })
    }

    /// Fetches server counters and the merged work profile.
    pub fn stats(&mut self) -> Result<StatsReport, WireError> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            _ => Err(WireError::BadPayload("expected a stats response")),
        }
    }

    /// Asks the server to shut down gracefully. `Ok(true)` means the
    /// server acknowledged.
    pub fn shutdown(&mut self) -> Result<bool, WireError> {
        Ok(matches!(
            self.request(&Request::Shutdown)?,
            Response::ShutdownAck
        ))
    }

    /// Raw-sends a payload without framing sanity — for adversarial
    /// tests. Hidden from docs; not part of the client contract.
    #[doc(hidden)]
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
