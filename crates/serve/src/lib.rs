//! `mst-serve`: a std-only TCP query server for the MST reproduction.
//!
//! Exposes the full [`mst_search::Query`] surface — k-MST, trajectory
//! kNN, point kNN, and 3D range, each with k, time window, deadline, and
//! bound-sharing options — over wire protocol v2 ([`protocol`]): a
//! versioned hello handshake, request-id-tagged frames, and pipelined
//! out-of-order responses, executing on the [`mst_exec`] sharded pool
//! through its admission-controlled [`mst_exec::ExecHandle`].
//!
//! Design commitments, in order:
//!
//! 1. **Bounded everything.** Connections, per-connection pipeline depth,
//!    and queries all pass explicit admission control; saturation answers
//!    with a typed [`Response::Overloaded`](protocol::Response::Overloaded)
//!    frame, never an unbounded queue or a silent hang.
//! 2. **Total decoding.** Any byte sequence decodes to a request or a
//!    typed [`WireError`](protocol::WireError) — no panics, no partial
//!    reads trusted, hostile length prefixes rejected before allocation.
//!    A legacy v1 client gets a typed `UnsupportedVersion` error in its
//!    own framing, never silence.
//! 3. **Bit-identical answers.** A query over the wire runs through the
//!    same builders, executor, and merges as the embedded API, so its
//!    answer is exactly `Query::run`'s — pipelined, multiplexed, deduped,
//!    or cached.
//! 4. **Graceful drain.** Shutdown — by API call or `Shutdown` frame —
//!    finishes every admitted query and delivers its response before the
//!    server stops; the answer cache is invalidated at the transition.
//! 5. **Replication as a client of the same protocol.** A replica
//!    ([`Server::start_replica`]) follows its primary over ordinary v2
//!    frames (`Subscribe` / `Replicate` / `ReplicaAck`), re-verifies and
//!    applies shipped WAL records through the same durable path as local
//!    ingest, and serves reads throughout; clients fail reads over
//!    across a [`ClientPool`] and pin writes to the primary, with
//!    read-your-writes via
//!    [`QueryOptions::min_lsn`](mst_search::QueryOptions::min_lsn).
//!
//! ```no_run
//! use std::sync::Arc;
//! use mst_exec::ShardedDatabase;
//! use mst_search::QueryOptions;
//! use mst_serve::{Server, ServerConfig, ServeClient};
//!
//! # let fleet = vec![(
//! #     mst_trajectory::TrajectoryId(0),
//! #     mst_trajectory::Trajectory::new(vec![
//! #         mst_trajectory::SamplePoint::new(0.0, 0.0, 0.0),
//! #         mst_trajectory::SamplePoint::new(1.0, 1.0, 1.0),
//! #     ])?,
//! # )];
//! # let query = fleet[0].1.clone();
//! let db = Arc::new(ShardedDatabase::with_rtree(2, fleet)?);
//! let server = Server::start(ServerConfig::new().workers(2), db)?;
//! let mut client = ServeClient::connect(server.local_addr())?;
//! let answer = client.kmst(&query, QueryOptions::new().k(5))?;
//! client.shutdown()?;
//! server.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
pub mod client;
mod ingest;
mod mux;
pub mod pool;
pub mod protocol;
mod repl;
pub mod server;

pub use client::{RequestId, RetryPolicy, ServeClient};
pub use pool::ClientPool;
pub use protocol::{
    ErrorCode, ProfileSummary, Request, Response, ServerCounters, StatsReport, WireError,
    MAX_FRAME, VERSION,
};
pub use server::{ServeError, Server, ServerConfig, ServerHandle};
