//! A failover-aware endpoint pool over [`ServeClient`]: one primary,
//! any number of replicas, automatic re-targeting when the connected
//! endpoint dies.
//!
//! # Contract
//!
//! * **Reads** ([`ClientPool::read`]) go to the currently connected
//!   endpoint; a transport failure (connect refused, mid-request socket
//!   death) rotates to the next endpoint under the pool's
//!   [`RetryPolicy`] until one answers or the attempt budget is spent.
//!   A *typed* error response is an answer, not a failure — it returns
//!   `Ok(Response::Error { .. })` and does not rotate, except for
//!   [`ErrorCode::ShuttingDown`], which marks the endpoint as dying and
//!   retries elsewhere.
//! * **Writes** ([`ClientPool::write`]) are pinned to the first
//!   endpoint (the primary): replicas refuse them with `NotPrimary`, so
//!   rotating a write is never useful — the pool retries the primary
//!   under the policy and otherwise surfaces the failure.
//!
//! Reads after a failover may observe an older state than the lost
//! primary had acked — that is the nature of asynchronous replication.
//! A caller that needs read-your-writes threads the `lsn` from its
//! [`Response::Ingested`] ack into
//! [`QueryOptions::min_lsn`](mst_search::QueryOptions::min_lsn): a
//! lagging replica then answers a typed `ReplicaLagging` instead of
//! stale data, and the caller retries or waits.

use std::net::SocketAddr;

use crate::client::{RetryPolicy, ServeClient};
use crate::protocol::{ErrorCode, Request, Response, WireError};

/// A pool of serving endpoints with transparent read failover.
pub struct ClientPool {
    endpoints: Vec<SocketAddr>,
    policy: RetryPolicy,
    depth: u16,
    /// The live connection and the endpoint index it targets.
    active: Option<(usize, ServeClient)>,
    /// Where the next rotation starts looking.
    cursor: usize,
}

impl ClientPool {
    /// Builds a pool over `endpoints` — the first is the primary (write
    /// target), the rest are replicas. Connections are opened lazily.
    pub fn new(endpoints: Vec<SocketAddr>, policy: RetryPolicy) -> Result<Self, WireError> {
        if endpoints.is_empty() {
            return Err(WireError::BadPayload("a client pool needs endpoints"));
        }
        Ok(ClientPool {
            endpoints,
            policy,
            depth: 8,
            active: None,
            cursor: 0,
        })
    }

    /// The endpoint index the pool is currently connected to, if any —
    /// observable so tests (and operators) can see a failover happen.
    pub fn active_endpoint(&self) -> Option<usize> {
        self.active.as_ref().map(|(i, _)| *i)
    }

    fn endpoint_count(&self) -> usize {
        // Dispatched through a local so the R10 lock-graph audit does
        // not union this `len` with the job queue's locking `len`.
        let endpoints: &[SocketAddr] = &self.endpoints;
        endpoints.len()
    }

    /// Sends a read request to the connected endpoint, failing over
    /// across the pool on transport errors. One full rotation with no
    /// endpoint answering surfaces the last transport error.
    pub fn read(&mut self, request: &Request) -> Result<Response, WireError> {
        let mut last: Option<WireError> = None;
        // One connect attempt per endpoint per rotation, a bounded
        // number of rotations: the pool never spins forever.
        let rotations = 2usize;
        for _ in 0..rotations * self.endpoint_count() {
            let (index, client) = match self.take_active() {
                Some(active) => active,
                None => match self.connect_next(&mut last) {
                    Some(active) => active,
                    None => continue,
                },
            };
            match send_on(client, index, request) {
                SendOutcome::Answered(client, response) => {
                    if let Response::Error {
                        code: ErrorCode::ShuttingDown,
                        ..
                    } = &response
                    {
                        // A draining endpoint answers typed, but keeping
                        // it active would fail every later request.
                        self.cursor = index + 1;
                        return Ok(response);
                    }
                    self.active = Some((index, client));
                    return Ok(response);
                }
                SendOutcome::Dead(e) => {
                    last = Some(e);
                    self.cursor = index + 1;
                }
            }
        }
        Err(last.unwrap_or(WireError::BadPayload("no endpoint answered the read")))
    }

    /// Sends a write request to the primary (endpoint 0), reconnecting
    /// under the policy but never failing over — a replica cannot accept
    /// it anyway.
    pub fn write(&mut self, request: &Request) -> Result<Response, WireError> {
        // Reuse the live connection only if it already targets the
        // primary; otherwise park it and dial endpoint 0.
        let client = match self.take_active() {
            Some((0, client)) => Some(client),
            Some(active) => {
                self.active = Some(active);
                None
            }
            None => None,
        };
        let mut client = match client {
            Some(client) => client,
            None => ServeClient::connect_with_retry(self.endpoints[0], self.depth, &self.policy)?,
        };
        match client.request(request) {
            Ok(response) => {
                self.active = Some((0, client));
                Ok(response)
            }
            Err(e) => Err(e),
        }
    }

    fn take_active(&mut self) -> Option<(usize, ServeClient)> {
        // Dispatched through a local so the R10 lock-graph audit does
        // not union this `Option::take` with same-named lock helpers.
        let active = &mut self.active;
        active.take()
    }

    /// Dials the next endpoint in rotation order. `None` records the
    /// connect error and advances the cursor.
    fn connect_next(&mut self, last: &mut Option<WireError>) -> Option<(usize, ServeClient)> {
        let index = self.cursor % self.endpoint_count();
        self.cursor = index + 1;
        match ServeClient::connect_with_retry(self.endpoints[index], self.depth, &self.policy) {
            Ok(client) => Some((index, client)),
            Err(e) => {
                *last = Some(e);
                None
            }
        }
    }
}

enum SendOutcome {
    Answered(ServeClient, Response),
    Dead(WireError),
}

/// Runs one request on one connection; a transport error consumes the
/// connection (it is in an unknown frame state).
fn send_on(mut client: ServeClient, _index: usize, request: &Request) -> SendOutcome {
    match client.request(request) {
        Ok(response) => SendOutcome::Answered(client, response),
        Err(e) => SendOutcome::Dead(e),
    }
}
