//! The replica side of WAL shipping: the bootstrap snapshot fetch and
//! the applier loop that follows the primary.
//!
//! The replica is an ordinary wire-protocol v2 **client** of the
//! primary. One `Subscribe { from_lsn }` opens the stream; from then on
//! every `ReplicaAck { lsn }` doubles as "send me what follows `lsn`",
//! so the stream needs no server-side cursor state — a reconnect simply
//! subscribes again from the replica's own applied LSN. An empty
//! `Replicate` batch is the heartbeat: it still carries the primary's
//! committed LSN, which keeps the replica's lag gauge live while the
//! primary is write-idle.
//!
//! Every shipped frame is re-verified and applied through
//! [`mst_wal::DurableDatabase::apply_replicated`] — the same
//! log-then-apply path as local ingest, with gapless-LSN enforcement —
//! so a corrupt or resequenced stream refuses loudly instead of
//! diverging silently. After each applied batch the applier invalidates
//! the answer cache and advances the visibility watermark, making
//! `min_lsn` reads exact on the replica.
//!
//! A lost primary is retried forever with jittered backoff; the replica
//! keeps serving reads at its last applied state throughout. The one
//! unrecoverable-in-place situation is falling below the primary's
//! replication floor while disconnected (the primary checkpointed past
//! our position): the stream would need a fresh snapshot, but the
//! serving layer holds `Arc` clones of the current shards, so the
//! database cannot be swapped out from under it. The applier keeps
//! retrying (the floor never rises past a connected subscriber's acks
//! in practice); restarting the replica with an empty store
//! re-bootstraps it.

use std::net::SocketAddr;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration; // invariant: no clock is read; only sleeps and socket timeouts

use mst_wal::{DurableDatabase, DurableSubstrate, LogStore};

use crate::client::{RetryPolicy, ServeClient};
use crate::protocol::{Request, Response, WireError};
use crate::server::{ServerStats, Shared};

/// Read timeout on the applier's connection to the primary: bounds how
/// long a shutdown waits on a silent socket, and paces reconnect
/// discovery when the primary dies without a FIN.
const APPLIER_READ_TIMEOUT: Duration = Duration::from_millis(500);

/// Pause between polls while the primary has nothing new — the replica's
/// contribution to the poll period (the primary's coalescer tick is the
/// other part).
const IDLE_POLL_PAUSE: Duration = Duration::from_millis(3);

/// Read timeout while pulling the bootstrap snapshot, which can be a
/// multi-megabyte frame: generous, but still bounded.
const BOOTSTRAP_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Fetches a bootstrap snapshot from the primary: `Subscribe` with the
/// `from_lsn: 0` sentinel, which sits below any replication floor and
/// therefore always answers a full snapshot encoded at the primary's
/// committed LSN.
pub(crate) fn fetch_bootstrap_snapshot(
    primary: SocketAddr,
    retry: &RetryPolicy,
) -> Result<Vec<u8>, String> {
    let mut client = ServeClient::connect_with_retry(primary, 1, retry)
        .map_err(|e| format!("connecting to the primary at {primary}: {e}"))?;
    // invariant: a socket that rejects the timeout still reads; the
    // bound is a liveness nicety, not a correctness requirement
    let _ = client
        .raw_stream()
        .set_read_timeout(Some(BOOTSTRAP_READ_TIMEOUT));
    match client.request(&Request::Subscribe { from_lsn: 0 }) {
        Ok(Response::Replicate {
            snapshot: Some(snapshot),
            ..
        }) => Ok(snapshot),
        Ok(Response::Replicate { snapshot: None, .. }) => Err(
            "the primary answered the bootstrap subscribe with records instead of a snapshot"
                .into(),
        ),
        Ok(Response::Error { code, message }) => Err(format!(
            "the primary refused the subscription ({code:?}): {message}"
        )),
        Ok(_) => Err("the primary answered the subscribe with a non-replication frame".into()),
        Err(e) => Err(format!("streaming the bootstrap snapshot: {e}")),
    }
}

/// The replica applier: follows the primary until shutdown, applying
/// shipped batches and acking each one. Runs on the `mst-serve-repl`
/// thread; [`crate::server::ServerHandle`] joins it at teardown.
pub(crate) fn applier_loop<I, S>(
    shared: &Arc<Shared<I>>,
    mut durable: DurableDatabase<I, S>,
    primary: SocketAddr,
    retry: &RetryPolicy,
) where
    I: DurableSubstrate + Send + 'static,
    S: LogStore + Send + 'static,
    S::Log: Send,
{
    let mut first_connection = true;
    // Consecutive failed rounds, for backoff shaping; resets on any
    // successfully applied batch or heartbeat.
    let mut failed_rounds: u32 = 0;
    while !shared.shutting_down.load(Ordering::SeqCst) {
        if !first_connection {
            ServerStats::bump(&shared.stats.repl_reconnects);
            backoff_sleep(shared, retry, failed_rounds);
            failed_rounds = failed_rounds.saturating_add(1);
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
        }
        first_connection = false;
        let mut client = match ServeClient::connect_with_retry(primary, 1, retry) {
            Ok(client) => client,
            Err(_) => continue,
        };
        // invariant: as in the bootstrap — the timeout bounds shutdown
        // latency; a socket that refuses it merely drains slower
        let _ = client
            .raw_stream()
            .set_read_timeout(Some(APPLIER_READ_TIMEOUT));
        let from_lsn = durable.applied_lsn().saturating_add(1);
        let Some(mut response) = exchange(shared, &mut client, &Request::Subscribe { from_lsn })
        else {
            continue;
        };
        // The streaming loop: apply what arrived, ack, wait for more.
        loop {
            if shared.shutting_down.load(Ordering::SeqCst) {
                return;
            }
            match response {
                Response::Replicate {
                    committed_lsn,
                    snapshot,
                    records,
                } => {
                    ServerStats::raise(&shared.stats.repl_committed_lsn, committed_lsn);
                    if snapshot.is_some() {
                        // We fell below the primary's replication floor:
                        // a snapshot cannot be applied in place (the
                        // serving layer holds the current shards), so
                        // back off, retry, and keep serving what we
                        // have. A restart with an empty store
                        // re-bootstraps.
                        break;
                    }
                    if records.is_empty() {
                        // Heartbeat: the gauge above is the payload.
                        failed_rounds = 0;
                        std::thread::sleep(IDLE_POLL_PAUSE);
                    } else {
                        let shipped = records.len() as u64;
                        match durable.apply_replicated(&records) {
                            Ok(applied) => {
                                failed_rounds = 0;
                                // Visibility settles before the ack: the
                                // cache first, then the watermark, so a
                                // `min_lsn` read admitted after the
                                // watermark moved can never hit a stale
                                // cached answer.
                                shared.cache.invalidate();
                                shared.watermark.advance(applied);
                                ServerStats::raise(&shared.stats.repl_applied_lsn, applied);
                                ServerStats::bump_by(&shared.stats.repl_records_applied, shipped);
                            }
                            // A gap or a tampered frame: nothing of the
                            // batch applied. Resubscribing from our real
                            // position is the only sound continuation.
                            Err(_) => break,
                        }
                    }
                    let ack = Request::ReplicaAck {
                        lsn: durable.applied_lsn(),
                    };
                    match exchange(shared, &mut client, &ack) {
                        Some(next) => response = next,
                        None => break,
                    }
                }
                // Typed refusals (draining primary, a primary demoted to
                // replica, overload) and anything unexpected: drop the
                // connection and retry through the backoff path.
                _ => break,
            }
        }
    }
}

/// Sends one request and waits for its response, tolerating read
/// timeouts (rechecking the shutdown flag each time) so a write-idle
/// primary doesn't look dead. `None` means the connection is unusable —
/// reconnect.
fn exchange<I>(
    shared: &Arc<Shared<I>>,
    client: &mut ServeClient,
    request: &Request,
) -> Option<Response> {
    let id = client.send(request).ok()?;
    loop {
        match client.wait(id) {
            Ok(response) => return Some(response),
            Err(WireError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    return None;
                }
            }
            Err(_) => return None,
        }
    }
}

/// Sleeps one jittered backoff round, in slices short enough that a
/// shutdown never waits behind a full backoff cap.
fn backoff_sleep<I>(shared: &Arc<Shared<I>>, retry: &RetryPolicy, round: u32) {
    let mut jitter = retry.jitter();
    let mut remaining_us = retry.delay_us(round, &mut jitter).max(1_000);
    while remaining_us > 0 && !shared.shutting_down.load(Ordering::SeqCst) {
        let slice = remaining_us.min(50_000);
        std::thread::sleep(Duration::from_micros(slice));
        remaining_us -= slice;
    }
}
