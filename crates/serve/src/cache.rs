//! The bounded answer cache: canonicalised query → encoded response
//! payload.
//!
//! # Key discipline
//!
//! A cache key is the query kind, the canonical form of its
//! [`QueryOptions`] ([`mst_search::OptionsKey`] — deadline **excluded**,
//! `NaN`/`-0.0` folded), and the canonical bit patterns of its geometry.
//! Two textually different requests that are bit-for-bit the same query
//! share an entry; a request differing only in deadline shares it too,
//! because a certified (non-degraded) answer is valid under any
//! deadline. Degraded answers are **never** cached.
//!
//! # Invalidation
//!
//! [`AnswerCache::invalidate`] clears the map and bumps a generation
//! counter. Insertions carry the generation observed when their query
//! was admitted; an insert whose generation is stale (an invalidation
//! happened while the query executed) is dropped, so an answer computed
//! against pre-transition state can never resurface after the
//! transition. The server invalidates on the shutdown transition; any
//! future ingest path must do the same.
//!
//! Eviction is FIFO: the oldest entry leaves when a new key arrives at
//! capacity. Hit/miss accounting lives in the server's counters, not
//! here — the cache itself is a dumb bounded map.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use mst_search::canonical_f64_bits;

use crate::protocol::Request;

/// The state under the cache's lock.
struct CacheInner {
    map: HashMap<Vec<u8>, Arc<Vec<u8>>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<Vec<u8>>,
    /// Bumped by every invalidation; stale inserts are dropped.
    generation: u64,
}

/// A bounded FIFO cache of encoded response payloads, keyed on
/// canonicalised queries. Capacity 0 disables it entirely.
pub(crate) struct AnswerCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

impl AnswerCache {
    pub(crate) fn new(capacity: usize) -> Self {
        AnswerCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                order: VecDeque::new(),
                generation: 0,
            }),
            capacity,
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The current generation, to be captured at query admission and
    /// passed back to [`AnswerCache::insert_if`].
    pub(crate) fn generation(&self) -> u64 {
        match self.inner.lock() {
            Ok(inner) => inner.generation,
            // A poisoned cache behaves as permanently invalidated.
            Err(_) => u64::MAX,
        }
    }

    pub(crate) fn lookup(&self, key: &[u8]) -> Option<Arc<Vec<u8>>> {
        if !self.enabled() {
            return None;
        }
        let Ok(inner) = self.inner.lock() else {
            return None;
        };
        inner.map.get(key).cloned()
    }

    /// Inserts unless the cache is disabled, the generation is stale, or
    /// the key is already present (first answer wins; all answers for
    /// one key are bit-identical by construction). Returns whether the
    /// entry went in.
    pub(crate) fn insert_if(&self, key: Vec<u8>, payload: Arc<Vec<u8>>, generation: u64) -> bool {
        if !self.enabled() {
            return false;
        }
        let Ok(mut inner) = self.inner.lock() else {
            return false;
        };
        if inner.generation != generation || inner.map.contains_key(&key) {
            return false;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(oldest) => {
                    inner.map.remove(&oldest);
                }
                // Order/map desync cannot happen by construction, but a
                // defensive break beats an infinite loop.
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, payload);
        true
    }

    /// Clears every entry and bumps the generation so in-flight inserts
    /// against the old state are dropped.
    pub(crate) fn invalidate(&self) {
        if let Ok(mut inner) = self.inner.lock() {
            inner.map.clear();
            inner.order.clear();
            inner.generation = inner.generation.wrapping_add(1);
        }
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().map(|i| i.map.len()).unwrap_or(0)
    }
}

fn put_canonical(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&canonical_f64_bits(v).to_le_bytes());
}

/// The canonical cache key of a request: kind byte, canonical options
/// ([`mst_search::OptionsKey`], deadline excluded), canonical geometry
/// bits. `None` for control requests, which are never cached. Injective
/// over semantically distinct queries: the kind byte separates flavours
/// and every variable-length section is count-prefixed.
pub(crate) fn cache_key(request: &Request) -> Option<Vec<u8>> {
    let mut key = Vec::new();
    match request {
        Request::Kmst { points, options } => {
            key.push(1);
            options.canonical_key().encode_into(&mut key);
            put_point_list(&mut key, points);
        }
        Request::Knn { points, options } => {
            key.push(2);
            options.canonical_key().encode_into(&mut key);
            put_point_list(&mut key, points);
        }
        Request::KnnSegments { location, options } => {
            key.push(3);
            options.canonical_key().encode_into(&mut key);
            put_canonical(&mut key, location.x);
            put_canonical(&mut key, location.y);
        }
        Request::Range { window, options } => {
            key.push(4);
            options.canonical_key().encode_into(&mut key);
            for v in [
                window.x_min,
                window.y_min,
                window.t_min,
                window.x_max,
                window.y_max,
                window.t_max,
            ] {
                put_canonical(&mut key, v);
            }
        }
        Request::Stats
        | Request::Shutdown
        | Request::Hello { .. }
        | Request::Insert { .. }
        | Request::Delete { .. }
        | Request::Subscribe { .. }
        | Request::ReplicaAck { .. } => return None,
    }
    Some(key)
}

fn put_point_list(out: &mut Vec<u8>, points: &[mst_trajectory::SamplePoint]) {
    let count = u32::try_from(points.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&count.to_le_bytes());
    for p in points {
        put_canonical(out, p.t);
        put_canonical(out, p.x);
        put_canonical(out, p.y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_search::QueryOptions;
    use mst_trajectory::{Point, SamplePoint};

    fn payload(byte: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![byte; 4])
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let cache = AnswerCache::new(2);
        let generation = cache.generation();
        assert!(cache.insert_if(vec![1], payload(1), generation));
        assert!(cache.insert_if(vec![2], payload(2), generation));
        assert!(cache.insert_if(vec![3], payload(3), generation));
        assert_eq!(cache.len(), 2);
        // The oldest key left; the two newest remain.
        assert!(cache.lookup(&[1]).is_none());
        assert_eq!(cache.lookup(&[2]).map(|p| p[0]), Some(2));
        assert_eq!(cache.lookup(&[3]).map(|p| p[0]), Some(3));
        // First answer wins for a duplicate key.
        assert!(!cache.insert_if(vec![2], payload(9), generation));
        assert_eq!(cache.lookup(&[2]).map(|p| p[0]), Some(2));
    }

    #[test]
    fn stale_generation_inserts_are_dropped() {
        let cache = AnswerCache::new(4);
        let before = cache.generation();
        assert!(cache.insert_if(vec![1], payload(1), before));
        cache.invalidate();
        assert!(cache.lookup(&[1]).is_none());
        // An answer computed before the invalidation must not resurface.
        assert!(!cache.insert_if(vec![2], payload(2), before));
        assert!(cache.lookup(&[2]).is_none());
        // A fresh generation inserts fine.
        assert!(cache.insert_if(vec![2], payload(2), cache.generation()));
        assert_eq!(cache.lookup(&[2]).map(|p| p[0]), Some(2));
    }

    #[test]
    fn capacity_zero_disables_everything() {
        let cache = AnswerCache::new(0);
        assert!(!cache.enabled());
        let generation = cache.generation();
        assert!(!cache.insert_if(vec![1], payload(1), generation));
        assert!(cache.lookup(&[1]).is_none());
    }

    #[test]
    fn keys_separate_flavours_and_ignore_deadlines() {
        let points = vec![
            SamplePoint::new(0.0, 1.0, 2.0),
            SamplePoint::new(1.0, 3.0, 4.0),
        ];
        let kmst = cache_key(&Request::Kmst {
            points: points.clone(),
            options: QueryOptions::new().k(3),
        })
        .expect("query key");
        let knn = cache_key(&Request::Knn {
            points: points.clone(),
            options: QueryOptions::new().k(3),
        })
        .expect("query key");
        assert_ne!(kmst, knn, "kind byte separates flavours");
        let with_deadline = cache_key(&Request::Kmst {
            points: points.clone(),
            options: QueryOptions::new().k(3).deadline_us(500),
        })
        .expect("query key");
        assert_eq!(kmst, with_deadline, "deadline must not split entries");
        let other_k = cache_key(&Request::Kmst {
            points,
            options: QueryOptions::new().k(4),
        })
        .expect("query key");
        assert_ne!(kmst, other_k);
        let with_min_lsn = cache_key(&Request::Kmst {
            points: vec![
                SamplePoint::new(0.0, 1.0, 2.0),
                SamplePoint::new(1.0, 3.0, 4.0),
            ],
            options: QueryOptions::new().k(3).min_lsn(120),
        })
        .expect("query key");
        assert_eq!(
            kmst, with_min_lsn,
            "the read-your-writes token gates admission, not the answer"
        );
        assert!(cache_key(&Request::Stats).is_none());
        assert!(cache_key(&Request::Shutdown).is_none());
        assert!(cache_key(&Request::Subscribe { from_lsn: 1 }).is_none());
        assert!(cache_key(&Request::ReplicaAck { lsn: 0 }).is_none());
    }

    #[test]
    fn negative_zero_geometry_folds_to_one_key() {
        let a = cache_key(&Request::KnnSegments {
            location: Point::new(-0.0, 5.0),
            options: QueryOptions::new().k(2),
        })
        .expect("query key");
        let b = cache_key(&Request::KnnSegments {
            location: Point::new(0.0, 5.0),
            options: QueryOptions::new().k(2),
        })
        .expect("query key");
        assert_eq!(a, b, "-0.0 and 0.0 describe the same location");
    }
}
