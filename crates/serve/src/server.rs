//! The TCP server: accept loop, per-connection workers, admission
//! control, and the graceful-shutdown drain.
//!
//! # Admission control
//!
//! Two bounded resources, two typed rejections:
//!
//! * **Connections** — at [`ServerConfig::max_connections`] the accept
//!   loop answers a newcomer with one `Overloaded` frame and closes it;
//!   nothing queues.
//! * **Queries** — each request goes through
//!   [`ExecHandle::try_submit`], whose bounded queue either admits the
//!   query or rejects it *without blocking*; the rejection travels back
//!   as an `Overloaded` frame carrying queue occupancy. The client
//!   decides whether to retry. The server never queues unboundedly and a
//!   saturated executor can never hang a connection.
//!
//! # Shutdown sequence
//!
//! 1. the shutdown flag flips (new requests answer `ShuttingDown`);
//! 2. a self-connection unblocks the accept loop, which stops accepting;
//! 3. every registered connection's *read* half is shut down — idle
//!    connections unblock immediately, busy ones finish their current
//!    request first;
//! 4. connection threads are joined — in-flight queries run to
//!    completion and their responses are written (the execution queue is
//!    still open here, so no admitted query is lost);
//! 5. the execution pool drains and joins;
//! 6. the accept thread exits and [`ServerHandle::join`] returns.

use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
// Configures a socket write timeout below — an I/O scheduling input like
// the executor's deadlines, not a measurement.
use std::time::Duration; // invariant: no clock is read; determinism holds

/// Upper bound on any single blocked response write. A peer that stops
/// reading (full TCP send buffer) fails the write instead of pinning its
/// connection thread — and the shutdown drain's join — forever.
const WRITE_TIMEOUT: Duration = Duration::from_secs(10);

use mst_exec::{BatchExecutor, BatchQuery, ExecHandle, QueryAnswer, ShardedDatabase, SubmitError};
use mst_index::TrajectoryIndex;
use mst_search::{Query, QueryProfile};
use mst_trajectory::Trajectory;

use crate::protocol::{
    read_frame, write_frame, ErrorCode, ProfileSummary, Request, Response, ServerCounters,
    StatsReport, WireError,
};

/// Errors of the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The execution layer failed to start or was misconfigured.
    Exec(mst_exec::ExecError),
    /// A socket operation failed while starting or stopping the server.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Exec(e) => write!(f, "execution layer: {e}"),
            ServeError::Io(e) => write!(f, "socket: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            ServeError::Io(e) => Some(e),
        }
    }
}

impl From<mst_exec::ExecError> for ServeError {
    fn from(e: mst_exec::ExecError) -> Self {
        ServeError::Exec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Executor worker threads (minimum 1).
    pub workers: usize,
    /// Bound of the query admission queue; 0 means `2 x workers`.
    pub queue_capacity: usize,
    /// Maximum simultaneously served connections.
    pub max_connections: usize,
    /// Default per-query deadline in microseconds, applied when a request
    /// carries none.
    pub default_deadline_us: Option<u64>,
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 0,
            max_connections: 64,
            default_deadline_us: None,
            port: 0,
        }
    }
}

impl ServerConfig {
    /// The default configuration: 2 workers, queue bound `2 x workers`,
    /// 64 connections, no deadline, ephemeral port.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Sets the executor worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission-queue bound (0 restores the `2 x workers`
    /// default).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the connection cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Sets the default per-query deadline in microseconds.
    pub fn default_deadline_us(mut self, deadline: u64) -> Self {
        self.default_deadline_us = Some(deadline);
        self
    }

    /// Sets the port (0 = ephemeral).
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }
}

/// Monotonic counters, updated lock-free from every thread.
#[derive(Debug, Default)]
struct ServerStats {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests_decoded: AtomicU64,
    queries_admitted: AtomicU64,
    queries_completed: AtomicU64,
    queries_degraded: AtomicU64,
    overload_rejections: AtomicU64,
    malformed_frames: AtomicU64,
    invalid_queries: AtomicU64,
}

impl ServerStats {
    fn bump(counter: &AtomicU64) {
        // ordering: monotonic stats counter; it orders nothing and a
        // reader tolerates a slightly stale total.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    fn read(counter: &AtomicU64) -> u64 {
        // ordering: stats snapshots are advisory; counters imply no
        // ordering with the data they describe, and cross-counter skew
        // within one snapshot is acceptable by contract.
        counter.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            connections_accepted: Self::read(&self.connections_accepted),
            connections_rejected: Self::read(&self.connections_rejected),
            requests_decoded: Self::read(&self.requests_decoded),
            queries_admitted: Self::read(&self.queries_admitted),
            queries_completed: Self::read(&self.queries_completed),
            queries_degraded: Self::read(&self.queries_degraded),
            overload_rejections: Self::read(&self.overload_rejections),
            malformed_frames: Self::read(&self.malformed_frames),
            invalid_queries: Self::read(&self.invalid_queries),
        }
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared<I> {
    exec: ExecHandle<I>,
    stats: ServerStats,
    /// Work profile merged from every completed query.
    profile: Mutex<QueryProfile>,
    shutting_down: AtomicBool,
    /// Read halves of live connections, for the shutdown drain.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    /// The bound address, for the shutdown self-connection poke.
    addr: SocketAddr,
}

impl<I> Shared<I> {
    fn stats_report(&self) -> StatsReport {
        let profile = match self.profile.lock() {
            Ok(p) => profile_summary(&p),
            Err(_) => ProfileSummary::default(),
        };
        StatsReport {
            counters: self.stats.snapshot(),
            profile,
        }
    }
}

fn profile_summary(p: &QueryProfile) -> ProfileSummary {
    ProfileSummary {
        heap_pushes: p.heap_pushes,
        heap_pops: p.heap_pops,
        nodes_accessed: p.nodes_accessed(),
        buffer_hits: p.buffer_hits,
        buffer_misses: p.buffer_misses,
        piece_evals: p.piece_evals(),
        early_terminations: p.early_terminations,
    }
}

/// Entry point: [`Server::start`] binds, spawns, and hands back a
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `127.0.0.1:port`, spawns the execution pool and the accept
    /// loop, and returns the running server's handle. The bound address
    /// (with the resolved ephemeral port) is
    /// [`ServerHandle::local_addr`].
    pub fn start<I>(
        config: ServerConfig,
        db: Arc<ShardedDatabase<I>>,
    ) -> Result<ServerHandle<I>, ServeError>
    where
        I: TrajectoryIndex + Send + 'static,
    {
        let mut executor = BatchExecutor::new()
            .workers(config.workers)
            .queue_capacity(config.queue_capacity);
        if let Some(us) = config.default_deadline_us {
            executor = executor.deadline_us(us);
        }
        let exec = executor.submit_handle(db)?;
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, config.port))?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            exec,
            stats: ServerStats::default(),
            profile: Mutex::new(QueryProfile::default()),
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(0),
            addr: local_addr,
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mst-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener, config.max_connections))?
        };
        Ok(ServerHandle {
            local_addr,
            shared,
            accept: Mutex::new(Some(accept)),
        })
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (in-flight queries drain).
pub struct ServerHandle<I> {
    local_addr: SocketAddr,
    shared: Arc<Shared<I>>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<I> ServerHandle<I>
where
    I: TrajectoryIndex + Send + 'static,
{
    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once shutdown has been requested (by this handle or by a
    /// `Shutdown` frame).
    pub fn is_shutting_down(&self) -> bool {
        // ordering: advisory poll of a sticky one-way flag; the drain
        // itself synchronizes through the accept-thread join, not here.
        self.shared.shutting_down.load(Ordering::Relaxed)
    }

    /// Requests graceful shutdown and blocks until the drain completes:
    /// every in-flight query answers, every connection closes, every
    /// thread joins. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
        self.join();
    }

    /// Blocks until the server stops (a `Shutdown` frame, or
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(&self) {
        let handle = match self.accept.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(handle) = handle {
            // invariant: an accept-loop panic has already stopped the
            // server; surfacing the payload here adds nothing
            let _ = handle.join();
        }
    }
}

impl<I> Drop for ServerHandle<I> {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        let handle = match self.accept.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(handle) = handle {
            // invariant: same policy as join() — the server is already
            // stopped when an accept-loop panic would surface here
            let _ = handle.join();
        }
    }
}

/// Flips the flag and pokes the accept loop awake with a throwaway
/// self-connection; the accept thread runs the actual drain.
fn initiate_shutdown<I>(shared: &Shared<I>) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // The accept loop blocks in accept(); a self-connection is the
    // std-only way to unblock it promptly. If it fails (listener already
    // gone), accept() has already returned.
    if let Ok(stream) = TcpStream::connect(shared.addr) {
        drop(stream);
    }
}

fn accept_loop<I>(shared: &Arc<Shared<I>>, listener: &TcpListener, max_connections: usize)
where
    I: TrajectoryIndex + Send + 'static,
{
    let mut conn_threads: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.shutting_down.load(Ordering::SeqCst) {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if shared.shutting_down.load(Ordering::SeqCst) {
            drop(stream);
            break;
        }
        conn_threads.retain(|t| !t.is_finished());
        let live = match shared.conns.lock() {
            Ok(map) => map.len(),
            Err(_) => max_connections,
        };
        if live >= max_connections {
            ServerStats::bump(&shared.stats.connections_rejected);
            reject_connection(stream, max_connections);
            continue;
        }
        // invariant: best-effort — if the option cannot be set the
        // connection still works; only the blocked-write bound is lost
        let _ = stream.set_write_timeout(Some(WRITE_TIMEOUT));
        // An untracked connection would evade the cap and be unreachable
        // by the shutdown drain, so a failed clone is a refusal.
        let read_half = match stream.try_clone() {
            Ok(half) => half,
            Err(_) => {
                ServerStats::bump(&shared.stats.connections_rejected);
                drop(stream);
                continue;
            }
        };
        ServerStats::bump(&shared.stats.connections_accepted);
        // ordering: a unique-id ticket; fetch_add is atomic under any
        // ordering and the id carries no cross-thread data dependency.
        let id = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(mut map) = shared.conns.lock() {
            map.insert(id, read_half);
        }
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name(format!("mst-serve-conn-{id}"))
            .spawn(move || {
                serve_connection(&conn_shared, stream);
                if let Ok(mut map) = conn_shared.conns.lock() {
                    map.remove(&id);
                }
            });
        match spawned {
            Ok(handle) => conn_threads.push(handle),
            Err(_) => {
                // Could not spawn: undo the registration; the stream
                // drops and the client sees a closed connection.
                ServerStats::bump(&shared.stats.connections_rejected);
                if let Ok(mut map) = shared.conns.lock() {
                    map.remove(&id);
                }
            }
        }
    }

    // Drain: unblock every connection's read, let busy ones finish their
    // in-flight request, then join.
    if let Ok(map) = shared.conns.lock() {
        for stream in map.values() {
            // invariant: a connection that already closed cannot be shut
            // down again; the drain only needs best-effort unblocking.
            // Read half only: in-flight responses must still be written.
            // WRITE_TIMEOUT bounds a write to a peer that never reads, so
            // the join below cannot hang on it.
            let _ = stream.shutdown(Shutdown::Read);
        }
    }
    for handle in conn_threads {
        // invariant: a panicked connection thread has already dropped its
        // socket; the drain must keep joining the rest
        let _ = handle.join();
    }
    shared.exec.shutdown();
}

/// Answers an over-cap connection with one `Overloaded` frame and closes
/// it.
fn reject_connection(mut stream: TcpStream, max_connections: usize) {
    let frame = Response::Overloaded {
        queued: 0,
        capacity: u32::try_from(max_connections).unwrap_or(u32::MAX),
    }
    .encode();
    // invariant: the rejected client may already be gone; the rejection
    // frame is best-effort by design
    let _ = write_frame(&mut stream, &frame);
}

/// One connection's request loop: frames in, responses out, until the
/// peer leaves, a frame is malformed, or shutdown drains us.
fn serve_connection<I>(shared: &Shared<I>, mut stream: TcpStream)
where
    I: TrajectoryIndex + Send + 'static,
{
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(payload)) => payload,
            // Clean close between frames, or the shutdown drain cut the
            // read half.
            Ok(None) => return,
            Err(WireError::Io(_)) => return,
            Err(wire) => {
                ServerStats::bump(&shared.stats.malformed_frames);
                send_error(&mut stream, ErrorCode::Malformed, &wire.to_string());
                return;
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(wire) => {
                ServerStats::bump(&shared.stats.malformed_frames);
                send_error(&mut stream, ErrorCode::Malformed, &wire.to_string());
                return;
            }
        };
        ServerStats::bump(&shared.stats.requests_decoded);
        match request {
            Request::Stats => {
                if !send(&mut stream, &Response::Stats(shared.stats_report())) {
                    return;
                }
            }
            Request::Shutdown => {
                // Acknowledge first: the drain below shuts our read half,
                // and the client deserves a positive confirmation.
                send(&mut stream, &Response::ShutdownAck);
                initiate_shutdown(shared);
                return;
            }
            other => {
                if !handle_query(shared, &mut stream, other) {
                    return;
                }
            }
        }
    }
}

/// Builds, admits, executes, and answers one query request. Returns
/// `false` when the connection should close (socket failure).
fn handle_query<I>(shared: &Shared<I>, stream: &mut TcpStream, request: Request) -> bool
where
    I: TrajectoryIndex + Send + 'static,
{
    if shared.shutting_down.load(Ordering::SeqCst) {
        return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
    }
    let batch_query = match build_query(request) {
        Ok(q) => q,
        Err(message) => {
            ServerStats::bump(&shared.stats.invalid_queries);
            return send_error(stream, ErrorCode::InvalidQuery, &message);
        }
    };
    let ticket = match shared.exec.try_submit(batch_query) {
        Ok(ticket) => ticket,
        Err(SubmitError::Overloaded { queued, capacity }) => {
            ServerStats::bump(&shared.stats.overload_rejections);
            let response = Response::Overloaded {
                queued: u32::try_from(queued).unwrap_or(u32::MAX),
                capacity: u32::try_from(capacity).unwrap_or(u32::MAX),
            };
            return send(stream, &response);
        }
        Err(SubmitError::ShuttingDown) => {
            return send_error(stream, ErrorCode::ShuttingDown, "server is draining");
        }
    };
    ServerStats::bump(&shared.stats.queries_admitted);
    let outcome = match ticket.wait() {
        Ok(outcome) => outcome,
        Err(e) => {
            return send_error(stream, ErrorCode::Internal, &e.to_string());
        }
    };
    ServerStats::bump(&shared.stats.queries_completed);
    if outcome.degraded {
        ServerStats::bump(&shared.stats.queries_degraded);
    }
    if let Ok(mut profile) = shared.profile.lock() {
        profile.merge(&outcome.profile);
    }
    let degraded = outcome.degraded;
    let response = match outcome.answer {
        QueryAnswer::Kmst(matches) => Response::Kmst { degraded, matches },
        QueryAnswer::Knn(matches) => Response::Knn { degraded, matches },
        QueryAnswer::Segments(matches) => Response::Segments { degraded, matches },
        QueryAnswer::Range(entries) => Response::Range { degraded, entries },
    };
    send(stream, &response)
}

/// Turns a decoded query request into a validated [`BatchQuery`] through
/// the same builders the embedded API uses. The error string travels back
/// as [`ErrorCode::InvalidQuery`].
fn build_query(request: Request) -> Result<BatchQuery, String> {
    match request {
        Request::Kmst { points, options } => {
            let query = Trajectory::new(points).map_err(|e| e.to_string())?;
            BatchQuery::kmst(Query::kmst(&query).options(options)).map_err(|e| e.to_string())
        }
        Request::Knn { points, options } => {
            let query = Trajectory::new(points).map_err(|e| e.to_string())?;
            BatchQuery::knn(Query::knn(&query).options(options)).map_err(|e| e.to_string())
        }
        Request::KnnSegments { location, options } => {
            BatchQuery::knn_segments(Query::knn_segments(location).options(options))
                .map_err(|e| e.to_string())
        }
        Request::Range { window, options } => {
            Ok(BatchQuery::range(Query::range(&window).options(options)))
        }
        Request::Stats | Request::Shutdown => Err("not a query".into()),
    }
}

/// Best-effort response write. `false` means the socket failed and the
/// connection should close. An answer too large for one frame downgrades
/// to a typed `Internal` error rather than silently dropping the peer.
fn send(stream: &mut TcpStream, response: &Response) -> bool {
    match write_frame(stream, &response.encode()) {
        Ok(()) => true,
        Err(WireError::Oversized(_)) => send_error(
            stream,
            ErrorCode::Internal,
            "answer exceeds the frame cap; narrow the query",
        ),
        Err(_) => false,
    }
}

fn send_error(stream: &mut TcpStream, code: ErrorCode, message: &str) -> bool {
    let response = Response::Error {
        code,
        message: message.into(),
    };
    let ok = send(stream, &response);
    if code == ErrorCode::Malformed {
        // Protocol violations close the connection; flush what we can.
        // invariant: the peer may already be gone — the close itself is
        // the contract, the flush is best-effort
        let _ = stream.flush();
    }
    ok
}
