//! Server lifecycle: configuration, shared state, startup, and the
//! graceful-shutdown drain. The I/O machinery itself — acceptor handoff,
//! non-blocking connection state machines, the cross-connection
//! coalescer — lives in [`crate::mux`].
//!
//! # Admission control
//!
//! Three bounded resources, three typed rejections:
//!
//! * **Connections** — at [`ServerConfig::max_connections`] the accept
//!   loop answers a newcomer with one `Overloaded` frame (v2-framed at
//!   request id 0) and closes it; nothing queues.
//! * **Pipeline depth** — each connection may keep at most its granted
//!   depth in flight; the server simply stops reading a connection at
//!   its cap, so TCP backpressure holds the client without any
//!   per-request rejection.
//! * **Queries** — the coalescer's backlog and the executor's bounded
//!   queue; when the backlog overflows, the newest query answers
//!   `Overloaded` with queue occupancy. The server never queues
//!   unboundedly and a saturated executor can never hang a connection.
//!
//! # Shutdown sequence
//!
//! 1. the shutdown flag flips and the answer cache is invalidated (new
//!    queries read straight through; nothing stale can be served across
//!    the transition);
//! 2. a self-connection unblocks the accept loop, which stops accepting
//!    and drops the listener (later connects are refused by the OS);
//! 3. I/O workers stop reading; every query already forwarded to the
//!    coalescer still executes and answers — admitted work is never
//!    dropped;
//! 4. the coalescer drains its backlog through the executor, fans out
//!    the last responses, and signals the workers;
//! 5. workers flush pending response bytes (bounded retries), close
//!    their connections, and exit;
//! 6. the accept thread joins coalescer + workers, shuts the execution
//!    pool down, and exits; [`ServerHandle::join`] returns.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mst_exec::{BatchExecutor, BatchQuery, ExecHandle, ShardedDatabase};
use mst_search::KmstSubstrate;
use mst_search::{Query, QueryProfile};
use mst_trajectory::Trajectory;

use crate::cache::AnswerCache;
use crate::ingest::IngestBackend;
use crate::mux::{self, MuxConfig, WorkerMsg};
use crate::protocol::{ProfileSummary, Request, ServerCounters, StatsReport};

/// Errors of the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// The execution layer failed to start or was misconfigured.
    Exec(mst_exec::ExecError),
    /// A socket operation failed while starting or stopping the server.
    Io(std::io::Error),
    /// Replica bootstrap or the replication stream failed in a way that
    /// prevents the replica from starting (primary unreachable after
    /// retries, refused subscription, undecodable snapshot).
    Replication(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Exec(e) => write!(f, "execution layer: {e}"),
            ServeError::Io(e) => write!(f, "socket: {e}"),
            ServeError::Replication(msg) => write!(f, "replication: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Exec(e) => Some(e),
            ServeError::Io(e) => Some(e),
            ServeError::Replication(_) => None,
        }
    }
}

impl From<mst_exec::ExecError> for ServeError {
    fn from(e: mst_exec::ExecError) -> Self {
        ServeError::Exec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Executor worker threads (minimum 1).
    pub workers: usize,
    /// Bound of the query admission queue; 0 means `2 x workers`. The
    /// coalescer's backlog uses the same bound, so total buffering is at
    /// most twice this value.
    pub queue_capacity: usize,
    /// Maximum simultaneously served connections.
    pub max_connections: usize,
    /// Default per-query deadline in microseconds, applied when a request
    /// carries none.
    pub default_deadline_us: Option<u64>,
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Socket I/O worker threads (minimum 1). One suffices for loopback
    /// serving; the knob exists for multi-core hosts with many
    /// connections.
    pub io_threads: usize,
    /// Cap on the pipeline depth a connection may negotiate (minimum 1).
    pub max_depth: u16,
    /// Answer-cache capacity in entries; 0 disables the cache.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            queue_capacity: 0,
            max_connections: 64,
            default_deadline_us: None,
            port: 0,
            io_threads: 1,
            max_depth: 32,
            cache_capacity: 0,
        }
    }
}

impl ServerConfig {
    /// The default configuration: 2 workers, queue bound `2 x workers`,
    /// 64 connections, no deadline, 1 I/O thread, depth cap 32, cache
    /// disabled, ephemeral port.
    pub fn new() -> Self {
        ServerConfig::default()
    }

    /// Sets the executor worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the admission-queue bound (0 restores the `2 x workers`
    /// default).
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the connection cap.
    pub fn max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Sets the default per-query deadline in microseconds.
    pub fn default_deadline_us(mut self, deadline: u64) -> Self {
        self.default_deadline_us = Some(deadline);
        self
    }

    /// Sets the port (0 = ephemeral).
    pub fn port(mut self, port: u16) -> Self {
        self.port = port;
        self
    }

    /// Sets the socket I/O worker count.
    pub fn io_threads(mut self, threads: usize) -> Self {
        self.io_threads = threads.max(1);
        self
    }

    /// Sets the cap on negotiable pipeline depth.
    pub fn max_depth(mut self, depth: u16) -> Self {
        self.max_depth = depth.max(1);
        self
    }

    /// Sets the answer-cache capacity (0 disables caching).
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// The admission-queue bound with the `0 = 2 x workers` default
    /// resolved.
    pub(crate) fn resolved_queue_capacity(&self) -> usize {
        if self.queue_capacity == 0 {
            self.workers.max(1) * 2
        } else {
            self.queue_capacity
        }
    }
}

/// Monotonic counters, updated lock-free from every thread.
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub(crate) connections_accepted: AtomicU64,
    pub(crate) connections_rejected: AtomicU64,
    pub(crate) requests_decoded: AtomicU64,
    pub(crate) queries_admitted: AtomicU64,
    pub(crate) queries_completed: AtomicU64,
    pub(crate) queries_degraded: AtomicU64,
    pub(crate) overload_rejections: AtomicU64,
    pub(crate) malformed_frames: AtomicU64,
    pub(crate) invalid_queries: AtomicU64,
    pub(crate) cache_hits: AtomicU64,
    pub(crate) cache_misses: AtomicU64,
    pub(crate) ingest_applied: AtomicU64,
    /// WAL gauges mirrored from the durable backend after each flush
    /// (`store`d, not added — the backend owns the true counts).
    pub(crate) wal_appends: AtomicU64,
    pub(crate) wal_fsyncs: AtomicU64,
    pub(crate) replayed_records: AtomicU64,
    /// Replication gauges. On a primary: committed = its own log head,
    /// acked = the highest cumulative replica ack, shipped/heartbeats
    /// count outbound stream traffic. On a replica: applied/records
    /// track the applier, reconnects count lost primaries.
    pub(crate) repl_committed_lsn: AtomicU64,
    pub(crate) repl_acked_lsn: AtomicU64,
    pub(crate) repl_records_shipped: AtomicU64,
    pub(crate) repl_heartbeats: AtomicU64,
    pub(crate) repl_applied_lsn: AtomicU64,
    pub(crate) repl_records_applied: AtomicU64,
    pub(crate) repl_reconnects: AtomicU64,
}

impl ServerStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        Self::bump_by(counter, 1);
    }

    pub(crate) fn bump_by(counter: &AtomicU64, n: u64) {
        // ordering: monotonic stats counter; it orders nothing and a
        // reader tolerates a slightly stale total.
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises a monotone LSN gauge to at least `v` (never lowers it —
    /// several replicas may ack out of order).
    pub(crate) fn raise(counter: &AtomicU64, v: u64) {
        // ordering: advisory stats gauge; visibility ordering for reads
        // rides on Shared::watermark, never on these counters.
        counter.fetch_max(v, Ordering::Relaxed);
    }

    pub(crate) fn set(counter: &AtomicU64, v: u64) {
        // ordering: mirrored gauge owned by the durable backend; a stale
        // read only undercounts a stats probe.
        counter.store(v, Ordering::Relaxed);
    }

    fn read(counter: &AtomicU64) -> u64 {
        // ordering: stats snapshots are advisory; counters imply no
        // ordering with the data they describe, and cross-counter skew
        // within one snapshot is acceptable by contract.
        counter.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> ServerCounters {
        ServerCounters {
            connections_accepted: Self::read(&self.connections_accepted),
            connections_rejected: Self::read(&self.connections_rejected),
            requests_decoded: Self::read(&self.requests_decoded),
            queries_admitted: Self::read(&self.queries_admitted),
            queries_completed: Self::read(&self.queries_completed),
            queries_degraded: Self::read(&self.queries_degraded),
            overload_rejections: Self::read(&self.overload_rejections),
            malformed_frames: Self::read(&self.malformed_frames),
            invalid_queries: Self::read(&self.invalid_queries),
            cache_hits: Self::read(&self.cache_hits),
            cache_misses: Self::read(&self.cache_misses),
            ingest_applied: Self::read(&self.ingest_applied),
            wal_appends: Self::read(&self.wal_appends),
            wal_fsyncs: Self::read(&self.wal_fsyncs),
            replayed_records: Self::read(&self.replayed_records),
            repl_committed_lsn: Self::read(&self.repl_committed_lsn),
            repl_acked_lsn: Self::read(&self.repl_acked_lsn),
            repl_records_shipped: Self::read(&self.repl_records_shipped),
            repl_heartbeats: Self::read(&self.repl_heartbeats),
            repl_applied_lsn: Self::read(&self.repl_applied_lsn),
            repl_records_applied: Self::read(&self.repl_records_applied),
            repl_reconnects: Self::read(&self.repl_reconnects),
        }
    }
}

/// State shared by the accept loop, the I/O workers, and the coalescer.
pub(crate) struct Shared<I> {
    pub(crate) exec: ExecHandle<I>,
    pub(crate) stats: ServerStats,
    /// Work profile merged from every completed query.
    pub(crate) profile: Mutex<QueryProfile>,
    pub(crate) shutting_down: AtomicBool,
    /// Live connection count, for the accept-time cap.
    pub(crate) live_conns: AtomicUsize,
    /// The bounded answer cache (capacity 0 = disabled).
    pub(crate) cache: AnswerCache,
    /// Whether a durable ingest backend is wired in; read-only servers
    /// answer ingest frames with a typed `ReadOnly` error on the I/O
    /// thread, before anything reaches the coalescer.
    pub(crate) ingest_enabled: bool,
    /// Whether this server is a replica: writes and replication
    /// subscriptions answer a typed `NotPrimary`, and the visibility
    /// watermark advances as the applier catches up rather than as
    /// local writes flush.
    pub(crate) replica: bool,
    /// The read-your-writes gate: every write at or below this LSN is
    /// visible to queries. Queries carrying `min_lsn` above it answer a
    /// typed `ReplicaLagging` on the I/O thread.
    pub(crate) watermark: mst_exec::Watermark,
    /// The bound address, for the shutdown self-connection poke.
    pub(crate) addr: SocketAddr,
}

impl<I> Shared<I> {
    pub(crate) fn stats_report(&self) -> StatsReport {
        let profile = match self.profile.lock() {
            Ok(p) => profile_summary(&p),
            Err(_) => ProfileSummary::default(),
        };
        StatsReport {
            counters: self.stats.snapshot(),
            profile,
        }
    }
}

fn profile_summary(p: &QueryProfile) -> ProfileSummary {
    ProfileSummary {
        heap_pushes: p.heap_pushes,
        heap_pops: p.heap_pops,
        nodes_accessed: p.nodes_accessed(),
        buffer_hits: p.buffer_hits,
        buffer_misses: p.buffer_misses,
        piece_evals: p.piece_evals(),
        early_terminations: p.early_terminations,
    }
}

/// Entry point: [`Server::start`] binds, spawns, and hands back a
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `127.0.0.1:port`, spawns the execution pool, the I/O
    /// workers, the coalescer and the accept loop, and returns the
    /// running server's handle. The bound address (with the resolved
    /// ephemeral port) is [`ServerHandle::local_addr`].
    ///
    /// The server is **read-only**: ingest frames answer a typed
    /// [`crate::protocol::ErrorCode::ReadOnly`]. Use
    /// [`Server::start_durable`] to serve writes.
    pub fn start<I>(
        config: ServerConfig,
        db: Arc<ShardedDatabase<I>>,
    ) -> Result<ServerHandle<I>, ServeError>
    where
        I: KmstSubstrate + Send + 'static,
    {
        start_inner(config, db, None, false, 0)
    }

    /// Like [`Server::start`], but over a [`mst_wal::DurableDatabase`]:
    /// the server shares the durable store's in-memory shards for
    /// queries and routes `Insert`/`Delete` frames through its
    /// write-ahead log. Each coalescer tick's ingest frames flush as one
    /// write batch sharing a single group-commit fsync; an operation is
    /// acked ([`crate::protocol::Response::Ingested`]) only after that
    /// fsync returned and the in-memory shards were updated, so an acked
    /// ingest survives any crash. The answer cache is invalidated on
    /// every state-changing flush.
    ///
    /// The durable database moves into the server and is dropped (its
    /// file handles synced) when the server shuts down; recover it with
    /// [`mst_wal::DurableDatabase::open`].
    pub fn start_durable<I, S>(
        config: ServerConfig,
        durable: mst_wal::DurableDatabase<I, S>,
    ) -> Result<ServerHandle<I>, ServeError>
    where
        I: mst_wal::DurableSubstrate + Send + 'static,
        S: mst_wal::LogStore + Send + 'static,
        S::Log: Send,
    {
        let db = Arc::clone(durable.database());
        let committed = durable.applied_lsn();
        start_inner(config, db, Some(Box::new(durable)), false, committed)
    }

    /// Starts a **read-only replica** following the primary at
    /// `primary`: an occupied `store` is recovered and the stream
    /// resumed from its applied LSN; an empty one bootstraps from a
    /// fresh snapshot the primary encodes at its committed LSN
    /// (`Subscribe { from_lsn: 0 }`). Either way the applier thread then
    /// polls the primary — `ReplicaAck { lsn }` doubles as "send me what
    /// follows" — re-verifies every shipped frame, applies gapless
    /// batches through the same WAL-before-apply path as local ingest,
    /// invalidates the answer cache, and advances the visibility
    /// watermark, so `min_lsn` reads are exact on the replica too.
    ///
    /// Writes and `Subscribe` frames hitting a replica answer a typed
    /// [`crate::protocol::ErrorCode::NotPrimary`]. A lost primary is
    /// retried forever with jittered backoff (`retry` shapes one round;
    /// reconnects are counted in the stats report) — the replica keeps
    /// serving reads at its last applied state throughout. A replica
    /// whose position falls below the primary's replication floor while
    /// disconnected cannot re-bootstrap in place; it keeps serving and
    /// retrying, and a restart with an empty store re-bootstraps it.
    pub fn start_replica<I, S>(
        config: ServerConfig,
        store: S,
        wal_config: mst_wal::WalConfig,
        primary: SocketAddr,
        retry: crate::client::RetryPolicy,
    ) -> Result<ServerHandle<I>, ServeError>
    where
        I: mst_wal::DurableSubstrate + Send + 'static,
        S: mst_wal::LogStore + Send + 'static,
        S::Log: Send,
    {
        let occupied = store
            .read_snapshot()
            .map_err(|e| ServeError::Replication(format!("probing the replica store: {e}")))?
            .is_some();
        let durable: mst_wal::DurableDatabase<I, S> = if occupied {
            mst_wal::DurableDatabase::open(store, wal_config)
                .map_err(|e| ServeError::Replication(format!("recovering the replica: {e}")))?
        } else {
            let snapshot = crate::repl::fetch_bootstrap_snapshot(primary, &retry)
                .map_err(ServeError::Replication)?;
            mst_wal::DurableDatabase::from_snapshot(store, wal_config, &snapshot)
                .map_err(|e| ServeError::Replication(format!("applying the bootstrap: {e}")))?
        };
        let applied = durable.applied_lsn();
        let db = Arc::clone(durable.database());
        let handle = start_inner(config, db, None, true, applied)?;
        let shared = Arc::clone(&handle.shared);
        ServerStats::set(&shared.stats.repl_applied_lsn, applied);
        let applier = std::thread::Builder::new()
            .name("mst-serve-repl".into())
            .spawn(move || crate::repl::applier_loop(&shared, durable, primary, &retry))?;
        *handle
            .applier
            .lock()
            .map_err(|_| ServeError::Replication("applier handle poisoned at startup".into()))? =
            Some(applier);
        Ok(handle)
    }
}

fn start_inner<I>(
    config: ServerConfig,
    db: Arc<ShardedDatabase<I>>,
    ingest: Option<Box<dyn IngestBackend>>,
    replica: bool,
    visible_lsn: u64,
) -> Result<ServerHandle<I>, ServeError>
where
    I: KmstSubstrate + Send + 'static,
{
    {
        let queue_capacity = config.resolved_queue_capacity();
        let mut executor = BatchExecutor::new()
            .workers(config.workers)
            .queue_capacity(queue_capacity);
        if let Some(us) = config.default_deadline_us {
            executor = executor.deadline_us(us);
        }
        let exec = executor.submit_handle(db)?;
        let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, config.port))?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            exec,
            stats: ServerStats::default(),
            profile: Mutex::new(QueryProfile::default()),
            shutting_down: AtomicBool::new(false),
            live_conns: AtomicUsize::new(0),
            cache: AnswerCache::new(config.cache_capacity),
            ingest_enabled: ingest.is_some(),
            replica,
            watermark: mst_exec::Watermark::at(visible_lsn),
            addr: local_addr,
        });
        if ingest.is_some() {
            // A primary's committed LSN is visible (and replicated) from
            // the first stats probe, not the first write.
            ServerStats::set(&shared.stats.repl_committed_lsn, visible_lsn);
            ServerStats::set(&shared.stats.repl_applied_lsn, visible_lsn);
        }
        if let Some(backend) = &ingest {
            // Seed the WAL gauges so a stats probe right after startup
            // already reports what recovery replayed.
            let wal = backend.wal_counters();
            // ordering: startup seeding before any worker thread exists
            shared
                .stats
                .wal_appends
                .store(wal.appends, Ordering::Relaxed);
            // ordering: startup seeding before any worker thread exists
            shared.stats.wal_fsyncs.store(wal.fsyncs, Ordering::Relaxed);
            shared
                .stats
                .replayed_records
                // ordering: startup seeding before any worker thread exists
                .store(wal.replayed_records, Ordering::Relaxed);
        }

        // Spawn the I/O workers and the coalescer up front so spawn
        // failures surface here as a typed startup error, not as a
        // half-started server.
        let io_threads = config.io_threads.max(1);
        let (event_tx, event_rx) = std::sync::mpsc::channel();
        let mut worker_txs: Vec<std::sync::mpsc::Sender<WorkerMsg>> = Vec::new();
        let mut worker_handles = Vec::new();
        for w in 0..io_threads {
            let (tx, rx) = std::sync::mpsc::channel();
            worker_txs.push(tx);
            let worker_shared = Arc::clone(&shared);
            let events = event_tx.clone();
            let max_depth = config.max_depth.max(1);
            let handle = std::thread::Builder::new()
                .name(format!("mst-serve-io-{w}"))
                .spawn(move || mux::io_worker_loop(w, &worker_shared, &rx, &events, max_depth))?;
            worker_handles.push(handle);
        }
        let coalescer = {
            let coalescer_shared = Arc::clone(&shared);
            let sink_tx = event_tx.clone();
            let txs = worker_txs.clone();
            std::thread::Builder::new()
                .name("mst-serve-coalesce".into())
                .spawn(move || {
                    mux::coalescer_loop(
                        &coalescer_shared,
                        &event_rx,
                        sink_tx,
                        &txs,
                        queue_capacity,
                        ingest,
                    )
                })?
        };
        drop(event_tx);

        let accept = {
            let shared = Arc::clone(&shared);
            let cfg = MuxConfig {
                max_connections: config.max_connections,
            };
            std::thread::Builder::new()
                .name("mst-serve-accept".into())
                .spawn(move || {
                    mux::accept_loop(&shared, &listener, &worker_txs, &cfg);
                    // The drain: the coalescer exits once every forwarded
                    // query has answered, then the workers flush and exit.
                    // invariant: a panicked helper thread has already torn
                    // its state down; the drain must keep joining the rest
                    let _ = coalescer.join();
                    for handle in worker_handles {
                        // invariant: same policy — joining must not cascade
                        let _ = handle.join();
                    }
                    shared.exec.shutdown();
                })?
        };
        Ok(ServerHandle {
            local_addr,
            shared,
            accept: Mutex::new(Some(accept)),
            applier: Mutex::new(None),
        })
    }
}

/// A running server. Dropping the handle shuts the server down
/// gracefully (in-flight queries drain).
pub struct ServerHandle<I> {
    local_addr: SocketAddr,
    pub(crate) shared: Arc<Shared<I>>,
    accept: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// The replica applier thread, joined at shutdown (replicas only).
    applier: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl<I> ServerHandle<I>
where
    I: KmstSubstrate + Send + 'static,
{
    /// The bound address (ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// True once shutdown has been requested (by this handle or by a
    /// `Shutdown` frame).
    pub fn is_shutting_down(&self) -> bool {
        // ordering: advisory poll of a sticky one-way flag; the drain
        // itself synchronizes through the accept-thread join, not here.
        self.shared.shutting_down.load(Ordering::Relaxed)
    }

    /// Requests graceful shutdown and blocks until the drain completes:
    /// every in-flight query answers, every connection closes, every
    /// thread joins. Idempotent.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
        self.join();
    }

    /// Blocks until the server stops (a `Shutdown` frame, or
    /// [`ServerHandle::shutdown`] from another thread).
    pub fn join(&self) {
        let handle = match self.accept.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(handle) = handle {
            // invariant: an accept-loop panic has already stopped the
            // server; surfacing the payload here adds nothing
            let _ = handle.join();
        }
        // The applier exits on the shutdown flag (its rounds are short
        // and its socket reads time out), so this join is bounded.
        let applier = match self.applier.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(handle) = applier {
            // invariant: a panicked applier left the replica serving its
            // last applied state; the drain must still complete
            let _ = handle.join();
        }
    }
}

impl<I> Drop for ServerHandle<I> {
    fn drop(&mut self) {
        initiate_shutdown(&self.shared);
        let handle = match self.accept.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(handle) = handle {
            // invariant: same policy as join() — the server is already
            // stopped when an accept-loop panic would surface here
            let _ = handle.join();
        }
        let applier = match self.applier.lock() {
            Ok(mut slot) => slot.take(),
            Err(_) => None,
        };
        if let Some(handle) = applier {
            // invariant: as in join() — a panicked applier changes
            // nothing about the teardown
            let _ = handle.join();
        }
    }
}

/// Flips the flag, invalidates the answer cache, and pokes the accept
/// loop awake with a throwaway self-connection; the accept thread runs
/// the actual drain.
pub(crate) fn initiate_shutdown<I>(shared: &Shared<I>) {
    if shared.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Nothing cached before the transition may be served after it.
    shared.cache.invalidate();
    // The accept loop blocks in accept(); a self-connection is the
    // std-only way to unblock it promptly. If it fails (listener already
    // gone), accept() has already returned.
    if let Ok(stream) = TcpStream::connect(shared.addr) {
        drop(stream);
    }
}

/// Turns a decoded query request into a validated [`BatchQuery`] through
/// the same builders the embedded API uses. The error string travels back
/// as [`crate::protocol::ErrorCode::InvalidQuery`].
pub(crate) fn build_query(request: Request) -> Result<BatchQuery, String> {
    match request {
        Request::Kmst { points, options } => {
            let query = Trajectory::new(points).map_err(|e| e.to_string())?;
            BatchQuery::kmst(Query::kmst(&query).options(options)).map_err(|e| e.to_string())
        }
        Request::Knn { points, options } => {
            let query = Trajectory::new(points).map_err(|e| e.to_string())?;
            BatchQuery::knn(Query::knn(&query).options(options)).map_err(|e| e.to_string())
        }
        Request::KnnSegments { location, options } => {
            BatchQuery::knn_segments(Query::knn_segments(location).options(options))
                .map_err(|e| e.to_string())
        }
        Request::Range { window, options } => {
            Ok(BatchQuery::range(Query::range(&window).options(options)))
        }
        Request::Stats
        | Request::Shutdown
        | Request::Hello { .. }
        | Request::Insert { .. }
        | Request::Delete { .. }
        | Request::Subscribe { .. }
        | Request::ReplicaAck { .. } => Err("not a query".into()),
    }
}
