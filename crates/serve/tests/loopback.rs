//! Loopback integration: a real server on an ephemeral port, real TCP
//! clients speaking wire protocol v2 — pipelined, multiplexed, answers
//! compared bit-for-bit against the embedded single-threaded
//! `Query::run` path.

use std::io::Write;
use std::sync::Arc;

use mst_datagen::{GstdConfig, SpeedDistribution};
use mst_exec::ShardedDatabase;
use mst_search::{MovingObjectDatabase, Query, QueryOptions};
use mst_serve::{
    ErrorCode, Request, Response, ServeClient, Server, ServerConfig, ServerHandle, VERSION,
};
use mst_trajectory::{Mbb, Point, Trajectory, TrajectoryId};

fn fleet(objects: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    // A scaled-down GSTD workload: enough structure to exercise every
    // query flavour, small enough that the whole suite stays fast.
    let config = GstdConfig {
        num_objects: objects,
        samples_per_object: 120,
        time_step: 1.0,
        speed: SpeedDistribution::lognormal_with_median(5.0e-3, 0.6),
        seed,
    };
    config
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(u64::try_from(i).expect("small fleet")), t))
        .collect()
}

fn start_server(
    fleet: &[(TrajectoryId, Trajectory)],
    shards: usize,
    config: ServerConfig,
) -> ServerHandle<mst_index::Rtree3D> {
    let db = ShardedDatabase::with_rtree(shards, fleet.iter().cloned()).expect("build shards");
    Server::start(config, Arc::new(db)).expect("start server")
}

#[test]
fn multiplexed_clients_get_bit_identical_answers() {
    let fleet = fleet(48, 11);
    let server = start_server(&fleet, 3, ServerConfig::new().workers(3).queue_capacity(16));
    let addr = server.local_addr();

    // Embedded baseline: single-threaded Query::run over one unsharded
    // database.
    let mut baseline = MovingObjectDatabase::with_rtree();
    for (id, t) in &fleet {
        baseline.insert_trajectory(*id, t).expect("insert");
    }
    // The same window the client threads derive (from fleet[7]). The
    // range box is time-bounded so the answer fits one frame comfortably.
    let window = fleet[7].1.time();
    let range_box = Mbb::new(0.0, 0.0, window.start(), 1.0, 1.0, window.start() + 30.0);

    let expected_kmst: Vec<Vec<mst_search::MstMatch>> = (0..8)
        .map(|i| {
            let q = &fleet[i * 5].1;
            Query::kmst(q)
                .k(4)
                .run(&mut baseline)
                .expect("baseline kmst")
        })
        .collect();
    let expected_knn = Query::knn(&fleet[7].1)
        .k(3)
        .run(&mut baseline)
        .expect("baseline knn");
    let expected_segments = Query::knn_segments(Point::new(0.5, 0.5))
        .k(6)
        .during(&window)
        .run(&mut baseline)
        .expect("baseline segments");
    let expected_range = {
        // The server merges shard lists into canonical (traj, seq) order;
        // the unsharded baseline reports traversal order. Same set,
        // canonical order for comparison.
        let mut entries = Query::range(&range_box)
            .run(&mut baseline)
            .expect("baseline range");
        entries.sort_by(|a, b| a.traj.cmp(&b.traj).then(a.seq.cmp(&b.seq)));
        entries
    };

    // 8 concurrent connections, each pipelining all four flavours at
    // once — the coalescer sees them interleaved across connections and
    // dedups the shared ones — then claiming the responses in reverse
    // send order (the multiplexing contract: ids route answers, not
    // arrival order).
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let q = fleet[i * 5].1.clone();
            let expected = expected_kmst[i].clone();
            let expected_knn = expected_knn.clone();
            let expected_segments = expected_segments.clone();
            let expected_range = expected_range.clone();
            let knn_query = fleet[7].1.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                assert!(client.depth() >= 4, "default depth grant fits the burst");
                let window = knn_query.time();
                let range_box = Mbb::new(0.0, 0.0, window.start(), 1.0, 1.0, window.start() + 30.0);
                let id_kmst = client
                    .send(&Request::Kmst {
                        points: q.points().to_vec(),
                        options: QueryOptions::new().k(4),
                    })
                    .expect("send kmst");
                let id_knn = client
                    .send(&Request::Knn {
                        points: knn_query.points().to_vec(),
                        options: QueryOptions::new().k(3),
                    })
                    .expect("send knn");
                let id_segments = client
                    .send(&Request::KnnSegments {
                        location: Point::new(0.5, 0.5),
                        options: QueryOptions::new().k(6).during(&window),
                    })
                    .expect("send segments");
                let id_range = client
                    .send(&Request::Range {
                        window: range_box,
                        options: QueryOptions::new(),
                    })
                    .expect("send range");
                assert_eq!(client.in_flight(), 4);

                match client.wait(id_range).expect("range") {
                    Response::Range { degraded, entries } => {
                        assert!(!degraded);
                        assert_eq!(entries, expected_range);
                    }
                    other => panic!("expected Range, got {other:?}"),
                }
                match client.wait(id_segments).expect("segments") {
                    Response::Segments { degraded, matches } => {
                        assert!(!degraded);
                        assert_eq!(matches, expected_segments);
                    }
                    other => panic!("expected Segments, got {other:?}"),
                }
                match client.wait(id_knn).expect("knn") {
                    Response::Knn { degraded, matches } => {
                        assert!(!degraded);
                        // Same contract as the exec determinism suite:
                        // (traj, bitwise distance); the closest-approach
                        // *instant* is tie-broken by traversal order.
                        assert_eq!(matches.len(), expected_knn.len());
                        for (g, w) in matches.iter().zip(&expected_knn) {
                            assert_eq!(g.traj, w.traj);
                            assert_eq!(g.distance.to_bits(), w.distance.to_bits());
                        }
                    }
                    other => panic!("expected Knn, got {other:?}"),
                }
                match client.wait(id_kmst).expect("kmst") {
                    Response::Kmst { degraded, matches } => {
                        assert!(!degraded);
                        assert_eq!(matches, expected);
                    }
                    other => panic!("expected Kmst, got {other:?}"),
                }
                assert_eq!(client.in_flight(), 0);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    // Every client query request answered, whether it ran or attached to
    // a deduped in-flight execution.
    assert_eq!(stats.counters.queries_completed, 32);
    assert_eq!(stats.counters.queries_degraded, 0);
    assert_eq!(stats.counters.malformed_frames, 0);
    // The shared knn/segments/range queries overlap across the 8
    // connections, so the coalescer must have executed fewer than 32.
    assert!(stats.counters.queries_admitted <= 32);
    assert!(stats.counters.queries_admitted >= 8, "8 distinct kmst");
    assert!(stats.profile.nodes_accessed > 0, "profile merged");
    server.shutdown();
}

#[test]
fn pipelined_responses_arrive_out_of_order() {
    let fleet = fleet(100, 17);
    let server = start_server(&fleet, 2, ServerConfig::new().workers(1).queue_capacity(8));
    let addr = server.local_addr();

    let mut client = ServeClient::connect(addr).expect("connect");
    // Five distinct slow queries saturate the single exec worker, then a
    // cheap Stats probe rides the same connection. The stats answer is
    // produced directly on the I/O thread while the queries queue and
    // execute, so it must come back before the last k-MST — the
    // head-of-line blocking v1 could never avoid.
    let slow_ids: Vec<_> = (0..5)
        .map(|i| {
            client
                .send(&Request::Kmst {
                    points: fleet[i * 9].1.points().to_vec(),
                    options: QueryOptions::new().k(12),
                })
                .expect("send kmst")
        })
        .collect();
    let fast = client.send(&Request::Stats).expect("send stats");
    assert_eq!(client.in_flight(), 6);

    // Claim responses strictly in arrival order.
    let arrival: Vec<_> = (0..6)
        .map(|_| {
            let (id, response) = client.recv_any().expect("response");
            if id == fast {
                assert!(matches!(response, Response::Stats(_)));
            } else {
                match response {
                    Response::Kmst { degraded, matches } => {
                        assert!(!degraded);
                        assert_eq!(matches.len(), 12);
                    }
                    other => panic!("expected Kmst, got {other:?}"),
                }
            }
            id
        })
        .collect();
    let pos = |id| arrival.iter().position(|&a| a == id).expect("answered");
    // The last-submitted kmst completes last of the five (single worker,
    // FIFO admission); the stats probe must have overtaken it.
    assert!(
        pos(fast) < pos(slow_ids[4]),
        "stats probe was head-of-line blocked: arrival {arrival:?}"
    );
    server.shutdown();
}

#[test]
fn overload_answers_typed_backpressure_never_hangs() {
    let fleet = fleet(60, 3);
    let server = start_server(&fleet, 1, ServerConfig::new().workers(1).queue_capacity(1));
    let addr = server.local_addr();
    // Every thread runs its own distinct query so the coalescer cannot
    // dedup the burst away — admission control must genuinely engage.
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let q = fleet[(i * 7) % fleet.len()].1.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut overloaded = 0u32;
                for _ in 0..25 {
                    match client.kmst(&q, QueryOptions::new().k(8)).expect("kmst") {
                        Response::Kmst { matches, .. } => assert!(!matches.is_empty()),
                        Response::Overloaded { capacity, .. } => {
                            assert_eq!(capacity, 1);
                            overloaded += 1;
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                overloaded
            })
        })
        .collect();
    let total_overloaded: u32 = threads.into_iter().map(|t| t.join().expect("client")).sum();
    // A 1-worker, depth-1 queue cannot absorb 8 bursting clients: the
    // typed rejection must have fired, and every request got *some*
    // well-formed answer (the joins above would hang otherwise).
    assert!(total_overloaded > 0, "admission control never engaged");
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        u64::from(total_overloaded),
        stats.counters.overload_rejections
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_queries() {
    let fleet = fleet(80, 9);
    let server = start_server(&fleet, 2, ServerConfig::new().workers(1).queue_capacity(4));
    let addr = server.local_addr();

    // Client A: a heavy query.
    let q = fleet[0].1.clone();
    let worker = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect");
        client
            .kmst(&q, QueryOptions::new().k(10))
            .expect("answered despite shutdown")
    });

    // Client B: wait until A's query is admitted, then ask for shutdown.
    let mut client = ServeClient::connect(addr).expect("connect");
    loop {
        let stats = client.stats().expect("stats");
        if stats.counters.queries_admitted >= 1 {
            break;
        }
        std::thread::yield_now();
    }
    assert!(client.shutdown().expect("ack"));
    server.join();

    // A's in-flight query completed and its response was delivered.
    match worker.join().expect("client A") {
        Response::Kmst { matches, .. } => assert!(!matches.is_empty()),
        other => panic!("expected Kmst, got {other:?}"),
    }
}

#[test]
fn answer_cache_serves_repeats_bit_identically() {
    let fleet = fleet(40, 21);
    let server = start_server(&fleet, 2, ServerConfig::new().workers(2).cache_capacity(16));
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    let first = match client
        .kmst(&fleet[5].1, QueryOptions::new().k(4))
        .expect("kmst")
    {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            matches
        }
        other => panic!("expected Kmst, got {other:?}"),
    };
    // The repeat answers from the cache: bit-identical matches, a hit on
    // the counters, and no second execution.
    let second = match client
        .kmst(&fleet[5].1, QueryOptions::new().k(4))
        .expect("kmst repeat")
    {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            matches
        }
        other => panic!("expected Kmst, got {other:?}"),
    };
    assert_eq!(first.len(), second.len());
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.traj, b.traj);
        assert_eq!(a.dissim.to_bits(), b.dissim.to_bits());
    }
    // A deadline-only difference hits the same entry (certified answers
    // are deadline-independent); a different k misses.
    match client
        .kmst(&fleet[5].1, QueryOptions::new().k(4).deadline_us(5_000_000))
        .expect("kmst deadline variant")
    {
        Response::Kmst { degraded, .. } => assert!(!degraded),
        other => panic!("expected Kmst, got {other:?}"),
    }
    match client
        .kmst(&fleet[5].1, QueryOptions::new().k(5))
        .expect("kmst different k")
    {
        Response::Kmst { .. } => {}
        other => panic!("expected Kmst, got {other:?}"),
    }

    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.cache_hits, 2, "repeat + deadline variant");
    assert_eq!(stats.counters.cache_misses, 2, "first + different k");
    assert_eq!(stats.counters.queries_admitted, 2, "two real executions");
    assert_eq!(stats.counters.queries_completed, 4);
    server.shutdown();
}

#[test]
fn v1_clients_get_a_typed_version_error_in_their_own_framing() {
    let fleet = fleet(20, 7);
    let server = start_server(&fleet, 2, ServerConfig::new());
    let addr = server.local_addr();

    // A legacy v1 client: no hello, just a v1-framed Stats request. The
    // server must answer in v1 framing with a typed UnsupportedVersion —
    // never hang, never close silently.
    let mut legacy = std::net::TcpStream::connect(addr).expect("connect");
    mst_serve::protocol::write_frame(&mut legacy, &Request::Stats.encode()).expect("v1 frame");
    let payload = mst_serve::protocol::read_frame(&mut legacy)
        .expect("read error frame")
        .expect("a typed answer, not silence");
    match Response::decode(&payload).expect("decode v1 frame") {
        Response::Error { code, message } => {
            assert_eq!(code, ErrorCode::UnsupportedVersion { min: 2, max: 2 });
            assert!(message.contains("v2"), "tells the client what to speak");
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // After the rejection the stream closes cleanly.
    assert!(matches!(
        mst_serve::protocol::read_frame(&mut legacy),
        Ok(None)
    ));

    // A v2 hello offering only versions the server does not speak gets a
    // v2-framed UnsupportedVersion at request id 0.
    let mut stale = std::net::TcpStream::connect(addr).expect("connect");
    let hello = Request::Hello {
        min_version: 1,
        max_version: 1,
        depth: 4,
    };
    mst_serve::protocol::write_frame_v2(&mut stale, 0, &hello.encode()).expect("v2 hello");
    let (id, payload) = mst_serve::protocol::read_frame_v2(&mut stale)
        .expect("read error frame")
        .expect("a typed answer, not silence");
    assert_eq!(id, 0);
    match Response::decode(&payload).expect("decode v2 frame") {
        Response::Error { code, .. } => {
            assert_eq!(
                code,
                ErrorCode::UnsupportedVersion {
                    min: VERSION,
                    max: VERSION
                }
            );
        }
        other => panic!("expected Error, got {other:?}"),
    }

    // The v1 rejection is not a malformed frame — it's a well-formed
    // request in a protocol the server no longer speaks.
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.malformed_frames, 0);
    server.shutdown();
}

#[test]
fn malformed_frames_answer_typed_errors_and_server_survives() {
    let fleet = fleet(20, 5);
    let server = start_server(&fleet, 2, ServerConfig::new());
    let addr = server.local_addr();

    // Garbage opcode inside a well-formed v2 frame: typed Malformed
    // error echoing the request id, connection closed.
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client.request(&Request::Stats); // warm-up: valid
    assert!(matches!(response, Ok(Response::Stats(_))));
    mst_serve::protocol::write_frame_v2(client.raw_stream(), 77, &[0x7f])
        .expect("write garbage opcode");
    let (id, payload) = mst_serve::protocol::read_frame_v2(client.raw_stream())
        .expect("error frame")
        .expect("a typed answer, not silence");
    assert_eq!(id, 77);
    match Response::decode(&payload).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Error, got {other:?}"),
    }

    // Oversized length prefix: the server rejects before allocating and
    // closes; a fresh connection still works.
    let mut hostile = ServeClient::connect(addr).expect("connect");
    hostile
        .raw_stream()
        .write_all(&(mst_serve::MAX_FRAME + 9).to_le_bytes())
        .expect("write hostile prefix");
    match mst_serve::protocol::read_frame_v2(hostile.raw_stream()) {
        Ok(Some((_, payload))) => match Response::decode(&payload).expect("decode") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Error, got {other:?}"),
        },
        Ok(None) | Err(_) => {} // already closed is acceptable
    }

    // Mid-frame disconnect: promise 100 bytes, send a few, hang up.
    {
        let mut quitter = ServeClient::connect(addr).expect("connect");
        quitter
            .raw_stream()
            .write_all(&[100u8, 0, 0, 0, 1, 2, 3])
            .expect("write partial");
    } // dropped: TCP FIN mid-frame

    // A second hello after the handshake is a protocol violation.
    let mut rehello = ServeClient::connect(addr).expect("connect");
    let hello = Request::Hello {
        min_version: VERSION,
        max_version: VERSION,
        depth: 1,
    };
    mst_serve::protocol::write_frame_v2(rehello.raw_stream(), 9, &hello.encode())
        .expect("write second hello");
    let (_, payload) = mst_serve::protocol::read_frame_v2(rehello.raw_stream())
        .expect("error frame")
        .expect("a typed answer");
    match Response::decode(&payload).expect("decode") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected Error, got {other:?}"),
    }

    // Semantically invalid query (one-point trajectory): typed
    // InvalidQuery, connection stays open.
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client
        .request(&Request::Kmst {
            points: vec![mst_trajectory::SamplePoint::new(0.0, 0.0, 0.0)],
            options: QueryOptions::new(),
        })
        .expect("typed response");
    match response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::InvalidQuery),
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
    // Same connection still serves.
    assert!(client.stats().is_ok());

    let stats = client.stats().expect("stats");
    assert!(stats.counters.malformed_frames >= 3);
    assert_eq!(stats.counters.invalid_queries, 1);
    server.shutdown();
}

/// The CI smoke: one binary-size test covering the whole happy path plus
/// the failure modes ci.sh asserts on (kmst, malformed frame, stats,
/// graceful shutdown).
#[test]
fn server_smoke() {
    let fleet = fleet(24, 1);
    let server = start_server(&fleet, 2, ServerConfig::new().workers(2));
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    match client
        .kmst(&fleet[3].1, QueryOptions::new().k(3))
        .expect("kmst")
    {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            assert_eq!(matches.len(), 3);
            assert_eq!(matches[0].traj, fleet[3].0, "self-match first");
        }
        other => panic!("expected Kmst, got {other:?}"),
    }

    // Malformed frame on a side connection; main connection unaffected.
    let mut hostile = ServeClient::connect(addr).expect("connect");
    hostile
        .raw_stream()
        .write_all(&[1u8, 0, 0, 0, 0xAA])
        .expect("write garbage");
    drop(hostile);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.queries_completed, 1);
    assert!(client.shutdown().expect("ack"));
    server.join();

    // A post-shutdown connection is refused.
    assert!(
        ServeClient::connect(addr).is_err() || {
            let mut late = ServeClient::connect(addr).expect("connect");
            late.stats().is_err()
        }
    );
}
