//! Loopback integration: a real server on an ephemeral port, real TCP
//! clients, answers compared bit-for-bit against the embedded
//! single-threaded `Query::run` path.

use std::io::Write;
use std::sync::Arc;

use mst_datagen::{GstdConfig, SpeedDistribution};
use mst_exec::ShardedDatabase;
use mst_search::{MovingObjectDatabase, Query, QueryOptions};
use mst_serve::{ErrorCode, Request, Response, ServeClient, Server, ServerConfig, ServerHandle};
use mst_trajectory::{Mbb, Point, Trajectory, TrajectoryId};

fn fleet(objects: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    // A scaled-down GSTD workload: enough structure to exercise every
    // query flavour, small enough that the whole suite stays fast.
    let config = GstdConfig {
        num_objects: objects,
        samples_per_object: 120,
        time_step: 1.0,
        speed: SpeedDistribution::lognormal_with_median(5.0e-3, 0.6),
        seed,
    };
    config
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(u64::try_from(i).expect("small fleet")), t))
        .collect()
}

fn start_server(
    fleet: &[(TrajectoryId, Trajectory)],
    shards: usize,
    config: ServerConfig,
) -> ServerHandle<mst_index::Rtree3D> {
    let db = ShardedDatabase::with_rtree(shards, fleet.iter().cloned()).expect("build shards");
    Server::start(config, Arc::new(db)).expect("start server")
}

#[test]
fn concurrent_clients_get_bit_identical_answers() {
    let fleet = fleet(48, 11);
    let server = start_server(&fleet, 3, ServerConfig::new().workers(3).queue_capacity(16));
    let addr = server.local_addr();

    // Embedded baseline: single-threaded Query::run over one unsharded
    // database.
    let mut baseline = MovingObjectDatabase::with_rtree();
    for (id, t) in &fleet {
        baseline.insert_trajectory(*id, t).expect("insert");
    }
    // The same window the client threads derive (from fleet[7]). The
    // range box is time-bounded so the answer fits one frame comfortably.
    let window = fleet[7].1.time();
    let range_box = Mbb::new(0.0, 0.0, window.start(), 1.0, 1.0, window.start() + 30.0);

    let expected_kmst: Vec<Vec<mst_search::MstMatch>> = (0..8)
        .map(|i| {
            let q = &fleet[i * 5].1;
            Query::kmst(q)
                .k(4)
                .run(&mut baseline)
                .expect("baseline kmst")
        })
        .collect();
    let expected_knn = Query::knn(&fleet[7].1)
        .k(3)
        .run(&mut baseline)
        .expect("baseline knn");
    let expected_segments = Query::knn_segments(Point::new(0.5, 0.5))
        .k(6)
        .during(&window)
        .run(&mut baseline)
        .expect("baseline segments");
    let expected_range = {
        // The server merges shard lists into canonical (traj, seq) order;
        // the unsharded baseline reports traversal order. Same set,
        // canonical order for comparison.
        let mut entries = Query::range(&range_box)
            .run(&mut baseline)
            .expect("baseline range");
        entries.sort_by(|a, b| a.traj.cmp(&b.traj).then(a.seq.cmp(&b.seq)));
        entries
    };

    // 8 concurrent connections, each running its own k-MST plus the
    // shared kNN / segments / range flavours.
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let q = fleet[i * 5].1.clone();
            let expected = expected_kmst[i].clone();
            let expected_knn = expected_knn.clone();
            let expected_segments = expected_segments.clone();
            let expected_range = expected_range.clone();
            let knn_query = fleet[7].1.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                match client.kmst(&q, QueryOptions::new().k(4)).expect("kmst") {
                    Response::Kmst { degraded, matches } => {
                        assert!(!degraded);
                        assert_eq!(matches, expected);
                    }
                    other => panic!("expected Kmst, got {other:?}"),
                }
                match client
                    .knn(&knn_query, QueryOptions::new().k(3))
                    .expect("knn")
                {
                    Response::Knn { degraded, matches } => {
                        assert!(!degraded);
                        // Same contract as the exec determinism suite:
                        // (traj, bitwise distance); the closest-approach
                        // *instant* is tie-broken by traversal order.
                        assert_eq!(matches.len(), expected_knn.len());
                        for (g, w) in matches.iter().zip(&expected_knn) {
                            assert_eq!(g.traj, w.traj);
                            assert_eq!(g.distance.to_bits(), w.distance.to_bits());
                        }
                    }
                    other => panic!("expected Knn, got {other:?}"),
                }
                let window = knn_query.time();
                match client
                    .knn_segments(
                        Point::new(0.5, 0.5),
                        QueryOptions::new().k(6).during(&window),
                    )
                    .expect("segments")
                {
                    Response::Segments { degraded, matches } => {
                        assert!(!degraded);
                        assert_eq!(matches, expected_segments);
                    }
                    other => panic!("expected Segments, got {other:?}"),
                }
                let range_box = Mbb::new(0.0, 0.0, window.start(), 1.0, 1.0, window.start() + 30.0);
                match client
                    .range(&range_box, QueryOptions::new())
                    .expect("range")
                {
                    Response::Range { degraded, entries } => {
                        assert!(!degraded);
                        assert_eq!(entries, expected_range);
                    }
                    other => panic!("expected Range, got {other:?}"),
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }

    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.queries_completed, 32);
    assert_eq!(stats.counters.queries_degraded, 0);
    assert_eq!(stats.counters.malformed_frames, 0);
    assert!(stats.profile.nodes_accessed > 0, "profile merged");
    server.shutdown();
}

#[test]
fn overload_answers_typed_backpressure_never_hangs() {
    let fleet = fleet(60, 3);
    let server = start_server(&fleet, 1, ServerConfig::new().workers(1).queue_capacity(1));
    let addr = server.local_addr();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let q = fleet[(i * 7) % fleet.len()].1.clone();
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut overloaded = 0u32;
                for _ in 0..25 {
                    match client.kmst(&q, QueryOptions::new().k(8)).expect("kmst") {
                        Response::Kmst { matches, .. } => assert!(!matches.is_empty()),
                        Response::Overloaded { capacity, .. } => {
                            assert_eq!(capacity, 1);
                            overloaded += 1;
                        }
                        other => panic!("unexpected response {other:?}"),
                    }
                }
                overloaded
            })
        })
        .collect();
    let total_overloaded: u32 = threads.into_iter().map(|t| t.join().expect("client")).sum();
    // A 1-worker, depth-1 queue cannot absorb 8 bursting clients: the
    // typed rejection must have fired, and every request got *some*
    // well-formed answer (the joins above would hang otherwise).
    assert!(total_overloaded > 0, "admission control never engaged");
    let mut client = ServeClient::connect(addr).expect("connect");
    let stats = client.stats().expect("stats");
    assert_eq!(
        u64::from(total_overloaded),
        stats.counters.overload_rejections
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_inflight_queries() {
    let fleet = fleet(80, 9);
    let server = start_server(&fleet, 2, ServerConfig::new().workers(1).queue_capacity(4));
    let addr = server.local_addr();

    // Client A: a heavy query.
    let q = fleet[0].1.clone();
    let worker = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect");
        client
            .kmst(&q, QueryOptions::new().k(10))
            .expect("answered despite shutdown")
    });

    // Client B: wait until A's query is admitted, then ask for shutdown.
    let mut client = ServeClient::connect(addr).expect("connect");
    loop {
        let stats = client.stats().expect("stats");
        if stats.counters.queries_admitted >= 1 {
            break;
        }
        std::thread::yield_now();
    }
    assert!(client.shutdown().expect("ack"));
    server.join();

    // A's in-flight query completed and its response was delivered.
    match worker.join().expect("client A") {
        Response::Kmst { matches, .. } => assert!(!matches.is_empty()),
        other => panic!("expected Kmst, got {other:?}"),
    }
}

#[test]
fn malformed_frames_answer_typed_errors_and_server_survives() {
    let fleet = fleet(20, 5);
    let server = start_server(&fleet, 2, ServerConfig::new());
    let addr = server.local_addr();

    // Garbage opcode: typed Malformed error, connection closed.
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client.request(&Request::Stats); // warm-up: valid
    assert!(matches!(response, Ok(Response::Stats(_))));
    client
        .raw_stream()
        .write_all(&[2u8, 0, 0, 0, 0x7f, 0])
        .expect("write garbage");
    let mut raw = client.raw_stream();
    match mst_serve::protocol::read_frame(&mut raw).expect("error frame") {
        Some(payload) => match Response::decode(&payload).expect("decode") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Error, got {other:?}"),
        },
        None => panic!("server closed without the typed error"),
    }

    // Oversized length prefix: the server rejects before allocating and
    // closes; a fresh connection still works.
    let mut hostile = ServeClient::connect(addr).expect("connect");
    hostile
        .raw_stream()
        .write_all(&(mst_serve::MAX_FRAME + 1).to_le_bytes())
        .expect("write hostile prefix");
    let mut raw = hostile.raw_stream();
    match mst_serve::protocol::read_frame(&mut raw) {
        Ok(Some(payload)) => match Response::decode(&payload).expect("decode") {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
            other => panic!("expected Error, got {other:?}"),
        },
        Ok(None) | Err(_) => {} // already closed is acceptable
    }

    // Mid-frame disconnect: promise 100 bytes, send 3, hang up.
    {
        let mut quitter = ServeClient::connect(addr).expect("connect");
        quitter
            .raw_stream()
            .write_all(&[100u8, 0, 0, 0, 1, 2, 3])
            .expect("write partial");
    } // dropped: TCP FIN mid-frame

    // Semantically invalid query (one-point trajectory): typed
    // InvalidQuery, connection stays open.
    let mut client = ServeClient::connect(addr).expect("connect");
    let response = client
        .request(&Request::Kmst {
            points: vec![mst_trajectory::SamplePoint::new(0.0, 0.0, 0.0)],
            options: QueryOptions::new(),
        })
        .expect("typed response");
    match response {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::InvalidQuery),
        other => panic!("expected InvalidQuery, got {other:?}"),
    }
    // Same connection still serves.
    assert!(client.stats().is_ok());

    let stats = client.stats().expect("stats");
    assert!(stats.counters.malformed_frames >= 2);
    assert_eq!(stats.counters.invalid_queries, 1);
    server.shutdown();
}

/// The CI smoke: one binary-size test covering the whole happy path plus
/// the failure modes ci.sh asserts on (kmst, malformed frame, stats,
/// graceful shutdown).
#[test]
fn server_smoke() {
    let fleet = fleet(24, 1);
    let server = start_server(&fleet, 2, ServerConfig::new().workers(2));
    let addr = server.local_addr();
    let mut client = ServeClient::connect(addr).expect("connect");

    match client
        .kmst(&fleet[3].1, QueryOptions::new().k(3))
        .expect("kmst")
    {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            assert_eq!(matches.len(), 3);
            assert_eq!(matches[0].traj, fleet[3].0, "self-match first");
        }
        other => panic!("expected Kmst, got {other:?}"),
    }

    // Malformed frame on a side connection; main connection unaffected.
    let mut hostile = ServeClient::connect(addr).expect("connect");
    hostile
        .raw_stream()
        .write_all(&[1u8, 0, 0, 0, 0xAA])
        .expect("write garbage");
    drop(hostile);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.queries_completed, 1);
    assert!(client.shutdown().expect("ack"));
    server.join();

    // A post-shutdown connection is refused.
    assert!(
        ServeClient::connect(addr).is_err() || {
            let mut late = ServeClient::connect(addr).expect("connect");
            late.stats().is_err()
        }
    );
}
