//! Replication end-to-end over real TCP: a primary and its replicas on
//! ephemeral loopback ports, WAL records shipped over wire-protocol v2,
//! read-your-writes tokens, and client failover through the pool.

use mst_datagen::{GstdConfig, SpeedDistribution};
use mst_exec::IngestOp;
use mst_index::Rtree3D;
use mst_search::QueryOptions;
use mst_serve::{
    ClientPool, ErrorCode, Request, Response, RetryPolicy, ServeClient, Server, ServerConfig,
    ServerHandle,
};
use mst_trajectory::{Trajectory, TrajectoryId};
use mst_wal::{DurableDatabase, SimStore, WalConfig};

fn fleet(objects: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    let config = GstdConfig {
        num_objects: objects,
        samples_per_object: 60,
        time_step: 1.0,
        speed: SpeedDistribution::lognormal_with_median(5.0e-3, 0.6),
        seed,
    };
    config
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(u64::try_from(i).expect("small fleet")), t))
        .collect()
}

/// Extra trajectories for online writes, ids disjoint from any fleet.
fn extras(count: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    fleet(count, seed)
        .into_iter()
        .map(|(id, t)| (TrajectoryId(1000 + id.0), t))
        .collect()
}

/// A primary over the in-memory simulated store, seeded through the WAL.
fn primary(
    fleet: &[(TrajectoryId, Trajectory)],
    shards: usize,
    config: ServerConfig,
) -> ServerHandle<Rtree3D> {
    let mut db =
        DurableDatabase::<Rtree3D, SimStore>::create(SimStore::new(), WalConfig::default(), shards)
            .expect("create store");
    let ops: Vec<IngestOp> = fleet
        .iter()
        .map(|(id, t)| IngestOp::Insert {
            id: *id,
            trajectory: t.clone(),
        })
        .collect();
    db.apply(&ops).expect("seed store");
    Server::start_durable(config, db).expect("start primary")
}

/// A test-speed retry policy: quick rounds, deterministic seed.
fn retry() -> RetryPolicy {
    RetryPolicy {
        attempts: 3,
        base_us: 2_000,
        max_us: 50_000,
        seed: 7,
    }
}

/// A replica of `primary_addr` bootstrapping into `store`.
fn replica(
    store: SimStore,
    primary_addr: std::net::SocketAddr,
    config: ServerConfig,
) -> ServerHandle<Rtree3D> {
    Server::start_replica::<Rtree3D, _>(config, store, WalConfig::default(), primary_addr, retry())
        .expect("start replica")
}

/// Polls the replica's stats until its applied LSN reaches `lsn`.
/// Bounded: panics rather than hangs if replication stalls.
fn await_caught_up(client: &mut ServeClient, lsn: u64) {
    for _ in 0..2_000 {
        let stats = client.stats().expect("replica stats");
        if stats.counters.repl_applied_lsn >= lsn {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    panic!("replica never caught up to LSN {lsn}");
}

fn expect_kmst(response: Response) -> Vec<mst_search::MstMatch> {
    match response {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            matches
        }
        other => panic!("expected Kmst, got {other:?}"),
    }
}

fn expect_ingested(response: Response) -> u64 {
    match response {
        Response::Ingested { lsn, applied } => {
            assert!(applied);
            lsn
        }
        other => panic!("expected Ingested, got {other:?}"),
    }
}

/// The tentpole path: a replica bootstraps from the primary's snapshot,
/// follows its writes, serves bit-identical answers, and refuses writes
/// and subscriptions with typed `NotPrimary` errors.
#[test]
fn replica_follows_the_primary_and_answers_bit_identically() {
    let base = fleet(20, 11);
    let q = base[4].1.clone();
    let primary = primary(&base, 2, ServerConfig::new().workers(2));
    let replica = replica(SimStore::new(), primary.local_addr(), ServerConfig::new());

    let mut on_primary = ServeClient::connect(primary.local_addr()).expect("connect primary");
    let mut on_replica = ServeClient::connect(replica.local_addr()).expect("connect replica");

    // The bootstrap alone carries the seeded fleet.
    await_caught_up(&mut on_replica, base.len() as u64);
    let before = expect_kmst(
        on_replica
            .kmst(&q, QueryOptions::new().k(4))
            .expect("replica kmst"),
    );
    assert_eq!(
        before,
        expect_kmst(
            on_primary
                .kmst(&q, QueryOptions::new().k(4))
                .expect("primary kmst")
        ),
        "bootstrap state answers identically"
    );

    // Online writes stream across.
    let added = extras(6, 41);
    let mut last_lsn = 0;
    for (id, t) in &added {
        last_lsn = expect_ingested(on_primary.insert_trajectory(*id, t).expect("insert"));
    }
    await_caught_up(&mut on_replica, last_lsn);
    assert_eq!(
        expect_kmst(
            on_replica
                .kmst(&q, QueryOptions::new().k(4))
                .expect("replica kmst")
        ),
        expect_kmst(
            on_primary
                .kmst(&q, QueryOptions::new().k(4))
                .expect("primary kmst")
        ),
        "post-stream state answers identically"
    );

    // A replica refuses writes and subscriptions, typed.
    let spare = extras(1, 99);
    match on_replica
        .insert_trajectory(TrajectoryId(5000), &spare[0].1)
        .expect("typed answer")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotPrimary),
        other => panic!("expected NotPrimary, got {other:?}"),
    }
    match on_replica
        .request(&Request::Subscribe { from_lsn: 1 })
        .expect("typed answer")
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotPrimary),
        other => panic!("expected NotPrimary, got {other:?}"),
    }

    // Liveness gauges: the replica reports its stream, the primary its
    // subscribers.
    let replica_stats = on_replica.stats().expect("stats");
    assert_eq!(replica_stats.counters.repl_applied_lsn, last_lsn);
    assert!(replica_stats.counters.repl_records_applied >= added.len() as u64);
    let primary_stats = on_primary.stats().expect("stats");
    assert_eq!(primary_stats.counters.repl_committed_lsn, last_lsn);
    assert!(primary_stats.counters.repl_records_shipped >= added.len() as u64);
    assert!(
        primary_stats.counters.repl_acked_lsn >= last_lsn,
        "the replica's cumulative ack reached the head"
    );
    assert!(
        primary_stats.counters.repl_heartbeats > 0,
        "an idle stream heartbeats"
    );

    replica.shutdown();
    primary.shutdown();
}

/// Read-your-writes: `min_lsn` below the watermark admits, above it
/// refuses with a typed `ReplicaLagging` carrying both positions — on
/// the replica and on the primary alike.
#[test]
fn min_lsn_reads_gate_on_the_watermark() {
    let base = fleet(16, 23);
    let q = base[2].1.clone();
    let primary = primary(&base, 2, ServerConfig::new().workers(2));
    let replica = replica(SimStore::new(), primary.local_addr(), ServerConfig::new());

    let mut on_primary = ServeClient::connect(primary.local_addr()).expect("connect primary");
    let mut on_replica = ServeClient::connect(replica.local_addr()).expect("connect replica");

    let added = extras(1, 57);
    let lsn = expect_ingested(
        on_primary
            .insert_trajectory(added[0].0, &added[0].1)
            .expect("insert"),
    );

    // On the primary the watermark advanced before the ack: the token
    // admits immediately.
    expect_kmst(
        on_primary
            .kmst(&q, QueryOptions::new().k(3).min_lsn(lsn))
            .expect("primary read-your-writes"),
    );

    // On the replica the token either admits (already caught up) or
    // refuses typed — never stale data, never a hang. Retrying until
    // admission is exactly the client contract.
    let mut admitted = false;
    for _ in 0..2_000 {
        match on_replica
            .kmst(&q, QueryOptions::new().k(3).min_lsn(lsn))
            .expect("typed answer")
        {
            Response::Kmst { .. } => {
                admitted = true;
                break;
            }
            Response::Error {
                code:
                    ErrorCode::ReplicaLagging {
                        required,
                        watermark,
                    },
                ..
            } => {
                assert_eq!(required, lsn);
                assert!(watermark < required, "refusal implies a real lag");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            other => panic!("expected Kmst or ReplicaLagging, got {other:?}"),
        }
    }
    assert!(admitted, "the replica must eventually admit the token");

    // A token from the future refuses on both, with honest positions.
    let future = lsn + 10_000;
    for client in [&mut on_primary, &mut on_replica] {
        match client
            .kmst(&q, QueryOptions::new().k(3).min_lsn(future))
            .expect("typed answer")
        {
            Response::Error {
                code:
                    ErrorCode::ReplicaLagging {
                        required,
                        watermark,
                    },
                ..
            } => {
                assert_eq!(required, future);
                assert!(watermark >= lsn);
            }
            other => panic!("expected ReplicaLagging, got {other:?}"),
        }
    }

    replica.shutdown();
    primary.shutdown();
}

/// A replica restarted over its own (occupied) store recovers locally
/// and resumes the stream from its applied LSN — no snapshot refetch.
#[test]
fn replica_restart_resumes_from_its_recovered_store() {
    let base = fleet(14, 5);
    let q = base[1].1.clone();
    let primary = primary(&base, 2, ServerConfig::new().workers(2));
    let store = SimStore::new();

    let first = replica(store.clone(), primary.local_addr(), ServerConfig::new());
    let mut on_replica = ServeClient::connect(first.local_addr()).expect("connect replica");
    await_caught_up(&mut on_replica, base.len() as u64);
    drop(on_replica);
    first.shutdown();

    // Writes land while the replica is down.
    let mut on_primary = ServeClient::connect(primary.local_addr()).expect("connect primary");
    let added = extras(4, 71);
    let mut last_lsn = 0;
    for (id, t) in &added {
        last_lsn = expect_ingested(on_primary.insert_trajectory(*id, t).expect("insert"));
    }

    // The restart recovers the store (occupied path) and catches up the
    // missed suffix over the stream.
    let second = replica(store, primary.local_addr(), ServerConfig::new());
    let mut on_replica = ServeClient::connect(second.local_addr()).expect("reconnect replica");
    await_caught_up(&mut on_replica, last_lsn);
    assert_eq!(
        expect_kmst(
            on_replica
                .kmst(&q, QueryOptions::new().k(4))
                .expect("replica kmst")
        ),
        expect_kmst(
            on_primary
                .kmst(&q, QueryOptions::new().k(4))
                .expect("primary kmst")
        ),
        "recovered replica converges with the missed writes"
    );

    second.shutdown();
    primary.shutdown();
}

/// Failover: the pool serves reads from the primary until it dies, then
/// from the replica — within the bounded retry budget, observably on
/// the second endpoint.
#[test]
fn client_pool_fails_reads_over_to_the_replica() {
    let base = fleet(18, 29);
    let q = base[3].1.clone();
    let primary_server = primary(&base, 2, ServerConfig::new().workers(2));
    let replica_server = replica(
        SimStore::new(),
        primary_server.local_addr(),
        ServerConfig::new(),
    );

    let mut on_replica = ServeClient::connect(replica_server.local_addr()).expect("connect");
    await_caught_up(&mut on_replica, base.len() as u64);

    let mut pool = ClientPool::new(
        vec![primary_server.local_addr(), replica_server.local_addr()],
        retry(),
    )
    .expect("pool");
    let read = Request::Kmst {
        points: q.points().to_vec(),
        options: QueryOptions::new().k(4),
    };

    // Reads and writes both land on the primary while it lives.
    let on_primary = expect_kmst(pool.read(&read).expect("read via pool"));
    assert_eq!(pool.active_endpoint(), Some(0));
    let spare = extras(1, 83);
    expect_ingested(
        pool.write(&Request::Insert {
            id: spare[0].0,
            points: spare[0].1.points().to_vec(),
        })
        .expect("write via pool"),
    );

    // The primary dies; the next read fails over to the replica and
    // still answers (at the replica's applied state).
    primary_server.shutdown();
    let after = expect_kmst(pool.read(&read).expect("read after failover"));
    assert_eq!(pool.active_endpoint(), Some(1));
    assert!(!after.is_empty());
    // The pre-failover primary read and the replica's answer agree on
    // the replicated prefix (the replica may or may not have applied
    // the last write yet; the base fleet certainly replicated).
    assert_eq!(
        on_primary.len(),
        after.len(),
        "both answers cover the same k"
    );

    // Writes do not fail over — a replica cannot accept them.
    assert!(
        pool.write(&Request::Insert {
            id: TrajectoryId(7777),
            points: spare[0].1.points().to_vec(),
        })
        .is_err(),
        "a write with no live primary surfaces the failure"
    );

    replica_server.shutdown();
}
