//! Online-ingest integration: durable servers on ephemeral ports, real
//! TCP clients inserting and deleting trajectories while queries run —
//! answers compared bit-for-bit against embedded ground truths, and the
//! whole store recovered from disk between server lifetimes.

use std::path::PathBuf;
use std::sync::Arc;

use mst_datagen::{GstdConfig, SpeedDistribution};
use mst_exec::IngestOp;
use mst_index::{Rtree3D, TbTree};
use mst_search::{MovingObjectDatabase, MstMatch, Query, QueryOptions};
use mst_serve::{ErrorCode, Response, ServeClient, Server, ServerConfig, ServerHandle};
use mst_trajectory::{Trajectory, TrajectoryId};
use mst_wal::{DurableDatabase, DurableSubstrate, FileStore, SimStore, WalConfig};

fn fleet(objects: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    let config = GstdConfig {
        num_objects: objects,
        samples_per_object: 80,
        time_step: 1.0,
        speed: SpeedDistribution::lognormal_with_median(5.0e-3, 0.6),
        seed,
    };
    config
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(u64::try_from(i).expect("small fleet")), t))
        .collect()
}

/// Extra trajectories to ingest online, ids disjoint from any fleet.
fn extras(count: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    fleet(count, seed)
        .into_iter()
        .map(|(id, t)| (TrajectoryId(1000 + id.0), t))
        .collect()
}

/// A durable database over the in-memory simulated store, seeded with
/// `fleet` through the WAL (every seed insert is a logged record).
fn durable<I: DurableSubstrate>(
    fleet: &[(TrajectoryId, Trajectory)],
    shards: usize,
) -> DurableDatabase<I, SimStore> {
    let mut db =
        DurableDatabase::<I, SimStore>::create(SimStore::new(), WalConfig::default(), shards)
            .expect("create store");
    let ops: Vec<IngestOp> = fleet
        .iter()
        .map(|(id, t)| IngestOp::Insert {
            id: *id,
            trajectory: t.clone(),
        })
        .collect();
    db.apply(&ops).expect("seed store");
    db
}

fn start<I: DurableSubstrate + Send + 'static>(
    db: DurableDatabase<I, SimStore>,
    config: ServerConfig,
) -> ServerHandle<I> {
    Server::start_durable(config, db).expect("start durable server")
}

/// The embedded ground truth for one kmst query over one object set.
fn baseline_kmst(
    objects: &[(TrajectoryId, Trajectory)],
    q: &Trajectory,
    k: usize,
) -> Vec<MstMatch> {
    let mut db = MovingObjectDatabase::with_rtree();
    for (id, t) in objects {
        db.insert_trajectory(*id, t).expect("insert");
    }
    Query::kmst(q).k(k).run(&mut db).expect("baseline kmst")
}

fn expect_kmst(response: Response) -> Vec<MstMatch> {
    match response {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            matches
        }
        other => panic!("expected Kmst, got {other:?}"),
    }
}

fn expect_ingested(response: Response) -> (u64, bool) {
    match response {
        Response::Ingested { lsn, applied } => (lsn, applied),
        other => panic!("expected Ingested, got {other:?}"),
    }
}

fn expect_error(response: Response) -> ErrorCode {
    match response {
        Response::Error { code, .. } => code,
        other => panic!("expected Error, got {other:?}"),
    }
}

/// Queries racing a background writer must always see a *consistent*
/// state: every answer is bit-identical to the ground truth of some
/// ingest prefix, and once the writer is done the answer is the full
/// set's, exactly.
#[test]
fn queries_during_background_ingest_match_a_prefix_ground_truth() {
    let base = fleet(24, 31);
    let added = extras(8, 77);
    let q = base[3].1.clone();

    // Ground truth for every prefix: base alone, base + added[..1], ...
    let truths: Vec<Vec<MstMatch>> = (0..=added.len())
        .map(|n| {
            let mut objects = base.clone();
            objects.extend(added[..n].iter().cloned());
            baseline_kmst(&objects, &q, 4)
        })
        .collect();

    let server = start(
        durable::<Rtree3D>(&base, 2),
        ServerConfig::new().workers(2).queue_capacity(16),
    );
    let addr = server.local_addr();

    let writer_extras = added.clone();
    let writer = std::thread::spawn(move || {
        let mut client = ServeClient::connect(addr).expect("connect writer");
        for (id, t) in &writer_extras {
            let (lsn, applied) = expect_ingested(client.insert_trajectory(*id, t).expect("insert"));
            assert!(applied, "fresh ids always apply");
            assert!(lsn > 0, "acked writes carry their log position");
        }
    });

    let mut client = ServeClient::connect(addr).expect("connect reader");
    let mut observed_prefixes = std::collections::HashSet::new();
    loop {
        let done = writer.is_finished();
        let matches = expect_kmst(client.kmst(&q, QueryOptions::new().k(4)).expect("kmst"));
        let prefix = truths
            .iter()
            .position(|t| *t == matches)
            .unwrap_or_else(|| panic!("answer matches no ingest prefix: {matches:?}"));
        observed_prefixes.insert(prefix);
        if done {
            break;
        }
    }
    writer.join().expect("writer thread");

    // With every ack delivered, the final answer is the full set's.
    let final_matches = expect_kmst(client.kmst(&q, QueryOptions::new().k(4)).expect("kmst"));
    assert_eq!(final_matches, truths[added.len()], "full-set ground truth");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.ingest_applied, added.len() as u64);
    // 24 seed inserts + 8 online inserts, all logged.
    assert!(stats.counters.wal_appends >= 32);
    assert!(stats.counters.wal_fsyncs >= 1, "group commit fsynced");
    assert_eq!(stats.counters.queries_degraded, 0);
    server.shutdown();
}

/// An acked ingest must never let a pre-ingest answer resurface from the
/// answer cache.
#[test]
fn ingest_invalidates_the_answer_cache() {
    let base = fleet(20, 9);
    let victim = base[5].0;
    let q = base[5].1.clone();
    let server = start(
        durable::<Rtree3D>(&base, 2),
        ServerConfig::new().workers(2).cache_capacity(16),
    );
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let before = expect_kmst(client.kmst(&q, QueryOptions::new().k(3)).expect("kmst"));
    assert_eq!(before[0].traj, victim, "self-match first");
    // The repeat is served from the cache.
    let repeat = expect_kmst(client.kmst(&q, QueryOptions::new().k(3)).expect("repeat"));
    assert_eq!(before, repeat);
    assert_eq!(client.stats().expect("stats").counters.cache_hits, 1);

    let (_, applied) = expect_ingested(client.delete_trajectory(victim).expect("delete"));
    assert!(applied);

    // The same query again: the cache was invalidated, the answer
    // reflects the delete and is bit-identical to the embedded ground
    // truth over the post-delete object set.
    let after = expect_kmst(
        client
            .kmst(&q, QueryOptions::new().k(3))
            .expect("kmst after"),
    );
    assert_ne!(after[0].traj, victim, "deleted object cannot match");
    let remaining: Vec<_> = base
        .iter()
        .filter(|(id, _)| *id != victim)
        .cloned()
        .collect();
    assert_eq!(after, baseline_kmst(&remaining, &q, 3));

    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.cache_hits, 1, "post-ingest query missed");
    assert_eq!(stats.counters.ingest_applied, 1);
    server.shutdown();
}

/// Kill the server after online writes, recover the store from disk,
/// serve again: the replayed state answers bit-identically to a fresh
/// embedded database over the final object set.
#[test]
fn restart_recovers_online_ingest_bit_identically() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("mst-serve-ingest-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let base = fleet(18, 13);
    let added = extras(3, 55);
    let gone = base[2].0;
    let q = base[0].1.clone();

    // First lifetime: seed through the WAL, checkpoint (so recovery
    // replays exactly the online writes), serve, write online.
    {
        let store = FileStore::open(&dir).expect("open store");
        let mut db = DurableDatabase::<Rtree3D, FileStore>::create(store, WalConfig::default(), 2)
            .expect("create");
        let ops: Vec<IngestOp> = base
            .iter()
            .map(|(id, t)| IngestOp::Insert {
                id: *id,
                trajectory: t.clone(),
            })
            .collect();
        db.apply(&ops).expect("seed");
        db.checkpoint().expect("checkpoint");
        let server = Server::start_durable(ServerConfig::new().workers(2), db).expect("start");
        let mut client = ServeClient::connect(server.local_addr()).expect("connect");
        for (id, t) in &added {
            let (_, applied) = expect_ingested(client.insert_trajectory(*id, t).expect("insert"));
            assert!(applied);
        }
        let (_, applied) = expect_ingested(client.delete_trajectory(gone).expect("delete"));
        assert!(applied);
        assert!(client.shutdown().expect("ack"));
        server.join();
    }

    // Second lifetime: recover and compare.
    let store = FileStore::open(&dir).expect("reopen store");
    let db =
        DurableDatabase::<Rtree3D, FileStore>::open(store, WalConfig::default()).expect("recover");
    assert_eq!(
        db.stats().replayed_records,
        added.len() as u64 + 1,
        "exactly the online writes replay"
    );
    let server = Server::start_durable(ServerConfig::new().workers(2), db).expect("restart");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let mut objects: Vec<_> = base.iter().filter(|(id, _)| *id != gone).cloned().collect();
    objects.extend(added.iter().cloned());
    let got = expect_kmst(client.kmst(&q, QueryOptions::new().k(5)).expect("kmst"));
    assert_eq!(
        got,
        baseline_kmst(&objects, &q, 5),
        "recovered state answers identically"
    );

    // The recovery is visible in the wire stats, and the recovered
    // server keeps accepting writes.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.replayed_records, added.len() as u64 + 1);
    let more = extras(1, 99);
    let (_, applied) = expect_ingested(
        client
            .insert_trajectory(TrajectoryId(2000), &more[0].1)
            .expect("insert"),
    );
    assert!(applied);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A server started without a durable store is read-only: ingest frames
/// answer a typed `ReadOnly` error and queries keep working.
#[test]
fn read_only_servers_refuse_ingest_with_a_typed_error() {
    let base = fleet(12, 3);
    let db = mst_exec::ShardedDatabase::with_rtree(2, base.iter().cloned()).expect("build");
    let server = Server::start(ServerConfig::new(), Arc::new(db)).expect("start");
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let spare = extras(1, 41);
    assert_eq!(
        expect_error(
            client
                .insert_trajectory(spare[0].0, &spare[0].1)
                .expect("typed answer")
        ),
        ErrorCode::ReadOnly
    );
    assert_eq!(
        expect_error(client.delete_trajectory(base[0].0).expect("typed answer")),
        ErrorCode::ReadOnly
    );
    // The refusals left the server fully functional.
    let matches = expect_kmst(
        client
            .kmst(&base[0].1, QueryOptions::new().k(2))
            .expect("kmst"),
    );
    assert_eq!(matches[0].traj, base[0].0);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.ingest_applied, 0);
    assert_eq!(stats.counters.wal_appends, 0);
    server.shutdown();
}

/// Per-operation wire semantics: duplicates and substrate refusals are
/// typed `InvalidQuery` answers, an absent-id delete is an applied=false
/// ack, and one bad operation never poisons its batch neighbours.
#[test]
fn per_op_semantics_and_substrate_refusals_over_the_wire() {
    let base = fleet(10, 19);
    let server = start(durable::<Rtree3D>(&base, 1), ServerConfig::new());
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let fresh = extras(2, 23);
    let (lsn, applied) = expect_ingested(
        client
            .insert_trajectory(fresh[0].0, &fresh[0].1)
            .expect("insert"),
    );
    assert!(applied);
    assert!(lsn > 0);
    // Inserting the same id again is a typed per-op refusal...
    assert_eq!(
        expect_error(
            client
                .insert_trajectory(fresh[0].0, &fresh[1].1)
                .expect("typed answer")
        ),
        ErrorCode::InvalidQuery
    );
    // ...which must not have blocked the connection or the store: the
    // next valid write still applies.
    let (_, applied) = expect_ingested(
        client
            .insert_trajectory(fresh[1].0, &fresh[1].1)
            .expect("insert"),
    );
    assert!(applied);
    // Deleting an id that was never there is a no-op ack, not an error.
    let (_, applied) = expect_ingested(
        client
            .delete_trajectory(TrajectoryId(9999))
            .expect("delete"),
    );
    assert!(!applied);
    // A real delete applies.
    let (_, applied) = expect_ingested(client.delete_trajectory(fresh[0].0).expect("delete"));
    assert!(applied);
    let stats = client.stats().expect("stats");
    assert_eq!(stats.counters.ingest_applied, 3, "two inserts + one delete");
    server.shutdown();

    // A TB-tree substrate stores appends but cannot delete: the wire
    // answer is the substrate's typed refusal, and inserts still work.
    let server = start(durable::<TbTree>(&base, 2), ServerConfig::new());
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    assert_eq!(
        expect_error(client.delete_trajectory(base[0].0).expect("typed answer")),
        ErrorCode::InvalidQuery
    );
    let (_, applied) = expect_ingested(
        client
            .insert_trajectory(fresh[0].0, &fresh[0].1)
            .expect("insert"),
    );
    assert!(applied);
    server.shutdown();
}
