//! Connection-kill chaos on the serving layer: seeded clients die
//! abruptly at every stage of the pipeline — mid-frame, with responses
//! unread, with queries in flight — while a well-behaved client keeps
//! querying. The server must never hang, never leak a connection slot
//! permanently, keep answering the survivors bit-identically, and still
//! drain to a clean shutdown afterwards.

use std::io::Write;
use std::sync::Arc;

use mst_datagen::{GstdConfig, SpeedDistribution};
use mst_exec::ShardedDatabase;
use mst_prng::Rng;
use mst_search::QueryOptions;
use mst_serve::{Request, Response, ServeClient, Server, ServerConfig};
use mst_trajectory::{Trajectory, TrajectoryId};

fn fleet(objects: usize, seed: u64) -> Vec<(TrajectoryId, Trajectory)> {
    let config = GstdConfig {
        num_objects: objects,
        samples_per_object: 60,
        time_step: 1.0,
        speed: SpeedDistribution::lognormal_with_median(5.0e-3, 0.6),
        seed,
    };
    config
        .generate()
        .into_iter()
        .enumerate()
        .map(|(i, t)| (TrajectoryId(u64::try_from(i).expect("small fleet")), t))
        .collect()
}

fn kmst_request(q: &Trajectory, k: usize) -> Request {
    Request::Kmst {
        points: q.points().to_vec(),
        options: QueryOptions::new().k(k),
    }
}

fn expect_kmst(response: Response) -> Vec<mst_search::MstMatch> {
    match response {
        Response::Kmst { degraded, matches } => {
            assert!(!degraded);
            matches
        }
        other => panic!("expected Kmst, got {other:?}"),
    }
}

/// One chaos client: handshakes, pipelines a few queries, then dies at
/// a seeded point — before reading anything, mid-read, or mid-write of
/// a partial frame. Every arm abandons in-flight work on purpose.
fn chaos_client(addr: std::net::SocketAddr, q: &Trajectory, rng: &mut Rng) {
    let Ok(mut client) = ServeClient::connect_with_depth(addr, 8) else {
        // A refused connection (server at its cap mid-chaos) is itself a
        // valid chaos outcome.
        return;
    };
    let sends = 1 + rng.usize_below(6);
    let mut ids = Vec::new();
    for _ in 0..sends {
        match client.send(&kmst_request(q, 1 + rng.usize_below(4))) {
            Ok(id) => ids.push(id),
            Err(_) => return,
        }
    }
    match rng.usize_below(4) {
        // Die with every response unread.
        0 => {}
        // Read some answers, abandon the rest.
        1 => {
            let claim = rng.usize_below(ids.len().max(1));
            for id in ids.into_iter().take(claim) {
                if client.wait(id).is_err() {
                    return;
                }
            }
        }
        // Die mid-frame: a partial header promising more than is sent.
        2 => {
            let teaser = [16u8, 0, 0, 0, 7, 7];
            let _ = client.raw_stream().write_all(&teaser);
        }
        // Slam both directions shut with work still in flight.
        _ => {
            let _ = client.raw_stream().shutdown(std::net::Shutdown::Both);
        }
    }
    drop(client);
}

/// The sweep: waves of seeded chaos clients dying mid-pipeline while a
/// well-behaved client checks every wave for liveness and bit-identical
/// answers, and the server drains cleanly at the end.
#[test]
fn seeded_connection_kills_never_wedge_the_server() {
    let base = fleet(16, 47);
    let q = base[2].1.clone();
    let db = ShardedDatabase::with_rtree(2, base.iter().cloned()).expect("build");
    let server = Server::start(
        ServerConfig::new()
            .workers(2)
            .max_connections(32)
            .cache_capacity(8),
        Arc::new(db),
    )
    .expect("start");
    let addr = server.local_addr();

    let mut well_behaved = ServeClient::connect(addr).expect("connect survivor");
    let truth = expect_kmst(
        well_behaved
            .request(&kmst_request(&q, 3))
            .expect("baseline"),
    );

    let mut rng = Rng::seed_from(0xC0CAC01A);
    for wave in 0..8u64 {
        // A burst of concurrently dying clients.
        let mut handles = Vec::new();
        for c in 0..4u64 {
            let q = q.clone();
            let mut rng = Rng::seed_from(0x5EED ^ (wave * 16 + c));
            handles.push(std::thread::spawn(move || {
                chaos_client(addr, &q, &mut rng);
            }));
        }
        for handle in handles {
            handle.join().expect("chaos client threads don't panic");
        }
        // Chaos mixed into this thread too: a raw mid-frame death.
        chaos_client(addr, &q, &mut rng);

        // Liveness + correctness probe after every wave.
        let probe = expect_kmst(
            well_behaved
                .request(&kmst_request(&q, 3))
                .expect("survivor answered"),
        );
        assert_eq!(probe, truth, "wave {wave}: answers drifted under chaos");
    }

    // Fresh connections still work after all the carnage...
    let mut late = ServeClient::connect(addr).expect("connect after chaos");
    assert_eq!(
        expect_kmst(late.request(&kmst_request(&q, 3)).expect("late answer")),
        truth
    );
    let stats = late.stats().expect("stats");
    assert!(stats.counters.connections_accepted >= 30);
    assert_eq!(stats.counters.queries_degraded, 0);

    // ...and the drain completes: every admitted query answers, the
    // join returns. A wedged drain fails this test by timeout.
    server.shutdown();
}

/// Queries admitted before their connection died still execute, and the
/// drain accounts for them: a shutdown issued while orphaned work is in
/// flight completes without hanging.
#[test]
fn orphaned_inflight_queries_never_hang_the_drain() {
    let base = fleet(14, 31);
    let q = base[0].1.clone();
    let db = ShardedDatabase::with_rtree(2, base.iter().cloned()).expect("build");
    let server = Server::start(
        ServerConfig::new().workers(1).queue_capacity(32),
        Arc::new(db),
    )
    .expect("start");
    let addr = server.local_addr();

    // Orphan a pipeline: send a burst of queries and die immediately,
    // so their responses have no reader.
    for burst in 0..6u64 {
        let mut doomed = ServeClient::connect_with_depth(addr, 8).expect("connect doomed");
        for i in 0..8 {
            let k = 1 + ((burst + i) % 4) as usize;
            if doomed.send(&kmst_request(&q, k)).is_err() {
                break;
            }
        }
        drop(doomed);
    }

    // Shutdown races the orphaned executions; the drain must still
    // complete (admitted work answers into the void, nothing blocks).
    server.shutdown();
}
