//! A small, fully deterministic pseudo-random number generator used by the
//! workload generators and the seeded property-test loops.
//!
//! The repository builds offline (see DESIGN.md, "Correctness gate"), so it
//! cannot pull `rand`/`rand_distr` from crates.io. This crate replaces the
//! handful of features those crates provided:
//!
//! * **xoshiro256++** (Blackman & Vigna) as the core generator — fast,
//!   64-bit output, passes the usual statistical batteries at the scale we
//!   sample;
//! * **SplitMix64** to expand a 64-bit seed into the 256-bit state (the
//!   construction recommended by the xoshiro authors);
//! * **Box–Muller** for normal (and hence lognormal) variates;
//! * uniform ranges, Bernoulli draws, and Fisher–Yates shuffling.
//!
//! Everything is reproducible: the same seed yields the same stream on
//! every platform, forever. Experiment outputs are therefore comparable
//! across machines and CI runs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// One step of the SplitMix64 generator (also usable standalone for cheap
/// hashing of seeds and case indexes).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ generator with distribution helpers.
#[derive(Debug, Clone)]
pub struct Rng {
    state: [u64; 4],
    /// Box–Muller produces pairs; the second variate is cached here.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed, expanding it through
    /// SplitMix64 as the xoshiro authors recommend.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng {
            state,
            spare_normal: None,
        }
    }

    /// Derives an independent child generator (stream splitting for
    /// per-case property-test seeds).
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from(self.next_u64())
    }

    /// The next 64 uniformly distributed bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`. `lo` must be `<= hi`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "inverted range [{lo}, {hi})");
        lo + (hi - lo) * self.f64()
    }

    /// A uniform integer in `[0, n)` via rejection sampling (unbiased).
    /// `n` must be positive.
    pub fn u64_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "u64_below(0) is meaningless");
        // Reject the partial final copy of [0, n) at the top of the u64
        // range so every residue is equally likely.
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform index in `[0, n)`.
    pub fn usize_below(&mut self, n: usize) -> usize {
        self.u64_below(n as u64) as usize
    }

    /// A uniform integer in the inclusive range `[lo, hi]`.
    pub fn i64_range_inclusive(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "inverted range [{lo}, {hi}]");
        let span = (hi - lo) as u64 + 1;
        lo + self.u64_below(span) as i64
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }

    /// A Bernoulli draw: `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A standard normal variate (Box–Muller, pairs cached).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // u1 in (0, 1] so the logarithm is finite.
        let u1 = 1.0 - self.f64();
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = std::f64::consts::TAU * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        debug_assert!(std >= 0.0, "negative standard deviation {std}");
        mean + std * self.standard_normal()
    }

    /// A lognormal variate `exp(N(mu, sigma^2))`.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle (uniform over permutations).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.usize_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from(42);
        let mut b = Rng::seed_from(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from(43);
        let first: Vec<u64> = (0..8).map(|_| Rng::seed_from(42).next_u64()).collect();
        assert!(first.iter().all(|&v| v == first[0]));
        assert_ne!(Rng::seed_from(42).next_u64(), c.next_u64());
    }

    #[test]
    fn known_answer_vectors_pin_the_algorithm() {
        // SplitMix64 reference vector (seed 0), from the public domain
        // reference implementation.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        // Pin our seeded xoshiro stream so accidental algorithm changes
        // (which would silently reshuffle every experiment) fail loudly.
        let mut r = Rng::seed_from(0);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from(0);
        assert_eq!(got, (0..3).map(|_| r2.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn f64_stays_in_unit_interval() {
        let mut r = Rng::seed_from(7);
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Rng::seed_from(1);
        let n = 100_000;
        let mut buckets = [0u32; 10];
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.f64();
            sum += v;
            buckets[(v * 10.0) as usize] += 1;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for (i, &b) in buckets.iter().enumerate() {
            let frac = f64::from(b) / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn bounded_integers_cover_their_range_uniformly() {
        let mut r = Rng::seed_from(9);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.usize_below(7)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((9_000..11_000).contains(&c), "residue {i}: {c}");
        }
        for _ in 0..1000 {
            let v = r.i64_range_inclusive(-3, 3);
            assert!((-3..=3).contains(&v));
        }
        // Inclusive endpoints are reachable.
        let hits: Vec<i64> = (0..200).map(|_| r.i64_range_inclusive(-1, 1)).collect();
        assert!(hits.contains(&-1) && hits.contains(&0) && hits.contains(&1));
    }

    #[test]
    fn normal_moments_match() {
        let mut r = Rng::seed_from(11);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let v = r.normal(3.0, 2.0);
            sum += v;
            sum2 += v * v;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
        assert!((var - 4.0).abs() < 0.08, "variance {var}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut r = Rng::seed_from(13);
        let mu = (5.0e-4f64).ln();
        let mut xs: Vec<f64> = (0..50_001).map(|_| r.lognormal(mu, 0.6)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[xs.len() / 2];
        assert!(
            (median / 5.0e-4) > 0.95 && (median / 5.0e-4) < 1.05,
            "median {median}"
        );
        assert!(xs.iter().all(|&v| v > 0.0), "lognormal is positive");
    }

    #[test]
    fn chance_and_bool_are_calibrated() {
        let mut r = Rng::seed_from(17);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
        let heads = (0..100_000).filter(|_| r.bool()).count();
        assert!((48_500..51_500).contains(&heads), "{heads}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_mixes() {
        let mut r = Rng::seed_from(19);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        let fixed = xs.iter().enumerate().filter(|&(i, &v)| i == v).count();
        assert!(fixed < 15, "{fixed} fixed points suggests a broken shuffle");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = Rng::seed_from(23);
        let mut a = parent.fork();
        let mut b = parent.fork();
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
