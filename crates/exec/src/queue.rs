//! A bounded multi-producer multi-consumer job queue built from a mutex
//! and two condition variables — the simplest structure that gives the
//! executor backpressure (producers block when the batch outruns the
//! workers) and clean shutdown (closing wakes every blocked worker with
//! "no more jobs").
//!
//! Poisoning policy (xtask rule R7): a panicking thread must never cascade
//! into `unwrap` panics on the lock. A poisoned queue behaves as closed —
//! [`JobQueue::pop`] returns `None`, [`JobQueue::push`] returns the
//! rejected job — so the batch drains and reports instead of crashing.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// The state under the queue's lock.
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Why a non-blocking [`JobQueue::try_push`] refused a job, carrying the
/// job back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity. Admission control turns this into an
    /// explicit overload rejection instead of unbounded waiting.
    Full(T),
    /// The queue is closed (or its lock poisoned): shutdown in progress.
    Closed(T),
}

/// What [`JobQueue::try_push_batch`] did with a batch: the admitted
/// prefix length, the items that did not fit (in their original order),
/// and whether the refusal was shutdown rather than capacity.
#[derive(Debug)]
pub struct BatchPush<T> {
    /// Items admitted (a prefix of the batch, order preserved).
    pub admitted: usize,
    /// Items handed back: the batch's tail on a full queue, the whole
    /// batch on a closed one.
    pub rejected: Vec<T>,
    /// True when the queue was closed (or poisoned) — shutdown, not
    /// backpressure.
    pub closed: bool,
}

/// A bounded blocking MPMC queue. All methods take `&self`; share it by
/// reference across scoped threads.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item arrives or the queue closes.
    not_empty: Condvar,
    /// Signalled when an item leaves or the queue closes.
    not_full: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` pending jobs (minimum 1).
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueues a job, blocking while the queue is full. Returns the job
    /// back as `Err` when the queue is closed (or poisoned) — the caller
    /// decides whether that is a shutdown or a bug.
    pub fn push(&self, item: T) -> Result<(), T> {
        let Ok(mut guard) = self.inner.lock() else {
            return Err(item);
        };
        while guard.items.len() >= self.capacity && !guard.closed {
            match self.not_full.wait(guard) {
                Ok(g) => guard = g,
                Err(_) => return Err(item),
            }
        }
        if guard.closed {
            return Err(item);
        }
        guard.items.push_back(item);
        drop(guard);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues a job without blocking. A full queue is an explicit
    /// [`TryPushError::Full`] — the admission-control primitive: callers
    /// reject the work loudly instead of queueing unboundedly or waiting.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let Ok(mut guard) = self.inner.lock() else {
            return Err(TryPushError::Closed(item));
        };
        if guard.closed {
            return Err(TryPushError::Closed(item));
        }
        if guard.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        guard.items.push_back(item);
        drop(guard);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueues a prefix of `items` under **one** lock acquisition — the
    /// batch-submission primitive: a coalescer handing over N queries pays
    /// one lock round-trip, not N. Admits items in order until the queue
    /// is full, then hands the remainder back. A closed (or poisoned)
    /// queue admits nothing.
    pub fn try_push_batch(&self, mut items: Vec<T>) -> BatchPush<T> {
        let Ok(mut guard) = self.inner.lock() else {
            return BatchPush {
                admitted: 0,
                rejected: items,
                closed: true,
            };
        };
        if guard.closed {
            drop(guard);
            return BatchPush {
                admitted: 0,
                rejected: items,
                closed: true,
            };
        }
        let room = self.capacity.saturating_sub(guard.items.len());
        let admitted = room.min(items.len());
        let rejected = items.split_off(admitted);
        for item in items {
            guard.items.push_back(item);
        }
        drop(guard);
        if admitted > 0 {
            // More than one worker may be parked; a single notify could
            // leave admitted jobs waiting behind one woken consumer.
            self.not_empty.notify_all();
        }
        BatchPush {
            admitted,
            rejected,
            closed: false,
        }
    }

    /// The queue's capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Dequeues a job, blocking while the queue is empty and open. Returns
    /// `None` once the queue is closed and drained (or poisoned) — the
    /// worker's signal to exit.
    pub fn pop(&self) -> Option<T> {
        let Ok(mut guard) = self.inner.lock() else {
            return None;
        };
        loop {
            if let Some(item) = guard.items.pop_front() {
                drop(guard);
                self.not_full.notify_one();
                return Some(item);
            }
            if guard.closed {
                return None;
            }
            match self.not_empty.wait(guard) {
                Ok(g) => guard = g,
                Err(_) => return None,
            }
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// every blocked thread wakes.
    pub fn close(&self) {
        if let Ok(mut guard) = self.inner.lock() {
            guard.closed = true;
        }
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Number of jobs currently queued (0 if the lock is poisoned).
    pub fn len(&self) -> usize {
        self.inner.lock().map(|g| g.items.len()).unwrap_or(0)
    }

    /// True when no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_single_thread() {
        let q = JobQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn close_drains_then_stops() {
        let q = JobQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.close();
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let q = JobQueue::new(2);
        std::thread::scope(|s| {
            let producer = s.spawn(|| {
                // 6 pushes through a capacity-2 queue: blocks until the
                // consumer drains.
                for i in 0..6 {
                    q.push(i).unwrap();
                }
                q.close();
            });
            let mut got = Vec::new();
            while let Some(i) = q.pop() {
                got.push(i);
            }
            producer.join().unwrap();
            assert_eq!(got, vec![0, 1, 2, 3, 4, 5]);
        });
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = JobQueue::new(4);
        let total: u64 = std::thread::scope(|s| {
            let producers: Vec<_> = (0..3u64)
                .map(|p| {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..100u64 {
                            q.push(p * 1000 + i).unwrap();
                        }
                    })
                })
                .collect();
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = &q;
                    s.spawn(move || {
                        let mut count = 0u64;
                        while q.pop().is_some() {
                            count += 1;
                        }
                        count
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            q.close();
            consumers.into_iter().map(|c| c.join().unwrap()).sum()
        });
        assert_eq!(total, 300);
    }

    #[test]
    fn batch_push_admits_a_prefix_under_one_lock() {
        let q = JobQueue::new(3);
        q.push(0).unwrap();
        let push = q.try_push_batch(vec![1, 2, 3, 4]);
        assert_eq!(push.admitted, 2);
        assert_eq!(push.rejected, vec![3, 4]);
        assert!(!push.closed);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
        // An empty batch is a no-op.
        let push = q.try_push_batch(Vec::<i32>::new());
        assert_eq!((push.admitted, push.rejected.len()), (0, 0));
        // A closed queue admits nothing and flags shutdown.
        q.close();
        let push = q.try_push_batch(vec![7, 8]);
        assert_eq!(push.admitted, 0);
        assert_eq!(push.rejected, vec![7, 8]);
        assert!(push.closed);
    }

    #[test]
    fn closed_empty_queue_pops_none_immediately() {
        let q: JobQueue<u32> = JobQueue::new(1);
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.push(9), Err(9));
    }

    #[test]
    fn try_push_rejects_full_and_closed_without_blocking() {
        let q = JobQueue::new(2);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()));
        q.close();
        assert_eq!(q.try_push(5), Err(TryPushError::Closed(5)));
        // Pending jobs still drain after close.
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(4));
        assert_eq!(q.pop(), None);
    }
}
