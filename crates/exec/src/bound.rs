//! The cross-shard shared bound and per-query execution control.
//!
//! # Bound-sharing protocol
//!
//! Each in-flight query owns one [`SharedBound`]: an `AtomicU64` holding
//! the bit pattern of the tightest known upper bound on the query's
//! *global* kth dissimilarity (initially `+inf`). Every shard job working
//! that query holds a reference:
//!
//! * when a shard's local [`mst_search::UpperKeys`] threshold tightens,
//!   the search publishes it ([`mst_search::BoundShare::publish_kth`]) and
//!   the bound is lowered monotonically;
//! * before every refinement decision the search reads the bound
//!   ([`mst_search::BoundShare::kth_hint`]) and folds it into its pruning
//!   threshold, so a discovery on shard 0 kills candidates on shard 3
//!   mid-flight.
//!
//! Soundness: a shard's kth upper key certifies "at least k trajectories
//! exist with dissimilarity ≤ this value" — a statement about the whole
//! dataset, since shards partition it. The global kth best is therefore
//! never above any published value, and pruning strictly above the bound
//! can never discard a true answer. Monotonicity makes relaxed atomics
//! sufficient: a stale read is merely a looser (still sound) bound.
//!
//! The comparison trick: for non-negative IEEE 754 doubles (dissimilarities
//! and `+inf` are), the total order of values coincides with the unsigned
//! order of their bit patterns, so `fetch_min` on the raw bits *is* a
//! lock-free floating-point minimum.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mst_search::BoundShare;

use crate::clock::Stopwatch;

/// A monotonically tightening upper bound on a query's global kth
/// dissimilarity, shared by every shard job of that query.
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl SharedBound {
    /// A fresh bound: nothing known, `+inf`.
    pub fn new() -> Self {
        SharedBound {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The current bound.
    pub fn get(&self) -> f64 {
        // ordering: the bound is a monotone lattice — any stale read is a
        // valid (merely looser) bound, so no synchronization is needed.
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Lowers the bound to `value` if tighter. Non-finite or negative
    /// values are ignored — the bound only ever moves down through sound
    /// certificates.
    pub fn tighten(&self, value: f64) {
        if !value.is_finite() || value < 0.0 {
            return;
        }
        // Non-negative doubles order identically to their bit patterns.
        // ordering: fetch_min only ever lowers the value; readers that
        // miss this update see a looser bound, which is still sound.
        self.bits.fetch_min(value.to_bits(), Ordering::Relaxed);
    }
}

/// Per-query execution state shared by all of the query's shard jobs: the
/// cross-shard bound, the deadline, the degradation flag, and the
/// first-start/last-end timestamps the latency report is built from.
///
/// This is the executor's implementation of [`BoundShare`]; a reference to
/// it is threaded into the per-shard searches
/// ([`mst_search::KmstSubstrate::kmst_search`] /
/// [`mst_search::nearest_trajectories`]).
#[derive(Debug)]
pub struct QueryControl {
    bound: SharedBound,
    clock: Stopwatch,
    /// Absolute deadline as a microsecond offset on `clock`; `u64::MAX`
    /// means no deadline.
    deadline_us: u64,
    /// Whether the cross-shard bound participates in pruning. When off,
    /// hints read `+inf` and publishes are dropped — each shard prunes on
    /// its local threshold alone ([`QueryOptions::share_bound`]
    /// (mst_search::QueryOptions)).
    share: bool,
    degraded: AtomicBool,
    /// First shard-job start (microseconds on `clock`); `u64::MAX` until a
    /// job starts.
    started_us: AtomicU64,
    /// Last shard-job end (microseconds on `clock`).
    finished_us: AtomicU64,
}

impl QueryControl {
    /// Creates the control for one query of a batch. `deadline_us` is the
    /// per-query budget in microseconds, measured from batch submission
    /// (`clock`'s origin) — queue wait counts against it, matching an
    /// SLA-from-submission service model.
    pub fn new(clock: Stopwatch, deadline_us: Option<u64>) -> Self {
        QueryControl::with_sharing(clock, deadline_us, true)
    }

    /// [`QueryControl::new`] with the bound-sharing switch exposed:
    /// `share: false` isolates this query's shards from each other (hints
    /// read `+inf`, publishes are dropped), while deadlines and latency
    /// marks work as usual.
    pub fn with_sharing(clock: Stopwatch, deadline_us: Option<u64>, share: bool) -> Self {
        QueryControl {
            bound: SharedBound::new(),
            clock,
            deadline_us: deadline_us.unwrap_or(u64::MAX),
            share,
            degraded: AtomicBool::new(false),
            started_us: AtomicU64::new(u64::MAX),
            finished_us: AtomicU64::new(0),
        }
    }

    /// The query's shared bound.
    pub fn bound(&self) -> &SharedBound {
        &self.bound
    }

    /// True when any shard job of this query hit the deadline: the query's
    /// results are best-so-far, not certified complete.
    pub fn is_degraded(&self) -> bool {
        // ordering: read after the worker threads are joined; the join
        // supplies the happens-before edge, not the atomic.
        self.degraded.load(Ordering::Relaxed)
    }

    /// Records that a shard job of this query is starting now.
    pub fn mark_start(&self) {
        // ordering: commutative min over a monotonic clock; the report
        // reads only after the jobs are collected (join happens-before).
        self.started_us
            .fetch_min(self.clock.elapsed_us(), Ordering::Relaxed);
    }

    /// Records that a shard job of this query finished now.
    pub fn mark_end(&self) {
        // ordering: commutative max over a monotonic clock; the report
        // reads only after the jobs are collected (join happens-before).
        self.finished_us
            .fetch_max(self.clock.elapsed_us(), Ordering::Relaxed);
    }

    /// Wall time from the query's first shard-job start to its last
    /// shard-job end, in microseconds (0 if no job ran).
    pub fn latency_us(&self) -> u64 {
        // ordering: read after the query's jobs are collected; the
        // result-slot handoff supplies the happens-before edge.
        let start = self.started_us.load(Ordering::Relaxed);
        let end = self.finished_us.load(Ordering::Relaxed); // ordering: as above
        if start == u64::MAX {
            return 0;
        }
        end.saturating_sub(start)
    }
}

impl BoundShare for QueryControl {
    fn kth_hint(&self) -> f64 {
        if self.share {
            self.bound.get()
        } else {
            f64::INFINITY
        }
    }

    fn publish_kth(&self, kth: f64) {
        if self.share {
            self.bound.tighten(kth);
        }
    }

    fn poll_stop(&self) -> bool {
        if self.deadline_us == u64::MAX {
            return false;
        }
        // `>=` so a zero budget is expired from the first poll.
        if self.clock.elapsed_us() >= self.deadline_us {
            // ordering: a sticky one-way flag; readers observe it after
            // the job join, which supplies the happens-before edge.
            self.degraded.store(true, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_starts_infinite_and_only_tightens() {
        let b = SharedBound::new();
        assert_eq!(b.get(), f64::INFINITY);
        b.tighten(5.0);
        assert_eq!(b.get(), 5.0);
        b.tighten(7.0); // looser: ignored
        assert_eq!(b.get(), 5.0);
        b.tighten(2.5);
        assert_eq!(b.get(), 2.5);
        b.tighten(f64::NAN);
        b.tighten(f64::INFINITY);
        b.tighten(-1.0);
        assert_eq!(b.get(), 2.5);
        b.tighten(0.0);
        assert_eq!(b.get(), 0.0);
    }

    #[test]
    fn concurrent_tightening_converges_to_the_minimum() {
        let b = SharedBound::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let b = &b;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        b.tighten(1.0 + ((t * 1000 + i) % 997) as f64);
                    }
                });
            }
        });
        assert_eq!(b.get(), 1.0);
    }

    #[test]
    fn control_without_deadline_never_stops() {
        let ctl = QueryControl::new(Stopwatch::start(), None);
        assert!(!ctl.poll_stop());
        assert!(!ctl.is_degraded());
        assert_eq!(ctl.kth_hint(), f64::INFINITY);
        ctl.publish_kth(3.0);
        assert_eq!(ctl.kth_hint(), 3.0);
    }

    #[test]
    fn sharing_off_isolates_the_bound() {
        let ctl = QueryControl::with_sharing(Stopwatch::start(), None, false);
        ctl.publish_kth(3.0);
        assert_eq!(ctl.kth_hint(), f64::INFINITY);
        // The underlying bound really dropped the publish — a later flip
        // to sharing could not leak a stale value (the bound never saw it).
        assert_eq!(ctl.bound().get(), f64::INFINITY);
    }

    #[test]
    fn expired_deadline_stops_and_degrades() {
        let ctl = QueryControl::new(Stopwatch::start(), Some(0));
        // A zero budget is over by the first poll.
        assert!(ctl.poll_stop());
        assert!(ctl.is_degraded());
    }

    #[test]
    fn latency_spans_first_start_to_last_end() {
        let ctl = QueryControl::new(Stopwatch::start(), None);
        assert_eq!(ctl.latency_us(), 0);
        ctl.mark_start();
        ctl.mark_end();
        ctl.mark_end();
        // Non-negative and small; exact values depend on the host clock.
        let lat = ctl.latency_us();
        assert!(lat < 10_000_000);
    }
}
