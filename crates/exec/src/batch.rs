//! The batch executor: a fixed worker pool draining (query, shard) jobs
//! off the bounded queue, with per-query cross-shard bound sharing,
//! deadline enforcement, and shard-level graceful degradation.
//!
//! # Execution model
//!
//! A batch of Q queries over P shards becomes Q x P independent jobs.
//! Workers pull jobs MPMC-style, so a long query on one shard never stalls
//! the rest of the batch; all jobs of one query share that query's
//! [`QueryControl`] — the atomic kth bound, the deadline, and the latency
//! marks. Results land in per-job slots, so the output order is the
//! submission order regardless of scheduling.
//!
//! # Determinism
//!
//! With no deadline, batch answers are bit-identical across worker and
//! shard counts, and identical to the single-threaded
//! [`Query::run`](mst_search::Query) answer on an unsharded database: the
//! shared bound is sound (it only ever prunes candidates strictly above a
//! certified global-kth upper bound, with strict comparisons protecting
//! ties), per-shard values come from exact recomputation, and the merge is
//! a total order (value, then trajectory id). Scheduling changes *work*
//! (how much each shard prunes), never *answers*; the work shows up in
//! the merged [`QueryProfile`] instead.

use mst_index::{KnnMatch, LeafEntry};
use mst_search::{BoundShare, KmstSubstrate, MstMatch, NnMatch, QueryProfile};

use crate::bound::QueryControl;
use crate::clock::Stopwatch;
use crate::queue::JobQueue;
use crate::shard::{Shard, ShardedDatabase};
use crate::{BatchQuery, ExecError};

/// The merged answer of one batch query.
#[derive(Debug, Clone)]
pub enum QueryAnswer {
    /// k-MST / range-MST matches, ascending dissimilarity.
    Kmst(Vec<MstMatch>),
    /// Trajectory-kNN matches, ascending closest-approach distance.
    Knn(Vec<NnMatch>),
    /// Point-kNN matches (nearest segments), ascending distance.
    Segments(Vec<KnnMatch>),
    /// Range-query hits, in canonical (trajectory, sequence) order.
    Range(Vec<LeafEntry>),
}

impl QueryAnswer {
    /// The matches as k-MST results, if this was a k-MST query.
    pub fn as_kmst(&self) -> Option<&[MstMatch]> {
        match self {
            QueryAnswer::Kmst(m) => Some(m),
            _ => None,
        }
    }

    /// The matches as kNN results, if this was a kNN query.
    pub fn as_knn(&self) -> Option<&[NnMatch]> {
        match self {
            QueryAnswer::Knn(m) => Some(m),
            _ => None,
        }
    }

    /// The matches as point-kNN results, if this was a segments query.
    pub fn as_segments(&self) -> Option<&[KnnMatch]> {
        match self {
            QueryAnswer::Segments(m) => Some(m),
            _ => None,
        }
    }

    /// The hits as range results, if this was a range query.
    pub fn as_range(&self) -> Option<&[LeafEntry]> {
        match self {
            QueryAnswer::Range(m) => Some(m),
            _ => None,
        }
    }

    /// Number of matches, any flavour.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::Kmst(m) => m.len(),
            QueryAnswer::Knn(m) => m.len(),
            QueryAnswer::Segments(m) => m.len(),
            QueryAnswer::Range(m) => m.len(),
        }
    }

    /// True when nothing matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One shard whose job died with an error instead of producing a top-k
/// list. The query's merged answer is still returned (degraded) — this
/// record says which slice of the database it is missing and why.
#[derive(Debug)]
pub struct ShardFailure {
    /// The shard whose search failed.
    pub shard: usize,
    /// The error that killed it (typically an I/O or checksum fault
    /// surfaced through [`mst_index::IndexError`]).
    pub error: mst_search::SearchError,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {}: {}", self.shard, self.error)
    }
}

/// Everything the executor knows about one finished query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The globally merged top-k answer. When `degraded` is set this is
    /// best-so-far, not certified complete.
    pub answer: QueryAnswer,
    /// Work counters merged across the query's shard jobs (in shard
    /// order), including the jobs that failed — the candidate ledger
    /// stays balanced under the merge even for aborted searches.
    pub profile: QueryProfile,
    /// True when the answer is not certified complete, for either cause:
    /// the deadline expired (`deadline_expired`) or at least one shard
    /// job failed (`failures` is non-empty).
    pub degraded: bool,
    /// True when the deadline cut at least one shard job short.
    pub deadline_expired: bool,
    /// Shards whose jobs died with a search/index error, in shard order.
    /// Their partial contribution is absent from `answer`.
    pub failures: Vec<ShardFailure>,
    /// Wall time from the query's first shard job starting to its last
    /// finishing, in microseconds. Queue wait before the first start is
    /// excluded; deadlines, by contrast, run from batch submission.
    pub latency_us: u64,
}

impl QueryOutcome {
    /// Latency in milliseconds, for reporting.
    pub fn latency_ms(&self) -> f64 {
        self.latency_us as f64 / 1000.0
    }
}

/// The outcome of a whole batch, in submission order.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per submitted query, in submission order.
    pub outcomes: Vec<Result<QueryOutcome, ExecError>>,
}

impl BatchOutcome {
    /// Number of queries whose answer is not certified complete (deadline
    /// expiry or shard failure).
    pub fn degraded_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|q| q.degraded))
            .count()
    }

    /// Number of shard jobs that failed across the whole batch.
    pub fn failed_shard_count(&self) -> usize {
        self.outcomes
            .iter()
            .flatten()
            .map(|q| q.failures.len())
            .sum()
    }

    /// Work counters merged across every successful query.
    pub fn merged_profile(&self) -> QueryProfile {
        let mut total = QueryProfile::default();
        for outcome in self.outcomes.iter().flatten() {
            total.merge(&outcome.profile);
        }
        total
    }
}

/// A reusable batch-execution configuration: worker count, queue bound,
/// and the per-query deadline.
///
/// ```no_run
/// use mst_exec::{BatchExecutor, BatchQuery, ShardedDatabase};
/// use mst_search::Query;
/// # fn demo(db: &ShardedDatabase<mst_index::Rtree3D>,
/// #         q: &mst_trajectory::Trajectory) -> Result<(), mst_exec::ExecError> {
/// let batch = vec![BatchQuery::kmst(Query::kmst(q).k(5))?];
/// let outcome = BatchExecutor::new().workers(4).run(db, batch);
/// for result in &outcome.outcomes {
///     let query = result.as_ref().expect("query failed");
///     println!("{} matches in {:.2} ms", query.answer.len(), query.latency_ms());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    workers: usize,
    queue_capacity: usize,
    deadline_us: Option<u64>,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor::new()
    }
}

/// What one (query, shard) job hands back through its slot.
pub(crate) enum JobResult {
    Kmst(Vec<MstMatch>),
    Knn(Vec<NnMatch>),
    Segments(Vec<KnnMatch>),
    Range(Vec<LeafEntry>),
    Failed(mst_search::SearchError),
}

/// Runs one query against one shard — the unit of work both executors
/// share ([`BatchExecutor`] distributes these across workers; the
/// persistent [`crate::ExecHandle`] pool runs a query's shards in
/// sequence on one worker). k-MST and kNN poll the deadline inside the
/// search; segments and range queries have no internal poll points, so an
/// already-expired deadline skips the shard with an empty (degraded)
/// contribution.
pub(crate) fn run_shard_job<I: KmstSubstrate>(
    shard: &Shard<I>,
    query: &BatchQuery,
    control: &QueryControl,
    profile: &mut QueryProfile,
) -> JobResult {
    let result = match query {
        BatchQuery::Kmst(spec) => shard
            .run_kmst(spec, control, profile)
            .map(|report| JobResult::Kmst(report.matches)),
        BatchQuery::Knn(spec) => shard
            .run_knn(spec, control, profile)
            .map(|outcome| JobResult::Knn(outcome.matches)),
        BatchQuery::Segments(spec) => {
            if control.poll_stop() {
                Ok(JobResult::Segments(Vec::new()))
            } else {
                shard
                    .run_knn_segments(spec, profile)
                    .map(JobResult::Segments)
            }
        }
        BatchQuery::Range(spec) => {
            if control.poll_stop() {
                Ok(JobResult::Range(Vec::new()))
            } else {
                shard.run_range(spec, profile).map(JobResult::Range)
            }
        }
    };
    result.unwrap_or_else(JobResult::Failed)
}

/// Accumulates per-shard result lists (whichever flavour the query is)
/// and merges them into the global answer. Shared by both executors so a
/// batch run and a submitted query merge identically.
pub(crate) struct ShardLists {
    kmst: Vec<Vec<MstMatch>>,
    knn: Vec<Vec<NnMatch>>,
    segments: Vec<Vec<KnnMatch>>,
    range: Vec<Vec<LeafEntry>>,
}

impl ShardLists {
    pub(crate) fn new() -> Self {
        ShardLists {
            kmst: Vec::new(),
            knn: Vec::new(),
            segments: Vec::new(),
            range: Vec::new(),
        }
    }

    /// Files one shard's job result; failures are recorded with their
    /// shard instead of contributing a list.
    pub(crate) fn push(
        &mut self,
        shard: usize,
        result: JobResult,
        failures: &mut Vec<ShardFailure>,
    ) {
        match result {
            JobResult::Kmst(m) => self.kmst.push(m),
            JobResult::Knn(m) => self.knn.push(m),
            JobResult::Segments(m) => self.segments.push(m),
            JobResult::Range(m) => self.range.push(m),
            JobResult::Failed(error) => failures.push(ShardFailure { shard, error }),
        }
    }

    /// Merges the accumulated lists into the query's global answer, with
    /// the deterministic order each flavour's merge defines.
    pub(crate) fn merge(&self, query: &BatchQuery) -> QueryAnswer {
        match query {
            BatchQuery::Kmst(spec) => {
                QueryAnswer::Kmst(mst_search::merge_shard_matches(spec.config.k, &self.kmst))
            }
            BatchQuery::Knn(spec) => {
                QueryAnswer::Knn(mst_search::merge_shard_nn(spec.k(), &self.knn))
            }
            BatchQuery::Segments(spec) => QueryAnswer::Segments(mst_search::merge_shard_segments(
                spec.options.k,
                &self.segments,
            )),
            BatchQuery::Range(_) => QueryAnswer::Range(mst_search::merge_shard_range(&self.range)),
        }
    }
}

/// A job's drop box: its answer plus the work profile it accumulated.
type ResultSlot = std::sync::Mutex<Option<(JobResult, QueryProfile)>>;

/// One unit of work: query `query` of the batch against shard `shard`.
#[derive(Clone, Copy)]
struct Job {
    query: usize,
    shard: usize,
}

impl BatchExecutor {
    /// An executor with one worker, a queue bound matching the worker
    /// count, and no deadline.
    pub fn new() -> Self {
        BatchExecutor {
            workers: 1,
            queue_capacity: 0,
            deadline_us: None,
        }
    }

    /// Sets the number of worker threads (minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the job-queue bound. Defaults to `2 x workers`, enough to keep
    /// every worker fed while still applying backpressure to submission.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets a per-query deadline in microseconds, measured from batch
    /// submission. A query that exceeds it stops early and reports
    /// `degraded: true` with its best-so-far answer.
    pub fn deadline_us(mut self, deadline: u64) -> Self {
        self.deadline_us = Some(deadline);
        self
    }

    /// Removes the deadline (the default).
    pub fn no_deadline(mut self) -> Self {
        self.deadline_us = None;
        self
    }

    /// Turns this configuration into a persistent, admission-controlled
    /// submission handle over `db` (see [`crate::ExecHandle`]): the same
    /// worker count, queue bound, and default deadline, but with workers
    /// that outlive any one query and a non-blocking
    /// [`try_submit`](crate::ExecHandle::try_submit) that rejects with
    /// typed backpressure instead of queueing without bound.
    pub fn submit_handle<I>(
        &self,
        db: std::sync::Arc<ShardedDatabase<I>>,
    ) -> crate::Result<crate::ExecHandle<I>>
    where
        I: KmstSubstrate + Send + 'static,
    {
        let capacity = if self.queue_capacity == 0 {
            self.workers * 2
        } else {
            self.queue_capacity
        };
        crate::ExecHandle::start(db, self.workers, capacity, self.deadline_us)
    }

    /// Runs a batch against a sharded database and returns per-query
    /// outcomes in submission order.
    ///
    /// Spawns the configured worker pool for the duration of the batch
    /// (scoped threads — no `'static` bounds, no leaked threads), feeds
    /// the Q x P (query, shard) jobs through the bounded queue, and merges
    /// each query's shard answers once all its jobs finish.
    pub fn run<I>(&self, db: &ShardedDatabase<I>, queries: Vec<BatchQuery>) -> BatchOutcome
    where
        I: KmstSubstrate + Send,
    {
        let num_shards = db.num_shards();
        let num_queries = queries.len();
        if num_queries == 0 || num_shards == 0 {
            return BatchOutcome {
                outcomes: Vec::new(),
            };
        }

        let clock = Stopwatch::start();
        // Per-query options override the executor defaults: an explicit
        // deadline on the query wins, and the query's sharing policy is
        // always its own.
        let controls: Vec<QueryControl> = queries
            .iter()
            .map(|query| {
                let opts = query.options();
                QueryControl::with_sharing(
                    clock,
                    opts.deadline_us.or(self.deadline_us),
                    opts.share_bound,
                )
            })
            .collect();
        // One slot per (query, shard) job; each job is executed exactly
        // once, so slot mutexes are uncontended.
        let slots: Vec<ResultSlot> = (0..num_queries * num_shards)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let capacity = if self.queue_capacity == 0 {
            self.workers * 2
        } else {
            self.queue_capacity
        };
        let queue: JobQueue<Job> = JobQueue::new(capacity);

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let queue = &queue;
                let queries = &queries;
                let controls = &controls;
                let slots = &slots;
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        let control = &controls[job.query];
                        let shard = &db.shards()[job.shard];
                        control.mark_start();
                        let mut profile = QueryProfile::default();
                        let result =
                            run_shard_job(shard, &queries[job.query], control, &mut profile);
                        control.mark_end();
                        let slot = &slots[job.query * num_shards + job.shard];
                        if let Ok(mut slot) = slot.lock() {
                            *slot = Some((result, profile));
                        }
                    }
                });
            }

            // This thread is the producer: enqueue all jobs, then close so
            // workers drain and exit before the scope joins them.
            for query in 0..num_queries {
                for shard in 0..num_shards {
                    if queue.push(Job { query, shard }).is_err() {
                        break;
                    }
                }
            }
            queue.close();
        });

        let mut outcomes = Vec::with_capacity(num_queries);
        for (q, (query, control)) in queries.iter().zip(&controls).enumerate() {
            outcomes.push(Self::collect_query(q, query, control, &slots, num_shards));
        }
        BatchOutcome { outcomes }
    }

    /// Merges the per-shard slot results of one query, in shard order.
    ///
    /// A shard job that *failed* (I/O fault, checksum mismatch, poisoned
    /// lock) does not fail the query: its error is recorded in
    /// [`QueryOutcome::failures`], its work profile still merges (keeping
    /// the candidate ledger balanced), and the surviving shards' lists
    /// merge into a `degraded` answer — the same honest-best-effort
    /// contract the deadline path already provides. Only a *lost* slot
    /// (worker died without reporting) is an [`ExecError`].
    fn collect_query(
        q: usize,
        query: &BatchQuery,
        control: &QueryControl,
        slots: &[ResultSlot],
        num_shards: usize,
    ) -> Result<QueryOutcome, ExecError> {
        let mut profile = QueryProfile::default();
        let mut lists = ShardLists::new();
        let mut failures: Vec<ShardFailure> = Vec::new();
        for shard in 0..num_shards {
            let taken = slots[q * num_shards + shard]
                .lock()
                .ok()
                .and_then(|mut s| s.take());
            let Some((result, shard_profile)) = taken else {
                return Err(ExecError::Lost { query: q, shard });
            };
            profile.merge(&shard_profile);
            lists.push(shard, result, &mut failures);
        }
        let answer = lists.merge(query);
        let deadline_expired = control.is_degraded();
        Ok(QueryOutcome {
            answer,
            profile,
            degraded: deadline_expired || !failures.is_empty(),
            deadline_expired,
            failures,
            latency_us: control.latency_us(),
        })
    }
}
