//! The batch executor: a fixed worker pool draining (query, shard) jobs
//! off the bounded queue, with per-query cross-shard bound sharing,
//! deadline enforcement, and shard-level graceful degradation.
//!
//! # Execution model
//!
//! A batch of Q queries over P shards becomes Q x P independent jobs.
//! Workers pull jobs MPMC-style, so a long query on one shard never stalls
//! the rest of the batch; all jobs of one query share that query's
//! [`QueryControl`] — the atomic kth bound, the deadline, and the latency
//! marks. Results land in per-job slots, so the output order is the
//! submission order regardless of scheduling.
//!
//! # Determinism
//!
//! With no deadline, batch answers are bit-identical across worker and
//! shard counts, and identical to the single-threaded
//! [`Query::run`](mst_search::Query) answer on an unsharded database: the
//! shared bound is sound (it only ever prunes candidates strictly above a
//! certified global-kth upper bound, with strict comparisons protecting
//! ties), per-shard values come from exact recomputation, and the merge is
//! a total order (value, then trajectory id). Scheduling changes *work*
//! (how much each shard prunes), never *answers*; the work shows up in
//! the merged [`QueryProfile`] instead.

use mst_index::TrajectoryIndex;
use mst_search::{MstMatch, NnMatch, QueryProfile};

use crate::bound::QueryControl;
use crate::clock::Stopwatch;
use crate::queue::JobQueue;
use crate::shard::ShardedDatabase;
use crate::{BatchQuery, ExecError};

/// The merged answer of one batch query.
#[derive(Debug, Clone)]
pub enum QueryAnswer {
    /// k-MST / range-MST matches, ascending dissimilarity.
    Kmst(Vec<MstMatch>),
    /// Trajectory-kNN matches, ascending closest-approach distance.
    Knn(Vec<NnMatch>),
}

impl QueryAnswer {
    /// The matches as k-MST results, if this was a k-MST query.
    pub fn as_kmst(&self) -> Option<&[MstMatch]> {
        match self {
            QueryAnswer::Kmst(m) => Some(m),
            QueryAnswer::Knn(_) => None,
        }
    }

    /// The matches as kNN results, if this was a kNN query.
    pub fn as_knn(&self) -> Option<&[NnMatch]> {
        match self {
            QueryAnswer::Knn(m) => Some(m),
            QueryAnswer::Kmst(_) => None,
        }
    }

    /// Number of matches, either flavour.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::Kmst(m) => m.len(),
            QueryAnswer::Knn(m) => m.len(),
        }
    }

    /// True when no trajectory matched.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One shard whose job died with an error instead of producing a top-k
/// list. The query's merged answer is still returned (degraded) — this
/// record says which slice of the database it is missing and why.
#[derive(Debug)]
pub struct ShardFailure {
    /// The shard whose search failed.
    pub shard: usize,
    /// The error that killed it (typically an I/O or checksum fault
    /// surfaced through [`mst_index::IndexError`]).
    pub error: mst_search::SearchError,
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {}: {}", self.shard, self.error)
    }
}

/// Everything the executor knows about one finished query.
#[derive(Debug)]
pub struct QueryOutcome {
    /// The globally merged top-k answer. When `degraded` is set this is
    /// best-so-far, not certified complete.
    pub answer: QueryAnswer,
    /// Work counters merged across the query's shard jobs (in shard
    /// order), including the jobs that failed — the candidate ledger
    /// stays balanced under the merge even for aborted searches.
    pub profile: QueryProfile,
    /// True when the answer is not certified complete, for either cause:
    /// the deadline expired (`deadline_expired`) or at least one shard
    /// job failed (`failures` is non-empty).
    pub degraded: bool,
    /// True when the deadline cut at least one shard job short.
    pub deadline_expired: bool,
    /// Shards whose jobs died with a search/index error, in shard order.
    /// Their partial contribution is absent from `answer`.
    pub failures: Vec<ShardFailure>,
    /// Wall time from the query's first shard job starting to its last
    /// finishing, in microseconds. Queue wait before the first start is
    /// excluded; deadlines, by contrast, run from batch submission.
    pub latency_us: u64,
}

impl QueryOutcome {
    /// Latency in milliseconds, for reporting.
    pub fn latency_ms(&self) -> f64 {
        self.latency_us as f64 / 1000.0
    }
}

/// The outcome of a whole batch, in submission order.
#[derive(Debug)]
pub struct BatchOutcome {
    /// One entry per submitted query, in submission order.
    pub outcomes: Vec<Result<QueryOutcome, ExecError>>,
}

impl BatchOutcome {
    /// Number of queries whose answer is not certified complete (deadline
    /// expiry or shard failure).
    pub fn degraded_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.as_ref().is_ok_and(|q| q.degraded))
            .count()
    }

    /// Number of shard jobs that failed across the whole batch.
    pub fn failed_shard_count(&self) -> usize {
        self.outcomes
            .iter()
            .flatten()
            .map(|q| q.failures.len())
            .sum()
    }

    /// Work counters merged across every successful query.
    pub fn merged_profile(&self) -> QueryProfile {
        let mut total = QueryProfile::default();
        for outcome in self.outcomes.iter().flatten() {
            total.merge(&outcome.profile);
        }
        total
    }
}

/// A reusable batch-execution configuration: worker count, queue bound,
/// and the per-query deadline.
///
/// ```no_run
/// use mst_exec::{BatchExecutor, BatchQuery, ShardedDatabase};
/// use mst_search::Query;
/// # fn demo(db: &ShardedDatabase<mst_index::Rtree3D>,
/// #         q: &mst_trajectory::Trajectory) -> Result<(), mst_exec::ExecError> {
/// let batch = vec![BatchQuery::kmst(Query::kmst(q).k(5))?];
/// let outcome = BatchExecutor::new().workers(4).run(db, batch);
/// for result in &outcome.outcomes {
///     let query = result.as_ref().expect("query failed");
///     println!("{} matches in {:.2} ms", query.answer.len(), query.latency_ms());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchExecutor {
    workers: usize,
    queue_capacity: usize,
    deadline_us: Option<u64>,
}

impl Default for BatchExecutor {
    fn default() -> Self {
        BatchExecutor::new()
    }
}

/// What one (query, shard) job hands back through its slot.
enum JobResult {
    Kmst(Vec<MstMatch>),
    Knn(Vec<NnMatch>),
    Failed(mst_search::SearchError),
}

/// A job's drop box: its answer plus the work profile it accumulated.
type ResultSlot = std::sync::Mutex<Option<(JobResult, QueryProfile)>>;

/// One unit of work: query `query` of the batch against shard `shard`.
#[derive(Clone, Copy)]
struct Job {
    query: usize,
    shard: usize,
}

impl BatchExecutor {
    /// An executor with one worker, a queue bound matching the worker
    /// count, and no deadline.
    pub fn new() -> Self {
        BatchExecutor {
            workers: 1,
            queue_capacity: 0,
            deadline_us: None,
        }
    }

    /// Sets the number of worker threads (minimum 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the job-queue bound. Defaults to `2 x workers`, enough to keep
    /// every worker fed while still applying backpressure to submission.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets a per-query deadline in microseconds, measured from batch
    /// submission. A query that exceeds it stops early and reports
    /// `degraded: true` with its best-so-far answer.
    pub fn deadline_us(mut self, deadline: u64) -> Self {
        self.deadline_us = Some(deadline);
        self
    }

    /// Removes the deadline (the default).
    pub fn no_deadline(mut self) -> Self {
        self.deadline_us = None;
        self
    }

    /// Runs a batch against a sharded database and returns per-query
    /// outcomes in submission order.
    ///
    /// Spawns the configured worker pool for the duration of the batch
    /// (scoped threads — no `'static` bounds, no leaked threads), feeds
    /// the Q x P (query, shard) jobs through the bounded queue, and merges
    /// each query's shard answers once all its jobs finish.
    pub fn run<I>(&self, db: &ShardedDatabase<I>, queries: Vec<BatchQuery>) -> BatchOutcome
    where
        I: TrajectoryIndex + Send,
    {
        let num_shards = db.num_shards();
        let num_queries = queries.len();
        if num_queries == 0 || num_shards == 0 {
            return BatchOutcome {
                outcomes: Vec::new(),
            };
        }

        let clock = Stopwatch::start();
        let controls: Vec<QueryControl> = (0..num_queries)
            .map(|_| QueryControl::new(clock, self.deadline_us))
            .collect();
        // One slot per (query, shard) job; each job is executed exactly
        // once, so slot mutexes are uncontended.
        let slots: Vec<ResultSlot> = (0..num_queries * num_shards)
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let capacity = if self.queue_capacity == 0 {
            self.workers * 2
        } else {
            self.queue_capacity
        };
        let queue: JobQueue<Job> = JobQueue::new(capacity);

        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                let queue = &queue;
                let queries = &queries;
                let controls = &controls;
                let slots = &slots;
                scope.spawn(move || {
                    while let Some(job) = queue.pop() {
                        let control = &controls[job.query];
                        let shard = &db.shards()[job.shard];
                        control.mark_start();
                        let mut profile = QueryProfile::default();
                        let result = match &queries[job.query] {
                            BatchQuery::Kmst(spec) => shard
                                .run_kmst(spec, control, &mut profile)
                                .map(|report| JobResult::Kmst(report.matches)),
                            BatchQuery::Knn(spec) => shard
                                .run_knn(spec, control, &mut profile)
                                .map(|outcome| JobResult::Knn(outcome.matches)),
                        };
                        control.mark_end();
                        let slot = &slots[job.query * num_shards + job.shard];
                        if let Ok(mut slot) = slot.lock() {
                            *slot = Some(match result {
                                Ok(r) => (r, profile),
                                Err(e) => (JobResult::Failed(e), profile),
                            });
                        }
                    }
                });
            }

            // This thread is the producer: enqueue all jobs, then close so
            // workers drain and exit before the scope joins them.
            for query in 0..num_queries {
                for shard in 0..num_shards {
                    if queue.push(Job { query, shard }).is_err() {
                        break;
                    }
                }
            }
            queue.close();
        });

        let mut outcomes = Vec::with_capacity(num_queries);
        for (q, (query, control)) in queries.iter().zip(&controls).enumerate() {
            outcomes.push(Self::collect_query(q, query, control, &slots, num_shards));
        }
        BatchOutcome { outcomes }
    }

    /// Merges the per-shard slot results of one query, in shard order.
    ///
    /// A shard job that *failed* (I/O fault, checksum mismatch, poisoned
    /// lock) does not fail the query: its error is recorded in
    /// [`QueryOutcome::failures`], its work profile still merges (keeping
    /// the candidate ledger balanced), and the surviving shards' lists
    /// merge into a `degraded` answer — the same honest-best-effort
    /// contract the deadline path already provides. Only a *lost* slot
    /// (worker died without reporting) is an [`ExecError`].
    fn collect_query(
        q: usize,
        query: &BatchQuery,
        control: &QueryControl,
        slots: &[ResultSlot],
        num_shards: usize,
    ) -> Result<QueryOutcome, ExecError> {
        let mut profile = QueryProfile::default();
        let mut kmst_lists: Vec<Vec<MstMatch>> = Vec::new();
        let mut knn_lists: Vec<Vec<NnMatch>> = Vec::new();
        let mut failures: Vec<ShardFailure> = Vec::new();
        for shard in 0..num_shards {
            let taken = slots[q * num_shards + shard]
                .lock()
                .ok()
                .and_then(|mut s| s.take());
            let Some((result, shard_profile)) = taken else {
                return Err(ExecError::Lost { query: q, shard });
            };
            profile.merge(&shard_profile);
            match result {
                JobResult::Kmst(matches) => kmst_lists.push(matches),
                JobResult::Knn(matches) => knn_lists.push(matches),
                JobResult::Failed(error) => failures.push(ShardFailure { shard, error }),
            }
        }
        let answer = match query {
            BatchQuery::Kmst(spec) => {
                QueryAnswer::Kmst(mst_search::merge_shard_matches(spec.config.k, &kmst_lists))
            }
            BatchQuery::Knn(spec) => {
                QueryAnswer::Knn(mst_search::merge_shard_nn(spec.k, &knn_lists))
            }
        };
        let deadline_expired = control.is_degraded();
        Ok(QueryOutcome {
            answer,
            profile,
            degraded: deadline_expired || !failures.is_empty(),
            deadline_expired,
            failures,
            latency_us: control.latency_us(),
        })
    }
}
