//! A persistent, admission-controlled submission handle over a long-lived
//! worker pool — the execution substrate a server sits on.
//!
//! [`BatchExecutor::run`](crate::BatchExecutor::run) is batch-shaped: it
//! spawns scoped workers, drains one batch, and joins. A server needs the
//! opposite lifecycle — workers outlive any one request — plus explicit
//! *admission control*: when queries arrive faster than the pool drains
//! them, the caller must get a typed rejection it can surface as
//! backpressure, never an unbounded queue.
//!
//! [`ExecHandle`] provides both. Submission ([`ExecHandle::try_submit`])
//! is non-blocking: it either admits the query — creating its
//! [`QueryControl`] *at admission*, so queue wait counts against the
//! deadline, matching an SLA-from-submission service model — or returns
//! [`SubmitError::Overloaded`] with the queue's occupancy. An admitted
//! query yields a [`Ticket`] whose [`Ticket::wait`] blocks for the
//! [`QueryOutcome`]. One worker runs all of a query's shards in sequence
//! and merges with the exact helpers the batch path uses, so a submitted
//! query's answer is bit-identical to the same query in a batch (and to
//! the single-threaded `Query::run`).
//!
//! Shutdown is graceful by construction: [`ExecHandle::shutdown`] closes
//! the queue (new submissions get [`SubmitError::ShuttingDown`]), already
//! admitted jobs drain, and the workers are joined. Every ticket issued
//! before shutdown resolves.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use mst_search::{KmstSubstrate, QueryProfile};

use crate::batch::{run_shard_job, QueryOutcome, ShardFailure, ShardLists};
use crate::bound::QueryControl;
use crate::clock::Stopwatch;
use crate::queue::{JobQueue, TryPushError};
use crate::shard::ShardedDatabase;
use crate::{BatchQuery, ExecError};

/// Why a submission was refused. Both cases are normal operation, not
/// bugs: `Overloaded` is backpressure doing its job, `ShuttingDown` is
/// the drain window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full. Retry later or shed the query.
    Overloaded {
        /// Jobs queued at the time of rejection.
        queued: usize,
        /// The queue's capacity bound.
        capacity: usize,
    },
    /// The handle is shutting down and admits nothing new.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { queued, capacity } => {
                write!(f, "executor overloaded: {queued}/{capacity} jobs queued")
            }
            SubmitError::ShuttingDown => write!(f, "executor is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A claim on the outcome of an admitted query.
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<QueryOutcome>,
}

impl Ticket {
    /// Blocks until the query's outcome arrives. [`ExecError::Disconnected`]
    /// means the worker vanished without reporting — the persistent-pool
    /// analogue of a lost batch slot.
    pub fn wait(self) -> Result<QueryOutcome, ExecError> {
        self.rx.recv().map_err(|_| ExecError::Disconnected)
    }

    /// Polls for the outcome without blocking: `Ok(None)` while the query
    /// is still running, `Ok(Some(..))` exactly once when it completes.
    /// After the outcome has been taken, further polls report
    /// [`ExecError::Disconnected`] — a ticket is a single-shot claim.
    pub fn try_wait(&self) -> Result<Option<QueryOutcome>, ExecError> {
        match self.rx.try_recv() {
            Ok(outcome) => Ok(Some(outcome)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Ok(None),
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Err(ExecError::Disconnected),
        }
    }
}

/// Receives the outcomes of a routed batch submission
/// ([`ExecHandle::try_submit_batch`]) as they complete. Implementations
/// must be cheap and non-blocking — the call runs on a pool worker, and a
/// sink that stalls stalls the pool.
pub trait OutcomeSink: Send + Sync + 'static {
    /// Called exactly once per admitted query, from the worker that ran
    /// it, with the caller's token for that query.
    fn complete(&self, token: u64, outcome: QueryOutcome);
}

/// Delivering outcomes through a caller-supplied channel lets every
/// completion of a serving tick land in **one** receiver instead of N
/// ticket channels, so a coalescer can block on a single wait point.
impl OutcomeSink for Sender<(u64, QueryOutcome)> {
    fn complete(&self, token: u64, outcome: QueryOutcome) {
        // invariant: a receiver that hung up means the batch's owner
        // abandoned its queries; dropping the outcome is the correct
        // response (mirrors the ticket path)
        let _ = self.send((token, outcome));
    }
}

/// How an admitted query's outcome travels back to its owner.
enum Deliver {
    /// The single-query path: a private ticket channel.
    Channel(Sender<QueryOutcome>),
    /// The routed batch path: a shared sink plus the caller's token.
    Sink {
        token: u64,
        sink: Arc<dyn OutcomeSink>,
    },
}

/// One query of a routed batch submission: a caller-chosen token (echoed
/// into [`OutcomeSink::complete`]) plus the query itself.
pub struct RoutedQuery {
    /// Opaque correlation token, chosen by the caller.
    pub token: u64,
    /// The query to run.
    pub query: BatchQuery,
}

/// One refused query of a routed batch submission, handed back whole so
/// the caller can retry it later without having kept a copy.
pub struct RejectedSubmit {
    /// The caller's correlation token for the refused query.
    pub token: u64,
    /// The query itself, returned unrun.
    pub query: BatchQuery,
    /// Why the queue refused it.
    pub reason: SubmitError,
}

/// The admission report of [`ExecHandle::try_submit_batch`]: how many
/// queries the queue took, and the per-query fate of the ones it refused.
pub struct BatchAdmission {
    /// Queries admitted (their outcomes will reach the sink).
    pub admitted: usize,
    /// Queries the queue refused — token, query, and typed reason — in
    /// the batch's original order.
    pub rejected: Vec<RejectedSubmit>,
}

/// One admitted query: the spec, its control (deadline clock already
/// running), and the path its outcome goes back on.
struct SubmitJob {
    query: BatchQuery,
    control: QueryControl,
    deliver: Deliver,
}

/// A long-lived, admission-controlled execution pool over a shared
/// [`ShardedDatabase`]. Created by
/// [`BatchExecutor::submit_handle`](crate::BatchExecutor::submit_handle).
pub struct ExecHandle<I> {
    db: Arc<ShardedDatabase<I>>,
    queue: Arc<JobQueue<SubmitJob>>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    default_deadline_us: Option<u64>,
}

impl<I> ExecHandle<I>
where
    I: KmstSubstrate + Send + 'static,
{
    /// Spawns `workers` pool threads over `db` with a `queue_capacity`
    /// admission bound. Called through
    /// [`BatchExecutor::submit_handle`](crate::BatchExecutor::submit_handle).
    pub(crate) fn start(
        db: Arc<ShardedDatabase<I>>,
        workers: usize,
        queue_capacity: usize,
        default_deadline_us: Option<u64>,
    ) -> crate::Result<Self> {
        let queue: Arc<JobQueue<SubmitJob>> = Arc::new(JobQueue::new(queue_capacity));
        let mut handles = Vec::with_capacity(workers.max(1));
        for i in 0..workers.max(1) {
            let queue = Arc::clone(&queue);
            let db = Arc::clone(&db);
            let handle = std::thread::Builder::new()
                .name(format!("mst-exec-{i}"))
                .spawn(move || {
                    while let Some(job) = queue.pop() {
                        run_submitted(&db, job);
                    }
                })
                .map_err(|_| ExecError::Config("failed to spawn an executor worker thread"))?;
            handles.push(handle);
        }
        Ok(ExecHandle {
            db,
            queue,
            workers: Mutex::new(handles),
            default_deadline_us,
        })
    }

    /// The database the pool executes against.
    pub fn database(&self) -> &ShardedDatabase<I> {
        &self.db
    }

    /// Jobs currently waiting for a worker (a point-in-time snapshot).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The admission queue's capacity bound.
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Admits a query without blocking, or rejects it with typed
    /// backpressure. The query's deadline clock starts *now* — queue wait
    /// counts against the budget. A query without its own deadline
    /// inherits the handle's default.
    pub fn try_submit(&self, query: BatchQuery) -> Result<Ticket, SubmitError> {
        let (job, rx) = self.make_job(query);
        match self.queue.try_push(job) {
            Ok(()) => Ok(Ticket { rx }),
            Err(TryPushError::Full(_)) => Err(SubmitError::Overloaded {
                queued: self.queue.len(),
                capacity: self.queue.capacity(),
            }),
            Err(TryPushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Admits a query, blocking while the queue is full (backpressure by
    /// waiting instead of rejection — for callers with nowhere to shed
    /// load to). Fails only when the handle is shutting down.
    pub fn submit(&self, query: BatchQuery) -> Result<Ticket, SubmitError> {
        let (job, rx) = self.make_job(query);
        match self.queue.push(job) {
            Ok(()) => Ok(Ticket { rx }),
            Err(_) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Admits a whole batch of queries under **one** queue-lock
    /// acquisition, routing every outcome to `sink` tagged with its
    /// query's token. Admission is prefix-shaped and in order: when the
    /// queue has room for only M of N queries, the first M are admitted
    /// and the rest come back in [`BatchAdmission::rejected`] with typed
    /// reasons. Deadline clocks start at admission, exactly as in
    /// [`ExecHandle::try_submit`].
    pub fn try_submit_batch(
        &self,
        batch: Vec<RoutedQuery>,
        sink: &Arc<dyn OutcomeSink>,
    ) -> BatchAdmission {
        let jobs: Vec<SubmitJob> = batch
            .into_iter()
            .map(|routed| {
                self.make_control_job(
                    routed.query,
                    Deliver::Sink {
                        token: routed.token,
                        sink: Arc::clone(sink),
                    },
                )
            })
            .collect();
        let push = self.queue.try_push_batch(jobs);
        let reason = if push.closed {
            SubmitError::ShuttingDown
        } else {
            SubmitError::Overloaded {
                queued: self.queue.len(),
                capacity: self.queue.capacity(),
            }
        };
        let rejected = push
            .rejected
            .into_iter()
            .map(|job| {
                let token = match job.deliver {
                    Deliver::Sink { token, .. } => token,
                    // A rejected batch job always carries a sink; a
                    // channel here would be a construction bug, reported
                    // as an impossible token rather than a panic.
                    Deliver::Channel(_) => u64::MAX,
                };
                RejectedSubmit {
                    token,
                    query: job.query,
                    reason,
                }
            })
            .collect();
        BatchAdmission {
            admitted: push.admitted,
            rejected,
        }
    }

    fn make_job(&self, query: BatchQuery) -> (SubmitJob, Receiver<QueryOutcome>) {
        let (tx, rx) = channel();
        (self.make_control_job(query, Deliver::Channel(tx)), rx)
    }

    fn make_control_job(&self, query: BatchQuery, deliver: Deliver) -> SubmitJob {
        let opts = query.options();
        let control = QueryControl::with_sharing(
            Stopwatch::start(),
            opts.deadline_us.or(self.default_deadline_us),
            opts.share_bound,
        );
        SubmitJob {
            query,
            control,
            deliver,
        }
    }

    /// Graceful shutdown: stops admitting, drains every already-admitted
    /// job, and joins the workers. Every ticket issued before the call
    /// resolves before this returns. Idempotent.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles = match self.workers.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => return,
        };
        for handle in handles {
            // invariant: a panicked worker already dropped its jobs'
            // senders (their tickets see Disconnected); re-raising the
            // payload here would tear down the caller for no benefit
            let _ = handle.join();
        }
    }
}

impl<I> Drop for ExecHandle<I> {
    fn drop(&mut self) {
        self.queue.close();
        let handles = match self.workers.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(_) => return,
        };
        for handle in handles {
            // invariant: same policy as shutdown() — a worker panic has
            // already surfaced as Disconnected tickets
            let _ = handle.join();
        }
    }
}

/// Runs one admitted query: all shards in sequence on this worker, merged
/// with the exact machinery the batch path uses.
fn run_submitted<I: KmstSubstrate>(db: &ShardedDatabase<I>, job: SubmitJob) {
    let mut profile = QueryProfile::default();
    let mut lists = ShardLists::new();
    let mut failures: Vec<ShardFailure> = Vec::new();
    for (s, shard) in db.shards().iter().enumerate() {
        job.control.mark_start();
        let mut shard_profile = QueryProfile::default();
        let result = run_shard_job(shard, &job.query, &job.control, &mut shard_profile);
        job.control.mark_end();
        profile.merge(&shard_profile);
        lists.push(s, result, &mut failures);
    }
    let answer = lists.merge(&job.query);
    let deadline_expired = job.control.is_degraded();
    let outcome = QueryOutcome {
        answer,
        profile,
        degraded: deadline_expired || !failures.is_empty(),
        deadline_expired,
        failures,
        latency_us: job.control.latency_us(),
    };
    match job.deliver {
        // invariant: a receiver that hung up means the client abandoned
        // the query; dropping the outcome is the correct response
        Deliver::Channel(tx) => {
            let _ = tx.send(outcome); // invariant: as above
        }
        Deliver::Sink { token, sink } => sink.complete(token, outcome),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BatchExecutor;
    use mst_search::Query;
    use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};

    fn lines(n: u64, len: usize) -> Vec<(TrajectoryId, Trajectory)> {
        (0..n)
            .map(|id| {
                let pts = (0..len)
                    .map(|i| SamplePoint::new(i as f64, i as f64 * 0.5, id as f64))
                    .collect();
                (TrajectoryId(id), Trajectory::new(pts).expect("valid"))
            })
            .collect()
    }

    #[test]
    fn submitted_queries_match_batch_answers() {
        let db = Arc::new(ShardedDatabase::with_rtree(2, lines(8, 20)).unwrap());
        let q = db.trajectory(TrajectoryId(3)).unwrap().clone();
        let window = q.time();
        let queries = vec![
            BatchQuery::kmst(Query::kmst(&q).k(3)).unwrap(),
            BatchQuery::knn(Query::knn(&q).k(2)).unwrap(),
            BatchQuery::knn_segments(
                Query::knn_segments(mst_trajectory::Point::new(1.0, 1.0))
                    .k(4)
                    .during(&window),
            )
            .unwrap(),
            BatchQuery::range(Query::range(&mst_trajectory::Mbb::new(
                0.0, 0.0, 0.0, 10.0, 10.0, 20.0,
            ))),
        ];
        let batch = BatchExecutor::new().workers(2).run(&db, queries.clone());

        let handle = BatchExecutor::new()
            .workers(2)
            .queue_capacity(8)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        let tickets: Vec<Ticket> = queries
            .into_iter()
            .map(|query| handle.try_submit(query).unwrap())
            .collect();
        for (ticket, expected) in tickets.into_iter().zip(&batch.outcomes) {
            let got = ticket.wait().unwrap();
            let expected = expected.as_ref().unwrap();
            assert!(!got.degraded);
            match (&got.answer, &expected.answer) {
                (crate::QueryAnswer::Kmst(a), crate::QueryAnswer::Kmst(b)) => assert_eq!(a, b),
                (crate::QueryAnswer::Knn(a), crate::QueryAnswer::Knn(b)) => assert_eq!(a, b),
                (crate::QueryAnswer::Segments(a), crate::QueryAnswer::Segments(b)) => {
                    assert_eq!(a, b)
                }
                (crate::QueryAnswer::Range(a), crate::QueryAnswer::Range(b)) => assert_eq!(a, b),
                _ => panic!("answer flavours diverged"),
            }
        }
        handle.shutdown();
    }

    #[test]
    fn overload_returns_typed_backpressure() {
        let db = Arc::new(ShardedDatabase::with_rtree(1, lines(40, 40)).unwrap());
        let q = db.trajectory(TrajectoryId(0)).unwrap().clone();
        let handle = BatchExecutor::new()
            .workers(1)
            .queue_capacity(1)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        let mut tickets = Vec::new();
        let mut overloaded = 0;
        for _ in 0..100 {
            match handle.try_submit(BatchQuery::kmst(Query::kmst(&q).k(8)).unwrap()) {
                Ok(t) => tickets.push(t),
                Err(SubmitError::Overloaded { capacity, .. }) => {
                    assert_eq!(capacity, 1);
                    overloaded += 1;
                }
                Err(SubmitError::ShuttingDown) => panic!("not shutting down"),
            }
        }
        // A 1-worker, depth-1 pool cannot absorb 100 back-to-back heavy
        // queries; admission control must have rejected some — and every
        // admitted one must still resolve.
        assert!(overloaded > 0, "expected at least one Overloaded");
        for t in tickets {
            assert!(!t.wait().unwrap().answer.is_empty());
        }
        handle.shutdown();
    }

    #[test]
    fn shutdown_drains_inflight_then_rejects() {
        let db = Arc::new(ShardedDatabase::with_rtree(2, lines(6, 15)).unwrap());
        let q = db.trajectory(TrajectoryId(1)).unwrap().clone();
        let handle = BatchExecutor::new()
            .workers(1)
            .queue_capacity(4)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        let tickets: Vec<Ticket> = (0..4)
            .filter_map(|_| {
                handle
                    .try_submit(BatchQuery::kmst(Query::kmst(&q).k(2)).unwrap())
                    .ok()
            })
            .collect();
        assert!(!tickets.is_empty());
        handle.shutdown();
        // Every pre-shutdown ticket resolves; nothing new is admitted.
        for t in tickets {
            assert!(t.wait().is_ok());
        }
        match handle.try_submit(BatchQuery::kmst(Query::kmst(&q).k(2)).unwrap()) {
            Err(SubmitError::ShuttingDown) => {}
            other => panic!("expected ShuttingDown, got {:?}", other.map(|_| "ticket")),
        }
    }

    #[test]
    fn try_wait_polls_then_claims_exactly_once() {
        let db = Arc::new(ShardedDatabase::with_rtree(1, lines(6, 12)).unwrap());
        let q = db.trajectory(TrajectoryId(2)).unwrap().clone();
        let handle = BatchExecutor::new()
            .workers(1)
            .queue_capacity(2)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        let ticket = handle
            .try_submit(BatchQuery::kmst(Query::kmst(&q).k(2)).unwrap())
            .unwrap();
        let outcome = loop {
            match ticket.try_wait().unwrap() {
                Some(outcome) => break outcome,
                None => std::thread::yield_now(),
            }
        };
        assert!(!outcome.answer.is_empty());
        // The claim is single-shot: the channel is now consumed+closed.
        assert!(ticket.try_wait().is_err());
        handle.shutdown();
    }

    #[test]
    fn routed_batch_fans_outcomes_into_one_sink() {
        let db = Arc::new(ShardedDatabase::with_rtree(2, lines(8, 16)).unwrap());
        let q = db.trajectory(TrajectoryId(1)).unwrap().clone();
        let handle = BatchExecutor::new()
            .workers(2)
            .queue_capacity(8)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        let (tx, rx) = channel::<(u64, QueryOutcome)>();
        let sink: Arc<dyn OutcomeSink> = Arc::new(tx);
        let batch: Vec<RoutedQuery> = (0..4u64)
            .map(|token| RoutedQuery {
                token: token * 10,
                query: BatchQuery::kmst(Query::kmst(&q).k(2)).unwrap(),
            })
            .collect();
        let admission = handle.try_submit_batch(batch, &sink);
        assert_eq!(admission.admitted, 4);
        assert!(admission.rejected.is_empty());
        let mut tokens: Vec<u64> = (0..4)
            .map(|_| {
                let (token, outcome) = rx.recv().unwrap();
                assert!(!outcome.answer.is_empty());
                assert!(!outcome.degraded);
                token
            })
            .collect();
        tokens.sort_unstable();
        assert_eq!(tokens, vec![0, 10, 20, 30]);
        handle.shutdown();
    }

    #[test]
    fn batch_overflow_rejects_the_tail_in_order_with_typed_reasons() {
        let db = Arc::new(ShardedDatabase::with_rtree(1, lines(10, 20)).unwrap());
        let q = db.trajectory(TrajectoryId(0)).unwrap().clone();
        let handle = BatchExecutor::new()
            .workers(1)
            .queue_capacity(2)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        let (tx, rx) = channel::<(u64, QueryOutcome)>();
        let sink: Arc<dyn OutcomeSink> = Arc::new(tx);
        let batch: Vec<RoutedQuery> = (0..5u64)
            .map(|token| RoutedQuery {
                token,
                query: BatchQuery::kmst(Query::kmst(&q).k(3)).unwrap(),
            })
            .collect();
        // The push holds the queue lock for the whole batch, so exactly
        // `capacity` jobs fit and the tail comes back in order.
        let admission = handle.try_submit_batch(batch, &sink);
        assert_eq!(admission.admitted, 2);
        let tokens: Vec<u64> = admission.rejected.iter().map(|r| r.token).collect();
        assert_eq!(tokens, vec![2, 3, 4]);
        for r in &admission.rejected {
            assert!(matches!(
                r.reason,
                SubmitError::Overloaded { capacity: 2, .. }
            ));
        }
        // Both admitted queries resolve through the sink.
        let mut done: Vec<u64> = (0..2).map(|_| rx.recv().unwrap().0).collect();
        done.sort_unstable();
        assert_eq!(done, vec![0, 1]);
        handle.shutdown();
        // After shutdown the whole batch is refused as ShuttingDown.
        let admission = handle.try_submit_batch(
            vec![RoutedQuery {
                token: 9,
                query: BatchQuery::kmst(Query::kmst(&q).k(1)).unwrap(),
            }],
            &sink,
        );
        assert_eq!(admission.admitted, 0);
        assert_eq!(admission.rejected[0].token, 9);
        assert_eq!(admission.rejected[0].reason, SubmitError::ShuttingDown);
    }

    #[test]
    fn per_query_deadline_degrades_not_errors() {
        let db = Arc::new(ShardedDatabase::with_rtree(2, lines(10, 30)).unwrap());
        let q = db.trajectory(TrajectoryId(0)).unwrap().clone();
        let handle = BatchExecutor::new()
            .workers(1)
            .queue_capacity(2)
            .submit_handle(Arc::clone(&db))
            .unwrap();
        // A zero budget is expired before the first shard runs.
        let spec = Query::kmst(&q)
            .k(3)
            .deadline(core::time::Duration::ZERO)
            .spec()
            .unwrap();
        let outcome = handle
            .try_submit(BatchQuery::Kmst(spec))
            .unwrap()
            .wait()
            .unwrap();
        assert!(outcome.degraded);
        assert!(outcome.deadline_expired);
        handle.shutdown();
    }
}
