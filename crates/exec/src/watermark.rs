//! A monotone LSN watermark: the read-your-writes gate.
//!
//! A server publishes "every write at or below LSN `n` is visible to
//! queries" by advancing a [`Watermark`]; a client that just received
//! `Ingested { lsn }` threads that LSN into its next read, and the
//! serving layer admits the read only once the watermark has caught up.
//! On a primary the watermark advances when a flushed write batch
//! becomes visible; on a replica it advances as replicated batches
//! apply — the same gate gives read-your-writes on both.
//!
//! The watermark is strictly monotone: [`Watermark::advance`] is a
//! `fetch_max`, so a late or racing publish can never move it
//! backwards, and a reader that once observed `n` will never observe
//! less.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically advancing LSN, shareable across threads.
#[derive(Debug, Default)]
pub struct Watermark {
    lsn: AtomicU64,
}

impl Watermark {
    /// A watermark at LSN 0 (nothing visible yet).
    pub fn new() -> Self {
        Watermark::default()
    }

    /// A watermark already at `lsn` (a server starting over recovered
    /// state publishes the recovered LSN before accepting connections).
    pub fn at(lsn: u64) -> Self {
        Watermark {
            lsn: AtomicU64::new(lsn),
        }
    }

    /// Advances the watermark to at least `lsn`. Monotone: a value below
    /// the current watermark leaves it untouched. Returns the watermark
    /// after the call.
    pub fn advance(&self, lsn: u64) -> u64 {
        // Release pairs with the Acquire in `current`: a reader that
        // observes the advanced watermark also observes every store
        // mutation the publisher made before advancing it.
        self.lsn.fetch_max(lsn, Ordering::Release).max(lsn)
    }

    /// The current watermark.
    pub fn current(&self) -> u64 {
        // Acquire pairs with the Release in `advance` (see there).
        self.lsn.load(Ordering::Acquire)
    }

    /// Whether reads requiring `min_lsn` may be admitted.
    pub fn reached(&self, min_lsn: u64) -> bool {
        self.current() >= min_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn advance_is_monotone() {
        let w = Watermark::new();
        assert_eq!(w.current(), 0);
        assert_eq!(w.advance(5), 5);
        assert_eq!(w.advance(3), 5, "stale publish cannot regress");
        assert_eq!(w.current(), 5);
        assert!(w.reached(5));
        assert!(!w.reached(6));
        assert_eq!(Watermark::at(9).current(), 9);
    }

    #[test]
    fn racing_publishers_settle_at_the_maximum() {
        let w = Arc::new(Watermark::new());
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let w = Arc::clone(&w);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        w.advance(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("publisher");
        }
        assert_eq!(w.current(), 3999);
    }
}
