//! Horizontal partitioning of a trajectory database into independently
//! indexed shards.
//!
//! # Shard routing
//!
//! Trajectories are assigned by identity hash: object `id` lives on shard
//! `id % P`. Routing is pure and stateless — any thread can compute it —
//! and because the DISSIM candidate set of a query is a set of *whole
//! trajectories*, partitioning by object keeps every candidate's segments
//! on one shard. A k-MST/kNN query therefore decomposes into P
//! independent shard searches whose per-shard top-k lists merge losslessly
//! into the global answer ([`mst_search::merge_shard_matches`]).
//!
//! Each shard owns a complete vertical slice: its own index (3D R-tree,
//! TB-tree, or metric tree) with its own private LRU buffer pool, and its own
//! [`TrajectoryStore`] snapshot. Shards share nothing mutable, so P shards
//! scale page caching and index traversal independently; within a shard,
//! concurrent jobs serialize on node fetches through
//! [`mst_index::ConcurrentIndex`].
//!
//! Per-shard `Vmax`: each shard's index reports the maximum speed of *its*
//! objects, which is at most the global `Vmax`. MINDIST expansion and
//! OPTDISSIM use the shard-local value — a tighter, still sound bound
//! (the paper's Lemma 2 argument needs only "no object in this index moves
//! faster than `Vmax`", a per-shard fact).
//!
//! # Online ingest
//!
//! Shards accept live mutations ([`ShardedDatabase::apply_op`]) without a
//! global write lock. Each shard's trajectory store sits behind its own
//! `RwLock`: query jobs hold the *read* half for their whole run, a
//! writer takes the *write* half of **one** shard, applies the
//! operation's segments to that shard's index, and publishes a new index
//! snapshot generation ([`mst_index::ConcurrentIndex::apply`]) before
//! releasing. Visibility is therefore whole-shard atomic: a query job
//! either started before the commit (and computed its answer on the
//! pre-ingest generation — root, `Vmax` and candidate set all from the
//! old snapshot) or starts after it and sees the complete operation.
//! Queries on the *other* shards are never blocked. Lock order is
//! store → index everywhere (readers: store read lock, then per-fetch
//! index locks; writers: store write lock, then the index lock inside
//! `apply`).

use std::sync::{PoisonError, RwLock, RwLockReadGuard};

use mst_index::{
    knn_segments_traced, ConcurrentIndex, IndexError, KnnMatch, LeafEntry, MetricTree, Rtree3D,
    TbTree, TrajectoryIndex, TrajectoryIndexWrite,
};
use mst_search::{
    nearest_trajectories, BoundShare, KmstSpec, KmstSubstrate, KnnSpec, NnOutcome, QueryMetrics,
    QueryOptions, RangeSpec, SearchError, SearchReport, SegmentsSpec, Substrate, TrajectoryStore,
};
use mst_trajectory::{Trajectory, TrajectoryId};

use crate::{ExecError, Result};

/// One shard: a private index plus the trajectory store of the objects
/// routed to it. The store's `RwLock` doubles as the shard's ingest
/// visibility gate — see the module docs.
pub struct Shard<I> {
    index: ConcurrentIndex<I>,
    store: RwLock<TrajectoryStore>,
}

impl<I: TrajectoryIndex> Shard<I> {
    /// Read access to the shard's trajectory store. The returned guard
    /// blocks ingest on this shard while held — query paths hold it for
    /// the whole job, giving whole-shard-atomic ingest visibility.
    ///
    /// A poisoned lock is recovered rather than propagated: the store's
    /// mutations are slot-local (no multi-step invariants a mid-panic
    /// writer can tear), and the paired *index* mutex poisons too, so a
    /// genuinely torn shard still fails queries with a typed
    /// `Poisoned` error from the node-fetch path.
    pub fn store(&self) -> RwLockReadGuard<'_, TrajectoryStore> {
        self.store.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// The shard's index, wrapped for concurrent read access.
    pub fn index(&self) -> &ConcurrentIndex<I> {
        &self.index
    }

    /// Runs one point-kNN (nearest segments) query against this shard.
    /// Point-kNN has no cross-shard pruning threshold to share, so there
    /// is no `BoundShare` parameter; the merge keeps the global k best.
    pub fn run_knn_segments<M: QueryMetrics>(
        &self,
        spec: &SegmentsSpec,
        metrics: &mut M,
    ) -> mst_search::Result<Vec<KnnMatch>> {
        let _store = self.store();
        let mut reader = self.index.reader();
        Ok(knn_segments_traced(
            &mut reader,
            spec.location,
            &spec.window,
            spec.options.k,
            metrics,
        )?)
    }

    /// Runs one 3D range query against this shard.
    pub fn run_range<M: QueryMetrics>(
        &self,
        spec: &RangeSpec,
        metrics: &mut M,
    ) -> mst_search::Result<Vec<LeafEntry>> {
        let _store = self.store();
        let mut reader = self.index.reader();
        Ok(reader.range_query_traced(&spec.window, metrics)?)
    }
}

impl<I: KmstSubstrate> Shard<I> {
    /// Runs one k-MST query against this shard, folding `share` into the
    /// pruning threshold (and publishing local kth improvements back).
    /// The substrate's own search runs — BFMST descent on MBB substrates,
    /// the ball search on the metric tree (under the whole-query shard
    /// lock, see [`mst_search::KmstSubstrate::EXCLUSIVE_SEARCH`]).
    pub fn run_kmst<B: BoundShare, M: QueryMetrics>(
        &self,
        spec: &KmstSpec,
        share: &B,
        metrics: &mut M,
    ) -> mst_search::Result<SearchReport> {
        check_substrate::<I>(&spec.options)?;
        // Lock order: store read lock first, index (inside the reader's
        // node fetches) second — same order as the ingest writer.
        let store = self.store();
        let mut reader = self.index.reader();
        let period = spec.period();
        reader.kmst_search(&store, &spec.query, &period, &spec.config, share, metrics)
    }

    /// Runs one trajectory-kNN query against this shard.
    pub fn run_knn<B: BoundShare, M: QueryMetrics>(
        &self,
        spec: &KnnSpec,
        share: &B,
        metrics: &mut M,
    ) -> mst_search::Result<NnOutcome> {
        check_substrate::<I>(&spec.options)?;
        let _store = self.store();
        let mut reader = self.index.reader();
        let period = spec.period();
        nearest_trajectories(&mut reader, &spec.query, &period, spec.k(), share, metrics)
    }
}

/// Validates a query's pinned [`Substrate`] against the shard's actual
/// substrate. `Auto` always passes; any explicit pin must match.
fn check_substrate<I: KmstSubstrate>(options: &QueryOptions) -> mst_search::Result<()> {
    let requested = options.substrate;
    if requested != Substrate::Auto && requested != I::KIND {
        return Err(SearchError::SubstrateMismatch {
            requested,
            actual: I::KIND,
        });
    }
    Ok(())
}

/// A trajectory database partitioned across P shards, each with its own
/// index and buffer pool, shareable across threads by reference.
///
/// ```
/// use mst_exec::ShardedDatabase;
/// use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};
///
/// let trajs: Vec<_> = (0..4u64)
///     .map(|id| {
///         let pts = (0..10).map(|i| SamplePoint::new(f64::from(i), id as f64, 0.0));
///         (TrajectoryId(id), Trajectory::new(pts.collect()).unwrap())
///     })
///     .collect();
/// let db = ShardedDatabase::with_rtree(2, trajs)?;
/// assert_eq!(db.num_shards(), 2);
/// assert_eq!(db.num_objects(), 4);
/// assert_eq!(db.shard_of(TrajectoryId(3)), 1);
/// # Ok::<(), mst_exec::ExecError>(())
/// ```
pub struct ShardedDatabase<I> {
    shards: Vec<Shard<I>>,
}

impl ShardedDatabase<Rtree3D> {
    /// Partitions `trajectories` across `num_shards` 3D R-trees.
    pub fn with_rtree(
        num_shards: usize,
        trajectories: impl IntoIterator<Item = (TrajectoryId, Trajectory)>,
    ) -> Result<Self> {
        ShardedDatabase::build(num_shards, Rtree3D::new, trajectories)
    }
}

impl ShardedDatabase<TbTree> {
    /// Partitions `trajectories` across `num_shards` TB-trees.
    pub fn with_tbtree(
        num_shards: usize,
        trajectories: impl IntoIterator<Item = (TrajectoryId, Trajectory)>,
    ) -> Result<Self> {
        ShardedDatabase::build(num_shards, TbTree::new, trajectories)
    }
}

impl ShardedDatabase<MetricTree> {
    /// Partitions `trajectories` across `num_shards` metric trees. k-MST
    /// queries then run the ball search with triangle-inequality pruning
    /// on each shard; kNN, range, and point-kNN queries use the metric
    /// tree's MBB page directory like any other substrate.
    pub fn with_metric(
        num_shards: usize,
        trajectories: impl IntoIterator<Item = (TrajectoryId, Trajectory)>,
    ) -> Result<Self> {
        ShardedDatabase::build(num_shards, MetricTree::new, trajectories)
    }
}

impl<I: TrajectoryIndexWrite> ShardedDatabase<I> {
    /// Partitions `trajectories` across `num_shards` indexes created by
    /// `make_index`. Segments are inserted in global temporal order (by
    /// segment start time, then object, then sequence), mimicking the
    /// arrival order of a live position feed — the regime the TB-tree's
    /// page-chaining is designed for — and making shard construction
    /// deterministic for any input order.
    pub fn build(
        num_shards: usize,
        make_index: impl Fn() -> I,
        trajectories: impl IntoIterator<Item = (TrajectoryId, Trajectory)>,
    ) -> Result<Self> {
        if num_shards == 0 {
            return Err(ExecError::Config(
                "a sharded database needs at least one shard",
            ));
        }
        let mut stores: Vec<TrajectoryStore> =
            (0..num_shards).map(|_| TrajectoryStore::new()).collect();
        let mut entries: Vec<Vec<LeafEntry>> = (0..num_shards).map(|_| Vec::new()).collect();
        for (id, traj) in trajectories {
            let shard = shard_index(id, num_shards);
            for (seq, pair) in traj.points().windows(2).enumerate() {
                let segment = mst_trajectory::Segment::new(pair[0], pair[1])
                    .map_err(mst_search::SearchError::Trajectory)?;
                entries[shard].push(LeafEntry {
                    traj: id,
                    seq: seq as u32,
                    segment,
                });
            }
            stores[shard].insert(id, traj);
        }
        let mut shards = Vec::with_capacity(num_shards);
        for (store, mut shard_entries) in stores.into_iter().zip(entries) {
            shard_entries.sort_by(|a, b| {
                a.segment
                    .time()
                    .start()
                    .total_cmp(&b.segment.time().start())
                    .then(a.traj.0.cmp(&b.traj.0))
                    .then(a.seq.cmp(&b.seq))
            });
            let mut index = make_index();
            for entry in shard_entries {
                index
                    .insert_entry(entry)
                    .map_err(mst_search::SearchError::Index)?;
            }
            shards.push(Shard {
                index: ConcurrentIndex::new(index),
                store: RwLock::new(store),
            });
        }
        Ok(ShardedDatabase { shards })
    }

    /// Applies one online ingest operation to its home shard, under that
    /// shard's write lock (other shards keep answering untouched). On
    /// success returns the shard's new index snapshot generation — the
    /// signal a serving layer uses to invalidate answer caches.
    ///
    /// Failure mid-apply can leave the shard's index holding part of the
    /// operation while the store does not (the index mutex is poisoned
    /// only on panic, not on error). Durable deployments recover such
    /// states by log replay; in-memory callers should treat the shard as
    /// degraded.
    pub fn apply_op(&self, op: &IngestOp) -> Result<IngestOutcome> {
        match op {
            IngestOp::Insert { id, trajectory } => self.ingest_insert(*id, trajectory),
            IngestOp::Delete { id } => self.ingest_delete(*id),
        }
    }

    /// Inserts a *new* trajectory: every segment goes into the home
    /// shard's index, then the store. Inserting an id that already exists
    /// is a config error (delete it first) — silent replacement would
    /// leave the old segments in substrates that cannot delete.
    fn ingest_insert(&self, id: TrajectoryId, trajectory: &Trajectory) -> Result<IngestOutcome> {
        if trajectory.num_segments() == 0 {
            return Err(ExecError::Config("ingest of a segment-less trajectory"));
        }
        let shard = &self.shards[shard_index(id, self.shards.len())];
        let mut store = write_store(shard)?;
        if store.get(id).is_some() {
            return Err(ExecError::Config(
                "ingest insert of an id that already exists; delete it first",
            ));
        }
        let ((), generation) = shard
            .index
            .apply(|index| {
                for (seq, segment) in trajectory.segments().enumerate() {
                    index.insert_entry(LeafEntry {
                        traj: id,
                        seq: seq as u32,
                        segment,
                    })?;
                }
                Ok(())
            })
            .map_err(mst_search::SearchError::Index)?;
        store.insert(id, trajectory.clone());
        Ok(IngestOutcome {
            applied: true,
            generation,
        })
    }

    /// Deletes a trajectory and all its segment entries from its home
    /// shard. Unknown ids report `applied: false` without touching
    /// anything; substrates without point deletes (TB-tree, STR-tree)
    /// surface the index's typed error.
    fn ingest_delete(&self, id: TrajectoryId) -> Result<IngestOutcome> {
        let shard = &self.shards[shard_index(id, self.shards.len())];
        let mut store = write_store(shard)?;
        let Some(existing) = store.get(id) else {
            return Ok(IngestOutcome {
                applied: false,
                generation: shard.index.generation(),
            });
        };
        let num_segments = existing.num_segments();
        let ((), generation) = shard
            .index
            .apply(|index| {
                for seq in 0..num_segments {
                    index.delete_entry(id, seq as u32)?;
                }
                Ok(())
            })
            .map_err(mst_search::SearchError::Index)?;
        store.remove(id);
        Ok(IngestOutcome {
            applied: true,
            generation,
        })
    }
}

/// One online mutation, routed to the owning shard by
/// [`ShardedDatabase::apply_op`]. This is also the logical unit the
/// write-ahead log records.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOp {
    /// Insert a new trajectory under `id`.
    Insert {
        /// The object's identity (must not already exist).
        id: TrajectoryId,
        /// The full trajectory; each segment becomes one index entry.
        trajectory: Trajectory,
    },
    /// Delete the trajectory stored under `id` (all its segments).
    Delete {
        /// The object to remove.
        id: TrajectoryId,
    },
}

impl IngestOp {
    /// The object the operation addresses (= its shard routing key).
    pub fn id(&self) -> TrajectoryId {
        match self {
            IngestOp::Insert { id, .. } | IngestOp::Delete { id } => *id,
        }
    }
}

/// What an applied ingest operation did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestOutcome {
    /// False only for a delete of an unknown id (a no-op).
    pub applied: bool,
    /// The home shard's index snapshot generation after the operation.
    pub generation: u64,
}

/// The write half of a shard's store lock, with poisoning mapped into the
/// exec error space (xtask R7: never unwrap a lock).
fn write_store<I>(shard: &Shard<I>) -> Result<std::sync::RwLockWriteGuard<'_, TrajectoryStore>> {
    shard.store.write().map_err(|_| {
        ExecError::Search(mst_search::SearchError::Index(IndexError::Poisoned(
            "shard store".to_string(),
        )))
    })
}

impl<I: TrajectoryIndex> ShardedDatabase<I> {
    /// Reassembles a database from per-shard `(index, store)` parts in
    /// routing order — the durable store's recovery path, where each
    /// shard's index is loaded from a persisted image rather than
    /// rebuilt. The caller is responsible for the parts actually being
    /// consistent (store contents routed by `id % P`, index entries
    /// matching the stores); [`mst_index::check_invariants`] plus the
    /// recovery suite's answer comparisons are the safety net.
    pub fn from_shard_parts(parts: Vec<(I, TrajectoryStore)>) -> Result<Self> {
        if parts.is_empty() {
            return Err(ExecError::Config(
                "a sharded database needs at least one shard",
            ));
        }
        Ok(ShardedDatabase {
            shards: parts
                .into_iter()
                .map(|(index, store)| Shard {
                    index: ConcurrentIndex::new(index),
                    store: RwLock::new(store),
                })
                .collect(),
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of stored trajectories across shards. With live
    /// ingest running this is a momentary figure (each shard is read at
    /// its own instant).
    pub fn num_objects(&self) -> usize {
        self.shards.iter().map(|s| s.store().len()).sum()
    }

    /// The shard an object is routed to.
    pub fn shard_of(&self, id: TrajectoryId) -> usize {
        shard_index(id, self.shards.len())
    }

    /// The substrate every shard of this database runs on — what query
    /// options that pin a [`Substrate`] are validated against.
    pub fn substrate(&self) -> Substrate
    where
        I: KmstSubstrate,
    {
        I::KIND
    }

    /// The shards, in routing order.
    pub fn shards(&self) -> &[Shard<I>] {
        &self.shards
    }

    /// A stored trajectory, cloned out of its home shard (the shard's
    /// read lock is held only for the copy, never across caller code).
    pub fn trajectory(&self, id: TrajectoryId) -> Option<Trajectory> {
        self.shards.get(self.shard_of(id))?.store().get(id).cloned()
    }

    /// Sets every shard's buffer-pool capacity (`None` restores the
    /// paper's sizing rule). Maintenance only — call between batches.
    pub fn set_buffer_capacity(&self, capacity: Option<usize>) -> Result<()> {
        for shard in &self.shards {
            shard
                .index
                .with(|index| index.set_buffer_capacity(capacity))
                .map_err(mst_search::SearchError::Index)?
                .map_err(mst_search::SearchError::Index)?;
        }
        Ok(())
    }

    /// Arms (or with `None`, disarms) deterministic fault injection on one
    /// shard's page store. Maintenance only — call between batches; the
    /// fault schedule then replays deterministically over that shard's
    /// physical page I/O. Out-of-range `shard` is a config error.
    pub fn set_fault_injection(
        &self,
        shard: usize,
        config: Option<mst_index::FaultConfig>,
    ) -> Result<()> {
        let shard = self
            .shards
            .get(shard)
            .ok_or(ExecError::Config("fault injection shard out of range"))?;
        shard
            .index
            .with(|index| index.set_fault_injection(config))
            .map_err(mst_search::SearchError::Index)?
            .map_err(mst_search::SearchError::Index)?;
        Ok(())
    }

    /// The fault-injection counters of one shard's page store, if that
    /// shard has an injector armed (and its lock is healthy).
    pub fn fault_stats(&self, shard: usize) -> Option<mst_index::FaultStats> {
        self.shards
            .get(shard)?
            .index
            .with(|index| index.fault_stats())
            .ok()
            .flatten()
    }
}

/// Pure routing function: object `id` lives on shard `id % P`.
fn shard_index(id: TrajectoryId, num_shards: usize) -> usize {
    (id.0 % num_shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_trajectory::SamplePoint;

    fn traj(id: u64, y: f64, n: usize) -> (TrajectoryId, Trajectory) {
        let pts = (0..n)
            .map(|i| SamplePoint::new(i as f64, i as f64 * 0.5, y))
            .collect();
        (TrajectoryId(id), Trajectory::new(pts).expect("valid"))
    }

    #[test]
    fn routing_partitions_every_object_exactly_once() {
        let db =
            ShardedDatabase::with_rtree(3, (0..10u64).map(|id| traj(id, id as f64, 8))).unwrap();
        assert_eq!(db.num_shards(), 3);
        assert_eq!(db.num_objects(), 10);
        for id in 0..10u64 {
            let id = TrajectoryId(id);
            let home = db.shard_of(id);
            for (s, shard) in db.shards().iter().enumerate() {
                assert_eq!(shard.store().get(id).is_some(), s == home);
            }
            assert!(db.trajectory(id).is_some());
        }
    }

    #[test]
    fn shard_indexes_hold_only_their_objects_segments() {
        let db =
            ShardedDatabase::with_rtree(2, (0..6u64).map(|id| traj(id, id as f64, 5))).unwrap();
        // 6 objects x 4 segments, split 3/3 by parity.
        for shard in db.shards() {
            assert_eq!(shard.index().reader().num_entries(), 3 * 4);
        }
    }

    #[test]
    fn zero_shards_is_a_config_error() {
        let r = ShardedDatabase::with_rtree(0, std::iter::empty());
        assert!(matches!(r, Err(ExecError::Config(_))));
    }

    #[test]
    fn tbtree_shards_build_leaf_chains() {
        let db =
            ShardedDatabase::with_tbtree(2, (0..4u64).map(|id| traj(id, id as f64, 6))).unwrap();
        for shard in db.shards() {
            assert_eq!(shard.index().chain_tip_count(), 2);
        }
    }

    #[test]
    fn ingest_insert_lands_on_the_home_shard_and_bumps_its_generation() {
        let db =
            ShardedDatabase::with_rtree(2, (0..4u64).map(|id| traj(id, id as f64, 5))).unwrap();
        let before: Vec<u64> = db.shards().iter().map(|s| s.index().generation()).collect();
        let (id, t) = traj(10, 99.0, 6);
        let outcome = db
            .apply_op(&IngestOp::Insert { id, trajectory: t })
            .unwrap();
        assert!(outcome.applied);
        assert_eq!(db.num_objects(), 5);
        let home = db.shard_of(id);
        for (s, shard) in db.shards().iter().enumerate() {
            if s == home {
                assert_eq!(shard.index().generation(), before[s] + 1);
                assert_eq!(shard.index().reader().num_entries(), 2 * 4 + 5);
            } else {
                assert_eq!(
                    shard.index().generation(),
                    before[s],
                    "other shards untouched"
                );
            }
        }
        assert!(db.trajectory(id).is_some());
        // Double insert is refused, not silently replaced.
        let (_, again) = traj(10, 1.0, 3);
        let err = db
            .apply_op(&IngestOp::Insert {
                id,
                trajectory: again,
            })
            .expect_err("duplicate id");
        assert!(matches!(err, ExecError::Config(_)));
    }

    #[test]
    fn ingest_delete_removes_store_and_index_entries() {
        let db =
            ShardedDatabase::with_rtree(2, (0..4u64).map(|id| traj(id, id as f64, 5))).unwrap();
        let id = TrajectoryId(2);
        let home = db.shard_of(id);
        let outcome = db.apply_op(&IngestOp::Delete { id }).unwrap();
        assert!(outcome.applied);
        assert!(db.trajectory(id).is_none());
        assert_eq!(db.num_objects(), 3);
        assert_eq!(db.shards()[home].index().reader().num_entries(), 4);
        // Deleting an unknown id is a no-op, not an error.
        let outcome = db.apply_op(&IngestOp::Delete { id }).unwrap();
        assert!(!outcome.applied);
    }

    #[test]
    fn ingest_delete_on_a_tbtree_is_a_typed_refusal() {
        let db =
            ShardedDatabase::with_tbtree(1, (0..2u64).map(|id| traj(id, id as f64, 4))).unwrap();
        let err = db
            .apply_op(&IngestOp::Delete {
                id: TrajectoryId(0),
            })
            .expect_err("tbtree has no point deletes");
        assert!(matches!(err, ExecError::Search(_)));
        // The refusal left the store untouched.
        assert_eq!(db.num_objects(), 2);
    }

    #[test]
    fn queries_started_before_an_ingest_commit_answer_on_the_old_generation() {
        let db =
            ShardedDatabase::with_rtree(1, (0..3u64).map(|id| traj(id, id as f64, 5))).unwrap();
        let shard = &db.shards()[0];
        // Pin a reader (as a query job does) before the ingest commits.
        let reader = shard.index().reader();
        let entries_before = reader.num_entries();
        let (id, t) = traj(7, 50.0, 5);
        db.apply_op(&IngestOp::Insert { id, trajectory: t })
            .unwrap();
        assert_eq!(reader.num_entries(), entries_before, "pinned generation");
        assert_eq!(shard.index().reader().num_entries(), entries_before + 4);
    }

    #[test]
    fn single_shard_holds_everything() {
        let db =
            ShardedDatabase::with_rtree(1, (0..5u64).map(|id| traj(id, id as f64, 4))).unwrap();
        assert_eq!(db.num_shards(), 1);
        assert_eq!(db.shards()[0].store().len(), 5);
        assert_eq!(db.shards()[0].index().reader().num_entries(), 5 * 3);
    }
}
