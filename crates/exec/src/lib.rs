//! Sharded, multi-threaded batch query execution for the MST
//! reproduction.
//!
//! The paper evaluates one query at a time against one index. A service
//! built on its algorithms faces a different shape of load: batches of
//! k-MST / trajectory-kNN queries against a dataset too hot for a single
//! index and buffer pool. This crate adds that execution layer without
//! touching the algorithms:
//!
//! * [`ShardedDatabase`] partitions trajectories by object across P
//!   shards, each with its own index (3D R-tree or TB-tree) and private
//!   LRU buffer pool ([`mst_index::ConcurrentIndex`] makes each shard
//!   thread-shareable).
//! * [`BatchExecutor`] runs a fixed `std::thread` worker pool over a
//!   bounded MPMC [`JobQueue`], decomposing each query into per-shard
//!   jobs and merging the per-shard top-k lists into the global answer
//!   ([`mst_search::merge_shard_matches`]); results come back in
//!   submission order.
//! * Jobs of one query cooperate across shards through a
//!   [`SharedBound`]: a lock-free, monotonically tightening upper bound
//!   on the query's global kth dissimilarity, folded into every shard's
//!   pruning threshold ([`mst_search::BoundShare`]), so a good match
//!   found on one shard prunes candidates on all the others.
//! * Per-query deadlines degrade gracefully: an expired query stops
//!   early and reports `degraded: true` with its best-so-far answer and
//!   a consistent work profile.
//! * Shard failures degrade the same way: a shard whose search dies with
//!   an index error (I/O fault, checksum mismatch, quarantined page) is
//!   reported in the query's [`ShardFailure`] list, its work profile
//!   still merges, and the surviving shards' top-k lists come back
//!   flagged `degraded` instead of failing the whole query.
//!
//! Everything is std-only, in keeping with the workspace's
//! zero-dependency rule.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod bound;
pub mod clock;
pub mod queue;
pub mod shard;
pub mod submit;
pub mod watermark;

pub use batch::{BatchExecutor, BatchOutcome, QueryAnswer, QueryOutcome, ShardFailure};
pub use bound::{QueryControl, SharedBound};
pub use clock::Stopwatch;
pub use queue::{BatchPush, JobQueue, TryPushError};
pub use shard::{IngestOp, IngestOutcome, Shard, ShardedDatabase};
pub use submit::{
    BatchAdmission, ExecHandle, OutcomeSink, RejectedSubmit, RoutedQuery, SubmitError, Ticket,
};
pub use watermark::Watermark;

use mst_search::{
    KmstQuery, KmstSpec, KnnQuery, KnnSegmentsQuery, KnnSpec, QueryOptions, RangeQuery, RangeSpec,
    SearchError, SegmentsSpec,
};

/// A query of a batch: an owned, validated spec produced by the same
/// [`Query`](mst_search::Query) builder the single-threaded API uses.
///
/// ```
/// use mst_exec::BatchQuery;
/// use mst_search::Query;
/// use mst_trajectory::{SamplePoint, Trajectory};
///
/// let q = Trajectory::new(vec![
///     SamplePoint::new(0.0, 0.0, 0.0),
///     SamplePoint::new(10.0, 5.0, 5.0),
/// ])
/// .unwrap();
/// let batch = vec![
///     BatchQuery::kmst(Query::kmst(&q).k(3))?,
///     BatchQuery::knn(Query::knn(&q).k(2))?,
/// ];
/// assert_eq!(batch.len(), 2);
/// # Ok::<(), mst_exec::ExecError>(())
/// ```
#[derive(Debug, Clone)]
pub enum BatchQuery {
    /// A k-MST / range-MST query.
    Kmst(KmstSpec),
    /// A trajectory-kNN query.
    Knn(KnnSpec),
    /// A point-kNN (nearest segments) query.
    Segments(SegmentsSpec),
    /// A 3D range query.
    Range(RangeSpec),
}

impl BatchQuery {
    /// Freezes a k-MST builder into a batch query (validates that the
    /// query trajectory covers the query period).
    pub fn kmst(builder: KmstQuery<'_>) -> Result<Self> {
        Ok(BatchQuery::Kmst(builder.spec()?))
    }

    /// Freezes a kNN builder into a batch query.
    pub fn knn(builder: KnnQuery<'_>) -> Result<Self> {
        Ok(BatchQuery::Knn(builder.spec()?))
    }

    /// Freezes a point-kNN builder into a batch query (validates that a
    /// time window was given).
    pub fn knn_segments(builder: KnnSegmentsQuery) -> Result<Self> {
        Ok(BatchQuery::Segments(builder.spec()?))
    }

    /// Freezes a range builder into a batch query.
    pub fn range(builder: RangeQuery<'_>) -> Self {
        BatchQuery::Range(builder.spec())
    }

    /// The shared options every flavour carries: `k`, window, deadline,
    /// bound sharing. Executors read the deadline and sharing policy here
    /// without matching on the flavour.
    pub fn options(&self) -> &QueryOptions {
        match self {
            BatchQuery::Kmst(spec) => &spec.options,
            BatchQuery::Knn(spec) => &spec.options,
            BatchQuery::Segments(spec) => &spec.options,
            BatchQuery::Range(spec) => &spec.options,
        }
    }
}

impl From<KmstSpec> for BatchQuery {
    fn from(spec: KmstSpec) -> Self {
        BatchQuery::Kmst(spec)
    }
}

impl From<KnnSpec> for BatchQuery {
    fn from(spec: KnnSpec) -> Self {
        BatchQuery::Knn(spec)
    }
}

impl From<SegmentsSpec> for BatchQuery {
    fn from(spec: SegmentsSpec) -> Self {
        BatchQuery::Segments(spec)
    }
}

impl From<RangeSpec> for BatchQuery {
    fn from(spec: RangeSpec) -> Self {
        BatchQuery::Range(spec)
    }
}

/// Errors of the execution layer.
#[derive(Debug)]
pub enum ExecError {
    /// A search or index operation failed on some shard.
    Search(SearchError),
    /// The executor or database was misconfigured.
    Config(&'static str),
    /// A (query, shard) job produced no result — its worker died without
    /// reporting. Indicates a panic somewhere a panic should be
    /// impossible; the rest of the batch is unaffected.
    Lost {
        /// Batch position of the affected query.
        query: usize,
        /// Shard whose job went missing.
        shard: usize,
    },
    /// A submitted query's worker vanished before delivering the outcome
    /// (the [`Ticket`]'s channel disconnected). The persistent-pool
    /// counterpart of [`ExecError::Lost`].
    Disconnected,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Search(e) => write!(f, "shard search failed: {e}"),
            ExecError::Config(what) => write!(f, "executor misconfigured: {what}"),
            ExecError::Lost { query, shard } => {
                write!(
                    f,
                    "job for query {query} on shard {shard} reported no result"
                )
            }
            ExecError::Disconnected => {
                write!(
                    f,
                    "the query's worker vanished before delivering an outcome"
                )
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Search(e) => Some(e),
            ExecError::Config(_) | ExecError::Lost { .. } | ExecError::Disconnected => None,
        }
    }
}

impl From<SearchError> for ExecError {
    fn from(e: SearchError) -> Self {
        ExecError::Search(e)
    }
}

/// Result alias for the execution crate.
pub type Result<T> = std::result::Result<T, ExecError>;
