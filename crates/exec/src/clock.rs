//! The executor's clock — the single module of the library crates allowed
//! to touch `std::time` (xtask rule R5 whitelists exactly this file).
//!
//! R5 exists to keep *measurement* out of library code: work counters
//! belong in [`mst_search::QueryProfile`], wall time in `crates/bench`.
//! Deadlines are different — they are *scheduling inputs*, not
//! measurements: "give up after 50 ms" is part of the query contract, and
//! enforcing it requires reading a monotonic clock while the query runs.
//! Everything time-shaped in the executor funnels through this module so
//! the exemption stays one file wide; the rest of the crate deals in plain
//! microsecond integers.

use std::time::Instant;

/// A monotonic stopwatch started at batch submission. All executor
/// timestamps (deadlines, per-query latencies) are microsecond offsets
/// from one of these, so they are totally ordered and immune to wall-clock
/// adjustments.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    origin: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch now.
    pub fn start() -> Self {
        Stopwatch {
            origin: Instant::now(),
        }
    }

    /// Microseconds elapsed since [`Stopwatch::start`]. Saturates at
    /// `u64::MAX` (≈ 584 000 years), so arithmetic on offsets cannot
    /// overflow in practice.
    pub fn elapsed_us(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_us();
        let mut spin = 0u64;
        for i in 0..10_000u64 {
            spin = spin.wrapping_add(i);
        }
        std::hint::black_box(spin);
        let b = sw.elapsed_us();
        assert!(b >= a);
    }
}
