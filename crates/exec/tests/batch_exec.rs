//! End-to-end tests of the sharded batch executor, centred on the PR's
//! headline guarantee: parallel, sharded execution changes *performance*,
//! never *answers*.

use mst_exec::{BatchExecutor, BatchQuery, QueryAnswer, ShardedDatabase};
use mst_index::{FaultConfig, TrajectoryIndex, TrajectoryIndexWrite};
use mst_search::{KmstSubstrate, MovingObjectDatabase, MstMatch, NnMatch, Query};
use mst_trajectory::{SamplePoint, TimeInterval, Trajectory, TrajectoryId};

/// A deterministic little fleet: even ids cluster near the origin lane,
/// odd ids fan far out — so a query near the cluster finds tight matches
/// on one shard (under 2-way sharding) and prunable stragglers on the
/// other.
fn fleet(n: u64, points: usize) -> Vec<(TrajectoryId, Trajectory)> {
    (0..n)
        .map(|id| {
            let (dx, dy) = if id % 2 == 0 {
                (id as f64 * 0.25, 0.5 * id as f64)
            } else {
                (id as f64 * 3.0, 40.0 + 7.0 * id as f64)
            };
            let pts = (0..points)
                .map(|i| {
                    let t = i as f64;
                    SamplePoint::new(t, t * 0.8 + dx, dy + t * 0.1)
                })
                .collect();
            (
                TrajectoryId(id),
                Trajectory::new(pts).expect("valid fleet trajectory"),
            )
        })
        .collect()
}

fn baseline_db<I: TrajectoryIndexWrite + KmstSubstrate>(
    make: impl FnOnce() -> MovingObjectDatabase<I>,
    fleet: &[(TrajectoryId, Trajectory)],
) -> MovingObjectDatabase<I> {
    let mut db = make();
    for (id, traj) in fleet {
        db.insert_trajectory(*id, traj).expect("baseline insert");
    }
    db
}

/// The batch used throughout: a few k-MST queries (one with a range-MST
/// ceiling) and a couple of kNN queries, all built with the ordinary
/// `Query` builder.
fn batch_for(fleet: &[(TrajectoryId, Trajectory)], period: &TimeInterval) -> Vec<BatchQuery> {
    let mut batch = Vec::new();
    for qid in [0u64, 1, 4] {
        let q = &fleet[qid as usize].1;
        batch.push(BatchQuery::kmst(Query::kmst(q).k(5).during(period)).expect("kmst spec"));
    }
    let q = &fleet[2].1;
    batch.push(
        BatchQuery::kmst(Query::kmst(q).k(8).during(period).within(500.0)).expect("range spec"),
    );
    for qid in [0u64, 3] {
        let q = &fleet[qid as usize].1;
        batch.push(BatchQuery::knn(Query::knn(q).k(4).during(period)).expect("knn spec"));
    }
    batch
}

fn baseline_answers<I: TrajectoryIndexWrite + KmstSubstrate>(
    db: &mut MovingObjectDatabase<I>,
    fleet: &[(TrajectoryId, Trajectory)],
    period: &TimeInterval,
) -> (Vec<Vec<MstMatch>>, Vec<Vec<NnMatch>>) {
    let mut kmst = Vec::new();
    for qid in [0u64, 1, 4] {
        let q = &fleet[qid as usize].1;
        kmst.push(
            Query::kmst(q)
                .k(5)
                .during(period)
                .run(db)
                .expect("baseline kmst"),
        );
    }
    let q = &fleet[2].1;
    kmst.push(
        Query::kmst(q)
            .k(8)
            .during(period)
            .within(500.0)
            .run(db)
            .expect("baseline range"),
    );
    let mut knn = Vec::new();
    for qid in [0u64, 3] {
        let q = &fleet[qid as usize].1;
        knn.push(
            Query::knn(q)
                .k(4)
                .during(period)
                .run(db)
                .expect("baseline knn"),
        );
    }
    (kmst, knn)
}

fn assert_kmst_identical(got: &[MstMatch], want: &[MstMatch], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: result count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.traj, w.traj, "{what}: trajectory id");
        assert_eq!(
            g.dissim.to_bits(),
            w.dissim.to_bits(),
            "{what}: dissim must be bit-identical ({} vs {})",
            g.dissim,
            w.dissim
        );
    }
}

fn assert_knn_identical(got: &[NnMatch], want: &[NnMatch], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: result count");
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.traj, w.traj, "{what}: trajectory id");
        assert_eq!(
            g.distance.to_bits(),
            w.distance.to_bits(),
            "{what}: distance must be bit-identical"
        );
    }
}

/// Satellite (a): batch answers are bit-identical for 1/2/8 workers and
/// 1 vs 4 shards, and match the single-threaded `Query::run` baseline on
/// the unsharded database — on both index substrates.
#[test]
fn batch_execution_is_deterministic_across_workers_and_shards() {
    let fleet = fleet(24, 30);
    let period = TimeInterval::new(0.0, 29.0).expect("period");

    let mut rtree_base = baseline_db(MovingObjectDatabase::with_rtree, &fleet);
    let rtree_want = baseline_answers(&mut rtree_base, &fleet, &period);
    let mut tbtree_base = baseline_db(MovingObjectDatabase::with_tbtree, &fleet);
    let tbtree_want = baseline_answers(&mut tbtree_base, &fleet, &period);
    // The substrates agree with each other too — same exact values.
    for (r, t) in rtree_want.0.iter().zip(&tbtree_want.0) {
        assert_kmst_identical(r, t, "rtree vs tbtree baseline");
    }

    for shards in [1usize, 4] {
        let rtree_db = ShardedDatabase::with_rtree(shards, fleet.clone()).expect("shard build");
        let tbtree_db = ShardedDatabase::with_tbtree(shards, fleet.clone()).expect("shard build");
        let what = format!("shards={shards}");
        check_against_baseline(
            &rtree_db,
            &fleet,
            &period,
            &rtree_want,
            &format!("rtree {what}"),
        );
        check_against_baseline(
            &tbtree_db,
            &fleet,
            &period,
            &tbtree_want,
            &format!("tbtree {what}"),
        );
    }
}

fn check_against_baseline<I: TrajectoryIndex + Send + KmstSubstrate>(
    db: &ShardedDatabase<I>,
    fleet: &[(TrajectoryId, Trajectory)],
    period: &TimeInterval,
    want: &(Vec<Vec<MstMatch>>, Vec<Vec<NnMatch>>),
    what: &str,
) {
    for workers in [1usize, 2, 8] {
        let outcome = BatchExecutor::new()
            .workers(workers)
            .run(db, batch_for(fleet, period));
        assert_eq!(outcome.outcomes.len(), 6, "{what}: batch size");
        assert_eq!(
            outcome.degraded_count(),
            0,
            "{what}: no deadline, no degradation"
        );
        for (i, wanted) in want.0.iter().enumerate() {
            let got = outcome.outcomes[i].as_ref().expect("kmst query ok");
            assert!(
                !got.degraded,
                "{what}: query {i} degraded without a deadline"
            );
            assert!(
                got.profile.is_consistent(),
                "{what}: query {i} ledger unbalanced"
            );
            let matches = got.answer.as_kmst().expect("kmst answer flavour");
            assert_kmst_identical(matches, wanted, &format!("{what} kmst[{i}] w={workers}"));
        }
        for (j, wanted) in want.1.iter().enumerate() {
            let got = outcome.outcomes[4 + j].as_ref().expect("knn query ok");
            let matches = got.answer.as_knn().expect("knn answer flavour");
            assert_knn_identical(matches, wanted, &format!("{what} knn[{j}] w={workers}"));
        }
    }
}

/// Tentpole observability: with multiple shards, the cross-shard bound
/// actually prunes — visible in the merged profile's `SharedKth` ledger.
/// One worker makes the schedule deterministic: the query's home-cluster
/// shard runs first and publishes a tight bound for the far shard.
#[test]
fn cross_shard_bound_sharing_prunes_on_the_second_shard() {
    let fleet = fleet(24, 30);
    let period = TimeInterval::new(0.0, 29.0).expect("period");
    let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("shard build");

    let q = &fleet[0].1;
    let batch = vec![BatchQuery::kmst(Query::kmst(q).k(3).during(&period)).expect("spec")];
    let outcome = BatchExecutor::new().workers(1).run(&db, batch);
    let query = outcome.outcomes[0].as_ref().expect("query ok");
    let pruning = &query.profile.pruning;
    assert!(
        pruning.shared_kth_evals > 0,
        "the far shard never observed a tighter shared bound: {pruning:?}"
    );
    assert!(
        pruning.shared_kth_prunes > 0,
        "the shared bound never pruned anything the local bound would not have: {pruning:?}"
    );
    assert!(query.profile.is_consistent());
}

/// Satellite: a zero deadline degrades every query gracefully — flagged,
/// best-effort answers, balanced candidate ledger, no errors.
#[test]
fn expired_deadline_degrades_gracefully() {
    let fleet = fleet(24, 30);
    let period = TimeInterval::new(0.0, 29.0).expect("period");
    let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("shard build");

    let outcome = BatchExecutor::new()
        .workers(2)
        .deadline_us(0)
        .run(&db, batch_for(&fleet, &period));
    assert_eq!(outcome.degraded_count(), outcome.outcomes.len());
    for result in &outcome.outcomes {
        let query = result.as_ref().expect("degraded, not failed");
        assert!(query.degraded);
        assert!(
            query.profile.is_consistent(),
            "degraded ledger must still balance"
        );
    }
}

/// A generous deadline changes nothing: same answers, nothing degraded.
#[test]
fn generous_deadline_is_invisible() {
    let fleet = fleet(12, 20);
    let period = TimeInterval::new(0.0, 19.0).expect("period");
    let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("shard build");
    let q = &fleet[0].1;
    let batch = |_: ()| vec![BatchQuery::kmst(Query::kmst(q).k(3).during(&period)).expect("spec")];

    let fast = BatchExecutor::new().workers(2).run(&db, batch(()));
    let slow = BatchExecutor::new()
        .workers(2)
        .deadline_us(60_000_000)
        .run(&db, batch(()));
    assert_eq!(slow.degraded_count(), 0);
    let f = fast.outcomes[0].as_ref().expect("ok");
    let s = slow.outcomes[0].as_ref().expect("ok");
    match (&f.answer, &s.answer) {
        (QueryAnswer::Kmst(a), QueryAnswer::Kmst(b)) => {
            assert_kmst_identical(a, b, "deadline vs none")
        }
        _ => panic!("unexpected answer flavour"),
    }
}

/// Self-similarity sanity: every object's own query puts itself first
/// with DISSIM 0, whatever shard it lives on.
#[test]
fn every_object_finds_itself_first() {
    let fleet = fleet(10, 15);
    let period = TimeInterval::new(0.0, 14.0).expect("period");
    let db = ShardedDatabase::with_tbtree(3, fleet.clone()).expect("shard build");
    let batch: Vec<BatchQuery> = fleet
        .iter()
        .map(|(_, t)| BatchQuery::kmst(Query::kmst(t).k(2).during(&period)).expect("spec"))
        .collect();
    let outcome = BatchExecutor::new().workers(4).run(&db, batch);
    for (i, result) in outcome.outcomes.iter().enumerate() {
        let query = result.as_ref().expect("ok");
        let matches = query.answer.as_kmst().expect("kmst");
        assert_eq!(matches[0].traj, TrajectoryId(i as u64), "query {i}");
        assert!(matches[0].dissim.abs() < 1e-9, "query {i} self-dissim");
    }
}

/// Arms an unmaskable fault schedule on one shard and drops its warm
/// buffer pages so the very next node fetch goes to the (faulted)
/// physical store.
fn break_shard<I: TrajectoryIndex>(db: &ShardedDatabase<I>, shard: usize) {
    db.set_fault_injection(shard, Some(FaultConfig::quiet(7).with_read_transient(1.0)))
        .expect("arm faults");
    db.shards()[shard]
        .index()
        .with(|index| index.clear_buffer())
        .expect("lock")
        .expect("clear buffer");
}

/// Tentpole: a shard whose search dies with an index fault degrades the
/// query instead of failing it. The merged answer is exactly what the
/// surviving shard would produce alone — bit-identical to a database
/// built from only that shard's objects — the failure names the dead
/// shard, and the merged ledger (including the aborted job's work) still
/// balances.
#[test]
fn faulted_shard_degrades_query_instead_of_failing_it() {
    let fleet = fleet(24, 30);
    let period = TimeInterval::new(0.0, 29.0).expect("period");
    let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("shard build");
    break_shard(&db, 0);

    // Shard 1 of the 2-way split holds exactly the odd ids, inserted in
    // the same temporal order a 1-shard database of only those objects
    // uses — so that database is the certified "surviving shard" answer.
    let odd: Vec<_> = fleet
        .iter()
        .filter(|(id, _)| id.0 % 2 == 1)
        .cloned()
        .collect();
    let odd_db = ShardedDatabase::with_rtree(1, odd).expect("odd build");
    let want = BatchExecutor::new()
        .workers(1)
        .run(&odd_db, batch_for(&fleet, &period));

    let outcome = BatchExecutor::new()
        .workers(2)
        .run(&db, batch_for(&fleet, &period));
    assert_eq!(outcome.degraded_count(), outcome.outcomes.len());
    assert_eq!(outcome.failed_shard_count(), outcome.outcomes.len());
    for (i, (result, wanted)) in outcome.outcomes.iter().zip(&want.outcomes).enumerate() {
        let query = result.as_ref().expect("degraded, not failed");
        assert!(query.degraded, "query {i} must be flagged");
        assert!(
            !query.deadline_expired,
            "query {i}: no deadline was set, only the shard fault degrades"
        );
        assert_eq!(query.failures.len(), 1, "query {i}: one dead shard");
        assert_eq!(query.failures[0].shard, 0, "query {i}: shard 0 died");
        assert!(
            query.profile.is_consistent(),
            "query {i}: merged ledger must balance even with an aborted job"
        );
        let wanted = wanted.as_ref().expect("baseline ok");
        match (&query.answer, &wanted.answer) {
            (QueryAnswer::Kmst(a), QueryAnswer::Kmst(b)) => {
                assert_kmst_identical(a, b, &format!("degraded kmst[{i}] vs surviving shard"))
            }
            (QueryAnswer::Knn(a), QueryAnswer::Knn(b)) => {
                assert_knn_identical(a, b, &format!("degraded knn[{i}] vs surviving shard"))
            }
            _ => panic!("answer flavours diverged on query {i}"),
        }
    }
    // The retry storm and quarantine show up in the batch-merged profile
    // (per-query attribution depends on which job reached the bad page
    // first, so assert at batch granularity).
    let merged = outcome.merged_profile();
    assert!(merged.io_retries > 0, "retries must be counted: {merged:?}");
    assert!(
        merged.pages_quarantined > 0,
        "the bad page must be quarantined: {merged:?}"
    );
}

/// Arming fault injection on a shard that does not exist is a config
/// error, not a panic.
#[test]
fn fault_injection_on_missing_shard_is_a_config_error() {
    let fleet = fleet(4, 10);
    let db = ShardedDatabase::with_rtree(2, fleet).expect("shard build");
    let r = db.set_fault_injection(9, Some(FaultConfig::quiet(1)));
    assert!(matches!(r, Err(mst_exec::ExecError::Config(_))));
    assert!(db.fault_stats(9).is_none());
}

/// Satellite (c): a query can be degraded by *both* causes at once — a
/// dead shard and an expired deadline — and reports each one.
///
/// Construction: one worker runs the faulted shard-0 job first (it dies
/// on its first physical read, microseconds in, well before the
/// deadline), then the healthy shard-1 job, whose multi-millisecond
/// search observes the deadline expiring mid-traversal. The deadline is
/// swept upward so a slow-to-start or fast-to-search machine still finds
/// a window where both causes fire.
#[test]
fn deadline_and_shard_fault_report_both_causes() {
    let fleet = fleet(64, 150);
    let period = TimeInterval::new(0.0, 149.0).expect("period");
    let q = &fleet[1].1;

    for deadline_us in [4_000u64, 16_000, 64_000] {
        // Fresh database per attempt: quarantine from the previous round
        // must not leak into the next.
        let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("shard build");
        break_shard(&db, 0);
        let batch = vec![BatchQuery::kmst(Query::kmst(q).k(10).during(&period)).expect("spec")];
        let outcome = BatchExecutor::new()
            .workers(1)
            .deadline_us(deadline_us)
            .run(&db, batch);
        let query = outcome.outcomes[0].as_ref().expect("degraded, not failed");
        assert!(
            query.profile.is_consistent(),
            "ledger must balance whatever degraded it"
        );
        if query.deadline_expired && !query.failures.is_empty() {
            assert!(query.degraded, "both causes must set the summary flag");
            assert_eq!(query.failures[0].shard, 0);
            return;
        }
    }
    panic!("no deadline in the sweep produced both degradation causes at once");
}

/// An empty batch is a no-op, not an error.
#[test]
fn empty_batch_returns_no_outcomes() {
    let fleet = fleet(4, 10);
    let db = ShardedDatabase::with_rtree(2, fleet).expect("shard build");
    let outcome = BatchExecutor::new().workers(2).run(&db, Vec::new());
    assert!(outcome.outcomes.is_empty());
}
