//! Diagnostic rendering: the human `file:line: [R#] message` format and a
//! deterministic JSON report for CI archiving.
//!
//! JSON output is an array of `{file, line, rule, message}` objects sorted
//! by `(file, line, rule, message)` — byte-stable across runs on the same
//! tree, so archived reports diff cleanly.

use std::fmt;
use std::path::PathBuf;

/// A single rule violation, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The file the violation sits in, as scanned.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`R1` … `R13`).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Sorts diagnostics into the canonical report order.
pub fn sort(violations: &mut [Violation]) {
    violations.sort_by(|a, b| {
        (&a.file, a.line, a.rule, &a.message).cmp(&(&b.file, b.line, b.rule, &b.message))
    });
}

/// Renders the (already sorted) diagnostics as a JSON array. No trailing
/// newline; the caller decides framing.
pub fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"file\": \"");
        out.push_str(&escape(&v.file.display().to_string()));
        out.push_str("\", \"line\": ");
        out.push_str(&v.line.to_string());
        out.push_str(", \"rule\": \"");
        out.push_str(&escape(v.rule));
        out.push_str("\", \"message\": \"");
        out.push_str(&escape(&v.message));
        out.push_str("\"}");
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Minimal JSON string escaping: quotes, backslashes, and control chars.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn v(file: &str, line: usize, rule: &'static str, msg: &str) -> Violation {
        Violation {
            file: Path::new(file).to_path_buf(),
            line,
            rule,
            message: msg.to_string(),
        }
    }

    #[test]
    fn display_matches_the_documented_format() {
        assert_eq!(
            v("src/lib.rs", 7, "R1", "no").to_string(),
            "src/lib.rs:7: [R1] no"
        );
    }

    #[test]
    fn sort_orders_by_file_line_rule_message() {
        let mut vs = vec![
            v("b.rs", 1, "R2", "x"),
            v("a.rs", 9, "R1", "x"),
            v("a.rs", 2, "R7", "x"),
            v("a.rs", 2, "R1", "x"),
        ];
        sort(&mut vs);
        let order: Vec<String> = vs
            .iter()
            .map(|v| format!("{}:{}", v.file.display(), v.rule))
            .collect();
        assert_eq!(order, ["a.rs:R1", "a.rs:R7", "a.rs:R1", "b.rs:R2"]);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn json_is_deterministic_and_escaped() {
        let vs = vec![v("a.rs", 1, "R1", "uses `\"weird\"\\path`")];
        let one = to_json(&vs);
        let two = to_json(&vs);
        assert_eq!(one, two);
        assert!(one.contains("\\\"weird\\\""), "{one}");
        assert!(one.contains("\\\\path"), "{one}");
        assert_eq!(to_json(&[]), "[]");
    }
}
