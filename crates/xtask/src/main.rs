//! Repository-specific static analysis: `cargo run -p xtask -- check`.
//!
//! The standard toolchain lints (`clippy`, `rustc` warnings) cannot express
//! the policies this codebase actually relies on, so this zero-dependency
//! binary enforces them directly on the source tree:
//!
//! * **R1** — no `unwrap()` / `expect(` / `panic!` / `todo!` /
//!   `unimplemented!` / `unreachable!` in non-`#[cfg(test)]` library code of
//!   `mst-trajectory`, `mst-index`, `mst-search`, `mst-exec`, and
//!   `mst-serve`. A line may opt out by carrying an
//!   `// invariant: <why this cannot fire>` justification.
//! * **R2** — no `as` numeric casts in the binary-format modules
//!   (`index/src/codec.rs`, `index/src/persist.rs`,
//!   `index/src/pagestore.rs`); width changes there must go through
//!   `From`/`TryFrom` or the checked codec helpers so truncation is
//!   impossible by construction.
//! * **R3** — every crate root declares `#![forbid(unsafe_code)]` and
//!   `#![deny(missing_docs)]`.
//! * **R4** — no `==` / `!=` against floating-point literals outside test
//!   code and the allow-listed tolerance module
//!   (`trajectory/src/float.rs`). Detection is a literal-adjacency
//!   heuristic (an exact type-aware check needs full inference); it is a
//!   tripwire, not a proof.
//! * **R5** — no `std::time` / `Instant` outside `mst-bench` and the
//!   executor's clock module (`exec/src/clock.rs`, which funnels deadline
//!   timing through one audited file): library code must stay deterministic
//!   and clock-free so results are reproducible.
//! * **R6** — no calls to the deprecated pre-builder query methods
//!   (`most_similar`, `within_dissim`, `nearest_segments`, ...) anywhere
//!   in the workspace: the compat shim is gone and everything goes
//!   through the `Query` builder. The rule keeps the removed surface from
//!   creeping back in.
//! * **R7** — no `.lock().unwrap()` / `.read().unwrap()` /
//!   `.write().unwrap()` outside test code, anywhere in the workspace: a
//!   panicking thread must surface lock poisoning as
//!   `IndexError::Poisoned` (or another error), never cascade into more
//!   panics.
//! * **R8** — no silently discarded fallible calls in the algorithm-crate
//!   library code: `let _ = some_call(...)` and statement-ending `.ok();`
//!   throw away a `Result` (the fault-injection layer makes every page
//!   I/O fallible — a swallowed error there hides real corruption).
//!   Detection is shape-based (a call-looking right-hand side; plain
//!   `let _ = ident;` parameter-silencers are fine); genuine fire-and-forget
//!   sites opt out with `// invariant:`.
//! * **R9** — no `unwrap()` / `expect(` on socket I/O outside test code,
//!   in any library crate or example: peers disconnect and binds fail in
//!   routine operation, so a panic on a socket result is a
//!   denial-of-service bug. Detection pairs a socket-bearing token
//!   (`TcpListener`, `.accept()`, `.connect(`, ...) with an unwrap on the
//!   same line.
//!
//! The scanner is line-based. Comments and string/char literal bodies are
//! stripped before pattern matching, and `#[cfg(test)]` items are skipped
//! via brace tracking. Multi-line string literals are not understood —
//! none exist in library code, and a false positive can always be silenced
//! with an `// invariant:` comment explaining itself.
//!
//! Exit status: `0` when the tree is clean, `1` with `file:line: [R#] ...`
//! diagnostics otherwise.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A single rule violation, printed as `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Violation {
    file: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Source scanning: comment/string stripping and #[cfg(test)] tracking
// ---------------------------------------------------------------------------

/// One source line after sanitisation.
#[derive(Debug, Clone)]
struct Line {
    /// 1-based line number.
    number: usize,
    /// The line with comments removed and literal bodies blanked out.
    code: String,
    /// Whether the raw line carries an `// invariant:` justification.
    invariant: bool,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    in_test: bool,
}

/// Strips comments and literal bodies, and marks `#[cfg(test)]` regions.
fn scan(source: &str) -> Vec<Line> {
    let mut lines: Vec<Line> = Vec::new();
    let mut in_block_comment = false;

    for (idx, raw) in source.lines().enumerate() {
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(raw.len());
        let mut invariant = false;
        let mut j = 0;
        while j < chars.len() {
            if in_block_comment {
                if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    in_block_comment = false;
                    j += 2;
                } else {
                    j += 1;
                }
                continue;
            }
            let c = chars[j];
            if c == '/' && chars.get(j + 1) == Some(&'/') {
                let comment: String = chars[j..].iter().collect();
                if comment
                    .trim_start_matches('/')
                    .trim_start()
                    .starts_with("invariant:")
                {
                    invariant = true;
                }
                break;
            }
            if c == '/' && chars.get(j + 1) == Some(&'*') {
                in_block_comment = true;
                j += 2;
                continue;
            }
            if c == 'r'
                && (chars.get(j + 1) == Some(&'"')
                    || (chars.get(j + 1) == Some(&'#') && chars.get(j + 2) == Some(&'"')))
            {
                // Raw string literal: r"..." or r#"..."#. No escapes inside.
                let hashed = chars[j + 1] == '#';
                j += if hashed { 3 } else { 2 };
                while j < chars.len() {
                    if chars[j] == '"' && (!hashed || chars.get(j + 1) == Some(&'#')) {
                        j += if hashed { 2 } else { 1 };
                        break;
                    }
                    j += 1;
                }
                code.push_str("\"\"");
                continue;
            }
            if c == '"' {
                j += 1;
                while j < chars.len() {
                    if chars[j] == '\\' {
                        j += 2;
                        continue;
                    }
                    if chars[j] == '"' {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                code.push_str("\"\"");
                continue;
            }
            if c == '\'' {
                // Char literal vs lifetime: a literal closes within a few
                // characters; a lifetime never closes.
                if chars.get(j + 1) == Some(&'\\') {
                    j += 2;
                    while j < chars.len() && chars[j] != '\'' {
                        j += 1;
                    }
                    j += 1;
                    code.push_str("''");
                } else if chars.get(j + 2) == Some(&'\'') {
                    j += 3;
                    code.push_str("''");
                } else {
                    code.push('\'');
                    j += 1;
                }
                continue;
            }
            code.push(c);
            j += 1;
        }
        lines.push(Line {
            number: idx + 1,
            code,
            invariant,
            in_test: false,
        });
    }

    // Second pass: mark `#[cfg(test)]` items by brace depth.
    let mut depth: i64 = 0;
    let mut pending_test = false;
    let mut skip_depth: Option<i64> = None;
    for line in &mut lines {
        let mut in_test = skip_depth.is_some();
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            pending_test = true;
            in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending_test && skip_depth.is_none() {
                        skip_depth = Some(depth);
                        pending_test = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_depth == Some(depth) {
                        skip_depth = None;
                    }
                }
                _ => {}
            }
        }
        line.in_test = in_test || skip_depth.is_some();
    }
    lines
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

/// R1: panicking constructs in library code.
const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "todo!",
    "unimplemented!",
    "unreachable!",
];

/// True when `lines[i]` carries an `// invariant:` tag itself or in the
/// comment block (comment-only or blank lines) immediately above it. This
/// lets the justification live on its own line, where rustfmt keeps it and
/// multi-line explanations stay readable.
fn excused_by_invariant(lines: &[Line], i: usize) -> bool {
    if lines[i].invariant {
        return true;
    }
    let mut j = i;
    while j > 0 && lines[j - 1].code.trim().is_empty() {
        j -= 1;
        if lines[j].invariant {
            return true;
        }
    }
    false
}

fn check_no_panics(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || excused_by_invariant(lines, i) {
            continue;
        }
        for pat in PANIC_PATTERNS {
            if line.code.contains(pat) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: line.number,
                    rule: "R1",
                    message: format!(
                        "`{pat}` in library code; return an error or add \
                         `// invariant: <why this cannot fire>`"
                    ),
                });
            }
        }
    }
}

/// R2: numeric `as` casts in binary-format modules.
const NUMERIC_TYPES: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
];

fn find_numeric_cast(code: &str) -> Option<&'static str> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(" as ") {
        let after = &code[start + pos + 4..];
        for ty in NUMERIC_TYPES {
            if let Some(rest) = after.strip_prefix(ty) {
                let boundary = rest
                    .chars()
                    .next()
                    .map_or(true, |c| !c.is_alphanumeric() && c != '_');
                if boundary {
                    return Some(ty);
                }
            }
        }
        start += pos + 4;
    }
    None
}

fn check_no_lossy_casts(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || excused_by_invariant(lines, i) {
            continue;
        }
        if let Some(ty) = find_numeric_cast(&line.code) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line.number,
                rule: "R2",
                message: format!(
                    "`as {ty}` cast in a binary-format module; use \
                     `From`/`TryFrom` or the checked codec helpers"
                ),
            });
        }
    }
}

/// R3: crate roots must carry the safety/documentation attributes.
fn check_crate_root_attrs(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
        if !lines.iter().any(|l| l.code.contains(required)) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: 1,
                rule: "R3",
                message: format!("crate root does not declare `{required}`"),
            });
        }
    }
}

/// A token for the float-equality heuristic: either a number literal or
/// opaque punctuation/identifier text.
#[derive(Debug, PartialEq)]
enum Token {
    Number { has_fraction: bool },
    Op(String),
    Word,
}

fn tokenize(code: &str) -> Vec<Token> {
    let chars: Vec<char> = code.chars().collect();
    let mut out = Vec::new();
    let mut j = 0;
    while j < chars.len() {
        let c = chars[j];
        if c.is_whitespace() {
            j += 1;
        } else if c.is_ascii_digit() {
            let mut has_fraction = false;
            while j < chars.len() {
                let d = chars[j];
                if d.is_ascii_digit() || d == '_' {
                    j += 1;
                } else if d == '.' && chars.get(j + 1) != Some(&'.') {
                    // A fractional point, unless it starts a `..` range or a
                    // method call on the literal.
                    if chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                        has_fraction = true;
                        j += 1;
                    } else {
                        break;
                    }
                } else if (d == 'e' || d == 'E')
                    && chars
                        .get(j + 1)
                        .is_some_and(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                {
                    has_fraction = true;
                    j += 2;
                } else {
                    break;
                }
            }
            out.push(Token::Number { has_fraction });
        } else if c.is_alphanumeric() || c == '_' {
            while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                j += 1;
            }
            out.push(Token::Word);
        } else if (c == '=' || c == '!') && chars.get(j + 1) == Some(&'=') {
            out.push(Token::Op(format!("{c}=")));
            j += 2;
        } else if (c == '<' || c == '>' || c == '.') && chars.get(j + 1) == Some(&'=') {
            // `<=`, `>=`, `..=`: consume the `=` so it cannot pair up with a
            // following `=` into a phantom `==`.
            out.push(Token::Op(format!("{c}=")));
            j += 2;
        } else {
            out.push(Token::Op(c.to_string()));
            j += 1;
        }
    }
    out
}

/// R4: `==` / `!=` adjacent to a fractional literal.
fn has_float_equality(code: &str) -> bool {
    let tokens = tokenize(code);
    for (i, tok) in tokens.iter().enumerate() {
        let Token::Op(op) = tok else { continue };
        if op != "==" && op != "!=" {
            continue;
        }
        let float_at = |k: Option<&Token>| matches!(k, Some(Token::Number { has_fraction: true }));
        // Look one past a possible unary minus on the right.
        let right = match tokens.get(i + 1) {
            Some(Token::Op(m)) if m == "-" => tokens.get(i + 2),
            other => other,
        };
        if float_at(i.checked_sub(1).and_then(|k| tokens.get(k))) || float_at(right) {
            return true;
        }
    }
    false
}

fn check_no_float_equality(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for line in lines {
        if line.in_test || line.invariant {
            continue;
        }
        if has_float_equality(&line.code) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line.number,
                rule: "R4",
                message: "exact `==`/`!=` against a float literal; compare \
                          through `trajectory::float` or justify with \
                          `// invariant:`"
                    .to_string(),
            });
        }
    }
}

/// R5: wall-clock access outside the benchmark crate.
fn check_no_clocks(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for line in lines {
        if line.in_test || line.invariant {
            continue;
        }
        let has_instant = tokenize_words(&line.code).any(|w| w == "Instant");
        if line.code.contains("std::time") || has_instant {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line.number,
                rule: "R5",
                message: "wall-clock access in library code; timing belongs \
                          in `mst-bench`"
                    .to_string(),
            });
        }
    }
}

/// R6: method calls on the deprecated pre-builder query surface. The
/// leading dot keeps free functions like `search::nearest_trajectories(...)`
/// (the still-supported low-level entry points) out of scope; only the
/// deprecated `MovingObjectDatabase` methods are method calls.
const DEPRECATED_DB_CALLS: [&str; 7] = [
    ".most_similar(",
    ".most_similar_with(",
    ".within_dissim(",
    ".most_similar_time_relaxed(",
    ".nearest_segments(",
    ".nearest_trajectories(",
    ".range(",
];

fn check_no_deprecated_query_calls(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if excused_by_invariant(lines, i) {
            continue;
        }
        for pat in DEPRECATED_DB_CALLS {
            if line.code.contains(pat) {
                let name = pat.trim_start_matches('.').trim_end_matches('(');
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: line.number,
                    rule: "R6",
                    message: format!(
                        "call to deprecated query method `{name}`; use the \
                         `Query` builder (see crates/core/src/query.rs)"
                    ),
                });
            }
        }
    }
}

/// R7: unwrapping a lock guard. Poisoning (a panic on another thread while
/// it held the guard) must become an error — `IndexError::Poisoned` in the
/// index layer — not a second panic that takes the whole pool down.
const LOCK_UNWRAP_PATTERNS: [&str; 3] =
    [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"];

fn check_no_lock_unwrap(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || excused_by_invariant(lines, i) {
            continue;
        }
        for pat in LOCK_UNWRAP_PATTERNS {
            if line.code.contains(pat) {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: line.number,
                    rule: "R7",
                    message: format!(
                        "`{pat}` panics on a poisoned lock; map the \
                         `PoisonError` to an error (e.g. \
                         `IndexError::Poisoned`) instead"
                    ),
                });
            }
        }
    }
}

/// R8: a discarded fallible call. `let _ = call(...)` and a
/// statement-ending `.ok();` both swallow a `Result` without looking at
/// it — with the fault-injection layer in place, that is how torn pages
/// and checksum mismatches vanish. The right-hand side must be
/// call-shaped (starts with an identifier and applies arguments) so the
/// idiomatic unused-parameter silencers (`let _ = n;`,
/// `let _ = (bound, n);`, `let _ = &reason;`) stay legal.
fn check_no_result_discards(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || excused_by_invariant(lines, i) {
            continue;
        }
        let code = line.code.trim();
        for marker in ["let _ = ", "let _ ="] {
            let Some(pos) = code.find(marker) else {
                continue;
            };
            let rhs = code[pos + marker.len()..].trim_start();
            if rhs.starts_with(|c: char| c.is_alphanumeric() || c == '_') && rhs.contains('(') {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: line.number,
                    rule: "R8",
                    message: "`let _ =` discards a call result; handle the \
                              `Result` (or justify with `// invariant:`)"
                        .to_string(),
                });
            }
            break;
        }
        // A trailing `.ok();` is only a discard when nothing receives the
        // value: assignments and `return` statements keep it.
        if code.ends_with(".ok();") && !code.contains('=') && !code.starts_with("return") {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line.number,
                rule: "R8",
                message: "statement-ending `.ok();` swallows an error; \
                          handle the `Result` (or justify with \
                          `// invariant:`)"
                    .to_string(),
            });
        }
    }
}

/// R9: socket-bearing tokens. A line that both touches one of these and
/// unwraps is almost certainly unwrapping the socket call's result. The
/// method patterns carry a leading dot so ordinary identifiers (a local
/// named `accept`, `ExecHandle::shutdown()`) stay out of scope.
const SOCKET_TOKENS: [&str; 12] = [
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    ".accept()",
    ".connect(",
    ".local_addr()",
    ".peer_addr()",
    ".set_read_timeout(",
    ".set_write_timeout(",
    ".set_nodelay(",
    ".set_nonblocking(",
    ".take_error()",
];

fn check_no_socket_unwraps(file: &Path, lines: &[Line], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.in_test || excused_by_invariant(lines, i) {
            continue;
        }
        let code = &line.code;
        if !code.contains(".unwrap()") && !code.contains(".expect(") {
            continue;
        }
        if SOCKET_TOKENS.iter().any(|t| code.contains(t)) {
            out.push(Violation {
                file: file.to_path_buf(),
                line: line.number,
                rule: "R9",
                message: "socket I/O result unwrapped; peers disconnect and \
                          binds fail in normal operation, so handle the \
                          error (or justify with `// invariant:`)"
                    .to_string(),
            });
        }
    }
}

/// Iterates the identifier-shaped words of a sanitised line.
fn tokenize_words(code: &str) -> impl Iterator<Item = &str> {
    code.split(|c: char| !c.is_alphanumeric() && c != '_')
        .filter(|w| !w.is_empty())
}

// ---------------------------------------------------------------------------
// Tree walking and rule wiring
// ---------------------------------------------------------------------------

/// Collects `.rs` files under `dir` recursively, sorted for stable output.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rs_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// The rule → scope wiring for this repository, rooted at `root`.
fn run_check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    // R1 + R8: panic-free, discard-free library code in the algorithm,
    // execution, and serving crates.
    for dir in [
        "crates/trajectory/src",
        "crates/index/src",
        "crates/core/src",
        "crates/exec/src",
        "crates/serve/src",
    ] {
        for file in rs_files(&root.join(dir)) {
            if let Ok(src) = fs::read_to_string(&file) {
                let lines = scan(&src);
                check_no_panics(&file, &lines, &mut out);
                check_no_result_discards(&file, &lines, &mut out);
            }
        }
    }

    // R2: cast-free binary-format modules.
    for name in ["codec.rs", "persist.rs", "pagestore.rs", "checksum.rs"] {
        let file = root.join("crates/index/src").join(name);
        if let Ok(src) = fs::read_to_string(&file) {
            check_no_lossy_casts(&file, &scan(&src), &mut out);
        }
    }

    // R3: attributes on every crate root (workspace crates + root package).
    let mut roots = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = dir.join(candidate);
                if p.is_file() {
                    roots.push(p);
                    break;
                }
            }
        }
    }
    for file in roots {
        if let Ok(src) = fs::read_to_string(&file) {
            check_crate_root_attrs(&file, &scan(&src), &mut out);
        }
    }

    // R4/R5/R7: all library source. The tolerance module is the R4
    // allowlist; mst-bench plus the executor's clock module are the R5
    // allowlist; xtask scans everything but itself (its sources quote the
    // forbidden patterns in diagnostics and tests).
    let float_allowlist = root.join("crates/trajectory/src/float.rs");
    let clock_allowlist = root.join("crates/exec/src/clock.rs");
    let mut lib_dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            if dir.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            lib_dirs.push(dir.join("src"));
        }
    }
    for dir in &lib_dirs {
        let in_bench = dir.ends_with("bench/src");
        for file in rs_files(dir) {
            let Ok(src) = fs::read_to_string(&file) else {
                continue;
            };
            let lines = scan(&src);
            if file != float_allowlist {
                check_no_float_equality(&file, &lines, &mut out);
            }
            if !in_bench && file != clock_allowlist {
                check_no_clocks(&file, &lines, &mut out);
            }
            check_no_lock_unwrap(&file, &lines, &mut out);
        }
    }

    // R6: the deprecated pre-builder query methods are gone from the
    // workspace entirely (the compat shim was removed once the builder
    // migration completed); nothing may reintroduce them. Examples and
    // integration tests are user-facing showcase code, so they are held
    // to the same standard as the libraries.
    let mut r6_dirs = lib_dirs.clone();
    r6_dirs.push(root.join("examples"));
    r6_dirs.push(root.join("tests"));
    for dir in &r6_dirs {
        for file in rs_files(dir) {
            if let Ok(src) = fs::read_to_string(&file) {
                check_no_deprecated_query_calls(&file, &scan(&src), &mut out);
            }
        }
    }

    // R9: socket I/O results are never unwrapped outside test code —
    // connections fail routinely in normal operation, so a panic there is
    // a denial-of-service bug, not a programming-error trap. Covers all
    // library source plus the examples.
    let mut r9_dirs = lib_dirs;
    r9_dirs.push(root.join("examples"));
    for dir in &r9_dirs {
        for file in rs_files(dir) {
            if let Ok(src) = fs::read_to_string(&file) {
                check_no_socket_unwraps(&file, &scan(&src), &mut out);
            }
        }
    }

    // R7 also covers the examples — showcase code must model the poisoning
    // discipline. Integration tests are test code and may unwrap.
    for file in rs_files(&root.join("examples")) {
        if let Ok(src) = fs::read_to_string(&file) {
            check_no_lock_unwrap(&file, &scan(&src), &mut out);
        }
    }

    out.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    out
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- check [--root <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "check" if cmd.is_none() => cmd = Some("check"),
            _ => return usage(),
        }
    }
    if cmd != Some("check") {
        return usage();
    }
    // A mistyped --root must not silently scan nothing and report clean.
    if !root.join("crates").is_dir() {
        eprintln!(
            "xtask check: {} does not contain a `crates/` directory; nothing to scan",
            root.display()
        );
        return ExitCode::from(2);
    }
    let violations = run_check(&root);
    if violations.is_empty() {
        println!("xtask check: clean");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask check: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn lines_of(src: &str) -> Vec<Line> {
        scan(src)
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = lines_of(
            "let s = \"contains .unwrap() and panic!\"; // and .expect( here\nlet c = 'x';",
        );
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[0].code.contains(".expect("));
        assert_eq!(lines[1].code, "let c = '';");
    }

    #[test]
    fn block_comments_span_lines() {
        let lines = lines_of("a /* panic!\nstill panic!\n*/ b.unwrap()");
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[1].code.contains("panic!"));
        assert!(lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let lines = lines_of("let s = r\"panic!\"; let t = r#\"x.unwrap()\"#; y");
        assert!(!lines[0].code.contains("panic!"));
        assert!(!lines[0].code.contains(".unwrap()"));
        assert!(lines[0].code.ends_with("y"));
    }

    #[test]
    fn lifetimes_survive_char_stripping() {
        let lines = lines_of("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("<'a>"));
    }

    #[test]
    fn invariant_comments_are_detected() {
        let lines = lines_of("x.unwrap(); // invariant: validated above\ny.unwrap();");
        assert!(lines[0].invariant);
        assert!(!lines[1].invariant);
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = "fn lib() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                   fn t() { y.unwrap(); }\n\
                   }\n\
                   fn lib2() { z.unwrap(); }";
        let lines = lines_of(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn r1_flags_panicking_constructs_with_line_numbers() {
        let src = "fn a() {}\nfn b() { x.unwrap(); }\nfn c() { panic!(\"boom\") }";
        let mut out = Vec::new();
        check_no_panics(Path::new("lib.rs"), &lines_of(src), &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].line, 2);
        assert_eq!(out[1].line, 3);
        assert!(out[0].to_string().starts_with("lib.rs:2: [R1]"));
    }

    #[test]
    fn r1_respects_test_code_and_invariants() {
        let src = "x.unwrap(); // invariant: index verified by caller\n\
                   #[cfg(test)]\nmod t { fn f() { y.expect(\"fine in tests\"); } }";
        let mut out = Vec::new();
        check_no_panics(Path::new("lib.rs"), &lines_of(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r1_accepts_invariant_comment_block_above() {
        // A multi-line justification ending right above the call excuses it;
        // a justification separated by code does not.
        let excused = "// invariant: the store caps page ids well below u32::MAX,\n\
                       // so this conversion is lossless.\n\
                       let id = u32::try_from(n).expect(\"capped\");";
        let mut out = Vec::new();
        check_no_panics(Path::new("lib.rs"), &lines_of(excused), &mut out);
        assert!(out.is_empty(), "{out:?}");

        let stale = "// invariant: only applies to the line below\n\
                     let a = first();\n\
                     b.unwrap();";
        check_no_panics(Path::new("lib.rs"), &lines_of(stale), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 3);
    }

    #[test]
    fn r1_does_not_flag_unwrap_or_variants() {
        let src = "let v = x.unwrap_or(0) + y.unwrap_or_else(|| 1);";
        let mut out = Vec::new();
        check_no_panics(Path::new("lib.rs"), &lines_of(src), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r2_flags_numeric_casts_only() {
        assert_eq!(find_numeric_cast("let x = y as u32;"), Some("u32"));
        assert_eq!(find_numeric_cast("let x = y as usize + 1;"), Some("usize"));
        assert_eq!(find_numeric_cast("let d = dyn_ref as &dyn Trait;"), None);
        assert_eq!(find_numeric_cast("let x = y as u32z;"), None);
        let mut out = Vec::new();
        check_no_lossy_casts(
            Path::new("codec.rs"),
            &lines_of("fn f(n: u64) -> u32 { n as u32 }"),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "R2");
    }

    #[test]
    fn r3_requires_both_attributes() {
        let mut out = Vec::new();
        check_crate_root_attrs(
            Path::new("lib.rs"),
            &lines_of("#![forbid(unsafe_code)]\n#![deny(missing_docs)]\npub fn f() {}"),
            &mut out,
        );
        assert!(out.is_empty());
        check_crate_root_attrs(
            Path::new("lib.rs"),
            &lines_of("#![warn(missing_docs)]\npub fn f() {}"),
            &mut out,
        );
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn r4_heuristic_matches_float_literal_comparisons() {
        assert!(has_float_equality("if x == 0.0 {"));
        assert!(has_float_equality("if 1.5 != y {"));
        assert!(has_float_equality("x == 1e-9"));
        assert!(has_float_equality("x == -2.5"));
        assert!(!has_float_equality("if x == 0 {"));
        assert!(!has_float_equality("if x <= 0.5 {"));
        assert!(!has_float_equality("for i in 0..=10 {"));
        assert!(!has_float_equality("let r = 0.0..1.0;"));
        assert!(!has_float_equality("a == b"));
    }

    #[test]
    fn r5_flags_clock_access_but_not_lookalikes() {
        let mut out = Vec::new();
        check_no_clocks(
            Path::new("lib.rs"),
            &lines_of("use std::time::Instant;\nlet t = Instant::now();"),
            &mut out,
        );
        assert_eq!(out.len(), 2);
        out.clear();
        check_no_clocks(
            Path::new("lib.rs"),
            &lines_of("let instantaneous = 1; struct NotAnInstantiation;"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r6_flags_deprecated_query_calls() {
        let mut out = Vec::new();
        check_no_deprecated_query_calls(
            Path::new("main.rs"),
            &lines_of(
                "let top = db.most_similar(&q, &p, 4)?;\nlet ok = Query::kmst(&q).run(&mut db)?;",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "R6");
        assert_eq!(out[0].line, 1);
        // Free functions of the same name are the supported low-level API.
        out.clear();
        check_no_deprecated_query_calls(
            Path::new("main.rs"),
            &lines_of("let nn = nearest_trajectories(&mut idx, &q, &p, 5)?;"),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r7_flags_lock_unwraps_but_not_handled_locks() {
        let mut out = Vec::new();
        check_no_lock_unwrap(
            Path::new("lib.rs"),
            &lines_of(
                "let g = mutex.lock().unwrap();\n\
                 let r = rw.read().unwrap();\n\
                 let w = rw.write().unwrap();",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|v| v.rule == "R7"));
        out.clear();
        check_no_lock_unwrap(
            Path::new("lib.rs"),
            &lines_of(
                "let g = mutex.lock().map_err(poisoned)?;\n\
                 let v = opt.unwrap_or_default();\n\
                 #[cfg(test)]\nmod t { fn f() { m.lock().unwrap(); } }",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r7_respects_invariant_justifications() {
        let mut out = Vec::new();
        check_no_lock_unwrap(
            Path::new("lib.rs"),
            &lines_of(
                "// invariant: single-threaded setup, no poisoner can exist\n\
                 let g = mutex.lock().unwrap();",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r8_flags_discarded_calls_but_not_parameter_silencers() {
        let mut out = Vec::new();
        check_no_result_discards(
            Path::new("lib.rs"),
            &lines_of(
                "let _ = store.write(id, &page);\n\
                 let _ = flush_all(pool);\n\
                 pool.flush(store).ok();",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|v| v.rule == "R8"));
        // The idiomatic silencers for unused default-impl parameters, and
        // value-position `.ok()`, are all legal.
        out.clear();
        check_no_result_discards(
            Path::new("lib.rs"),
            &lines_of(
                "let _ = n;\n\
                 let _ = (bound, n);\n\
                 let _ = &reason;\n\
                 let v = result.ok();\n\
                 let first = lock.ok().map(|g| g.value);",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r8_respects_tests_and_invariant_justifications() {
        let mut out = Vec::new();
        check_no_result_discards(
            Path::new("lib.rs"),
            &lines_of(
                "// invariant: best-effort cleanup, failure changes nothing\n\
                 let _ = remove_file(&path);\n\
                 #[cfg(test)]\nmod t { fn f() { fs::remove_file(p).ok(); } }",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r9_flags_socket_unwraps_but_not_handled_results() {
        let mut out = Vec::new();
        check_no_socket_unwraps(
            Path::new("server.rs"),
            &lines_of(
                "let listener = TcpListener::bind(addr).unwrap();\n\
                 let peer = stream.peer_addr().expect(\"peer\");\n\
                 stream.set_nodelay(true).unwrap();",
            ),
            &mut out,
        );
        assert_eq!(out.len(), 3, "{out:?}");
        assert!(out.iter().all(|v| v.rule == "R9"));
        // Handled socket results, unwraps with no socket on the line, and
        // non-socket method calls all stay legal.
        out.clear();
        check_no_socket_unwraps(
            Path::new("server.rs"),
            &lines_of(
                "let listener = TcpListener::bind(addr)?;\n\
                 if let Ok(peer) = stream.peer_addr() { log(peer); }\n\
                 let k = options.k.unwrap();\n\
                 handle.shutdown();",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r9_respects_tests_and_invariant_justifications() {
        let mut out = Vec::new();
        check_no_socket_unwraps(
            Path::new("server.rs"),
            &lines_of(
                "// invariant: bound to port 0 above, bind cannot collide\n\
                 let l = TcpListener::bind(addr).unwrap();\n\
                 #[cfg(test)]\nmod t { fn f() { TcpStream::connect(a).unwrap(); } }",
            ),
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    /// End-to-end: a synthetic mini-repo produces diagnostics with paths,
    /// line numbers, and a nonzero violation count; a clean tree is clean.
    #[test]
    fn run_check_reports_and_clears() {
        static NONCE: AtomicUsize = AtomicUsize::new(0);
        let root = std::env::temp_dir().join(format!(
            "xtask-fixture-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let write = |rel: &str, body: &str| {
            let p = root.join(rel);
            fs::create_dir_all(p.parent().unwrap()).unwrap();
            fs::write(p, body).unwrap();
        };
        let clean_root = "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n//! x\n";

        write("src/lib.rs", clean_root);
        write(
            "crates/trajectory/src/lib.rs",
            &format!("{clean_root}pub fn bad() {{ Some(1).unwrap(); }}\n"),
        );
        write(
            "crates/index/src/lib.rs",
            "//! missing both attributes\npub fn f() {}\n",
        );
        write(
            "crates/index/src/codec.rs",
            "pub fn narrow(n: u64) -> u32 { n as u32 }\n",
        );
        write(
            "crates/core/src/lib.rs",
            &format!("{clean_root}pub fn eq(x: f64) -> bool {{ x == 0.5 }}\n"),
        );
        write(
            "crates/datagen/src/lib.rs",
            &format!("{clean_root}use std::time::Instant;\n"),
        );
        write(
            "crates/bench/src/lib.rs",
            &format!("{clean_root}pub fn grab() {{ M.lock().unwrap(); }}\n"),
        );
        // The executor's clock module is exempt from R5 by design.
        write(
            "crates/exec/src/lib.rs",
            &format!("{clean_root}pub mod clock;\n"),
        );
        write(
            "crates/exec/src/clock.rs",
            "//! clock\nuse std::time::Instant;\npub fn now() -> Instant { Instant::now() }\n",
        );
        write(
            "examples/demo.rs",
            "fn main() { let _ = db.nearest_segments(p, &w, 3); }\n",
        );
        // The serving crate is in R1 scope like the algorithm crates.
        write(
            "crates/serve/src/lib.rs",
            &format!("{clean_root}pub fn bad() {{ Some(1).unwrap(); }}\n"),
        );
        write(
            "examples/sock.rs",
            "fn main() { let l = TcpListener::bind(\"127.0.0.1:0\").unwrap(); drop(l); }\n",
        );
        // The compat shim no longer gets a carve-out: a resurrected
        // deprecated call is flagged even there.
        write(
            "crates/core/src/compat.rs",
            "fn shim() { db.most_similar(&q, &p, 1); }\n",
        );

        let violations = run_check(&root);
        let rendered: Vec<String> = violations.iter().map(Violation::to_string).collect();
        let has = |rule: &str, path: &str, line: usize| {
            rendered
                .iter()
                .any(|r| r.contains(rule) && r.contains(path) && r.contains(&format!(":{line}:")))
        };
        assert!(has("[R1]", "trajectory/src/lib.rs", 4), "{rendered:?}");
        assert!(has("[R2]", "index/src/codec.rs", 1), "{rendered:?}");
        assert!(has("[R3]", "index/src/lib.rs", 1), "{rendered:?}");
        assert!(has("[R4]", "core/src/lib.rs", 4), "{rendered:?}");
        assert!(has("[R5]", "datagen/src/lib.rs", 4), "{rendered:?}");
        assert!(has("[R6]", "examples/demo.rs", 1), "{rendered:?}");
        assert!(has("[R6]", "core/src/compat.rs", 1), "{rendered:?}");
        assert!(has("[R7]", "bench/src/lib.rs", 4), "{rendered:?}");
        assert!(has("[R1]", "serve/src/lib.rs", 4), "{rendered:?}");
        assert!(has("[R9]", "examples/sock.rs", 1), "{rendered:?}");
        // The clock module may use std::time (R5 allowlist) but is still
        // subject to every other rule.
        assert!(
            !rendered.iter().any(|r| r.contains("exec/src/clock.rs")),
            "{rendered:?}"
        );

        // Repair every file and re-run: the tree must come back clean.
        write("crates/trajectory/src/lib.rs", clean_root);
        write("crates/index/src/lib.rs", clean_root);
        write(
            "crates/index/src/codec.rs",
            "pub fn widen(n: u32) -> u64 { u64::from(n) }\n",
        );
        write("crates/core/src/lib.rs", clean_root);
        write("crates/datagen/src/lib.rs", clean_root);
        write(
            "crates/bench/src/lib.rs",
            &format!("{clean_root}pub fn grab() {{ M.lock().map_err(drop); }}\n"),
        );
        write(
            "examples/demo.rs",
            "fn main() { let _ = Query::knn_segments(p).k(3).during(&w).run(&mut db); }\n",
        );
        write("crates/serve/src/lib.rs", clean_root);
        write(
            "examples/sock.rs",
            "fn main() { if let Ok(l) = TcpListener::bind(\"127.0.0.1:0\") { drop(l); } }\n",
        );
        write("crates/core/src/compat.rs", "fn shim() {}\n");
        assert!(run_check(&root).is_empty());

        fs::remove_dir_all(&root).unwrap();
    }
}
