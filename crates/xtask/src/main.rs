//! `cargo xtask` — the workspace's static-analysis driver.
//!
//! The framework lives in three modules: [`lexer`] turns each source file
//! into spanned tokens plus a sanitised line view, [`rules`] holds the
//! thirteen independent rule modules (R1–R13, including the whole-workspace
//! lock-order audit), and [`report`] renders deterministic human and JSON
//! diagnostics. The full rule catalogue, the justification grammar
//! (`// invariant:` / `// ordering:`), and the lock-graph model are
//! documented in `DESIGN.md` § Static analysis; this file only wires rules
//! to the directories they scan.
//!
//! Usage:
//!
//! ```text
//! cargo run -p xtask -- check   [--json] [--root <path>]
//! cargo run -p xtask -- atomics [--json] [--root <path>]
//! ```
//!
//! `check` exits 0 when clean, 1 with diagnostics, 2 on usage errors.
//! `atomics` prints the memory-ordering inventory for the concurrency
//! scope and always exits 0 — it is a review aid, not a gate.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod lexer;
mod report;
mod rules;

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lexer::SourceFile;
use report::Violation;
use rules::atomics::{sites, AtomicOrdering, AtomicSite};
use rules::durability::UnsyncedHandles;
use rules::hygiene::{
    CrateRootAttrs, NoClocks, NoDeprecatedQueryCalls, NoFloatEquality, NoLossyCasts,
};
use rules::lock_order::LockOrder;
use rules::panics::{NoLockUnwrap, NoPanics, NoResultDiscards, NoSocketUnwraps};
use rules::threads::ThreadLifecycle;
use rules::{Rule, WorkspaceRule};

// ---------------------------------------------------------------------------
// Tree walking and rule wiring
// ---------------------------------------------------------------------------

/// Collects `.rs` files under `dir` recursively, sorted for stable output.
fn rs_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            out.extend(rs_files(&path));
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out
}

/// Reads and lexes one file; unreadable paths are silently skipped (the
/// scope lists name files that may not exist in every tree).
fn lex(path: &Path) -> Option<SourceFile> {
    let src = fs::read_to_string(path).ok()?;
    Some(SourceFile::lex(path, &src))
}

/// Runs a set of per-file rules over every file in `paths`.
fn apply(active: &[&dyn Rule], paths: &[PathBuf], out: &mut Vec<Violation>) {
    for path in paths {
        if let Some(file) = lex(path) {
            for rule in active {
                rule.check(&file, out);
            }
        }
    }
}

/// The concurrency scope shared by the lock-order (R10) and
/// atomic-ordering (R11) audits: the executor, the server, and the shared
/// index wrapper — every file that holds a `Mutex` or an atomic.
fn concurrency_scope(root: &Path) -> Vec<PathBuf> {
    let mut paths = rs_files(&root.join("crates/exec/src"));
    paths.extend(rs_files(&root.join("crates/serve/src")));
    let shared = root.join("crates/index/src/shared.rs");
    if shared.is_file() {
        paths.push(shared);
    }
    paths
}

/// The rule → scope wiring for this repository, rooted at `root`.
fn run_check(root: &Path) -> Vec<Violation> {
    let mut out = Vec::new();

    // R1 + R8: panic-free, discard-free library code in the algorithm,
    // execution, serving, and durability crates.
    let panic_scope: Vec<PathBuf> = [
        "crates/trajectory/src",
        "crates/index/src",
        "crates/core/src",
        "crates/exec/src",
        "crates/serve/src",
        "crates/wal/src",
    ]
    .iter()
    .flat_map(|dir| rs_files(&root.join(dir)))
    .collect();
    apply(&[&NoPanics, &NoResultDiscards], &panic_scope, &mut out);

    // R13: the WAL crate's crash-safety argument is fsync discipline —
    // every writable file handle must reach a durability barrier in the
    // function that created it.
    apply(
        &[&UnsyncedHandles],
        &rs_files(&root.join("crates/wal/src")),
        &mut out,
    );

    // R2: cast-free binary-format modules (metric.rs carries the metric
    // tree's snapshot image codec).
    let codec_scope: Vec<PathBuf> = [
        "codec.rs",
        "persist.rs",
        "pagestore.rs",
        "checksum.rs",
        "metric.rs",
    ]
    .iter()
    .map(|name| root.join("crates/index/src").join(name))
    .collect();
    apply(&[&NoLossyCasts], &codec_scope, &mut out);

    // R3: attributes on every crate root (workspace crates + root package).
    let mut roots = vec![root.join("src/lib.rs")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            for candidate in ["src/lib.rs", "src/main.rs"] {
                let p = dir.join(candidate);
                if p.is_file() {
                    roots.push(p);
                    break;
                }
            }
        }
    }
    apply(&[&CrateRootAttrs], &roots, &mut out);

    // R4/R5/R7: all library source. The tolerance module is the R4
    // allowlist; mst-bench plus the executor's clock module are the R5
    // allowlist; xtask scans everything but itself (its sources quote the
    // forbidden patterns in diagnostics and fixtures).
    let float_allowlist = root.join("crates/trajectory/src/float.rs");
    let clock_allowlist = root.join("crates/exec/src/clock.rs");
    let mut lib_dirs = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs {
            if dir.file_name().is_some_and(|n| n == "xtask") {
                continue;
            }
            lib_dirs.push(dir.join("src"));
        }
    }
    for dir in &lib_dirs {
        let in_bench = dir.ends_with("bench/src");
        for path in rs_files(dir) {
            let Some(file) = lex(&path) else { continue };
            if path != float_allowlist {
                NoFloatEquality.check(&file, &mut out);
            }
            if !in_bench && path != clock_allowlist {
                NoClocks.check(&file, &mut out);
            }
            NoLockUnwrap.check(&file, &mut out);
        }
    }

    // R6: the deprecated pre-builder query methods are gone from the
    // workspace entirely; nothing may reintroduce them. Examples and
    // integration tests are user-facing showcase code, so they are held
    // to the same standard as the libraries.
    let mut r6_files: Vec<PathBuf> = lib_dirs.iter().flat_map(|d| rs_files(d)).collect();
    r6_files.extend(rs_files(&root.join("examples")));
    r6_files.extend(rs_files(&root.join("tests")));
    apply(&[&NoDeprecatedQueryCalls], &r6_files, &mut out);

    // R9 + R12: socket results are never unwrapped and threads are never
    // detached, in all library source plus the examples. Integration
    // tests are test code and may unwrap.
    let mut r9_files: Vec<PathBuf> = lib_dirs.iter().flat_map(|d| rs_files(d)).collect();
    r9_files.extend(rs_files(&root.join("examples")));
    apply(&[&NoSocketUnwraps, &ThreadLifecycle], &r9_files, &mut out);

    // R7 also covers the examples — showcase code must model the poisoning
    // discipline.
    apply(
        &[&NoLockUnwrap],
        &rs_files(&root.join("examples")),
        &mut out,
    );

    // R10 + R11: the concurrency audits run over the executor, the
    // server, and the shared index wrapper as one set (the lock graph is
    // inter-procedural across files).
    let conc: Vec<SourceFile> = concurrency_scope(root)
        .iter()
        .filter_map(|p| lex(p))
        .collect();
    for file in &conc {
        AtomicOrdering.check(file, &mut out);
    }
    LockOrder.check(&conc, &mut out);

    report::sort(&mut out);
    out
}

// ---------------------------------------------------------------------------
// The atomic-site inventory
// ---------------------------------------------------------------------------

/// Extracts every atomic site in the concurrency scope, grouped by file.
fn run_atomics(root: &Path) -> Vec<(PathBuf, Vec<AtomicSite>)> {
    let mut out = Vec::new();
    for path in concurrency_scope(root) {
        if let Some(file) = lex(&path) {
            let found = sites(&file);
            if !found.is_empty() {
                out.push((path, found));
            }
        }
    }
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// Renders the inventory as a deterministic JSON array of
/// `{file, line, op, orderings}` objects.
fn atomics_json(inventory: &[(PathBuf, Vec<AtomicSite>)]) -> String {
    let mut out = String::from("[");
    let mut first = true;
    for (file, found) in inventory {
        for site in found {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n  {\"file\": \"");
            out.push_str(&report::escape(&file.display().to_string()));
            out.push_str("\", \"line\": ");
            out.push_str(&site.line.to_string());
            out.push_str(", \"op\": \"");
            out.push_str(&report::escape(&site.op));
            out.push_str("\", \"orderings\": [");
            for (i, o) in site.orderings.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('"');
                out.push_str(&report::escape(o));
                out.push('"');
            }
            out.push_str("]}");
        }
    }
    if !first {
        out.push('\n');
    }
    out.push(']');
    out
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- <check|atomics> [--json] [--root <path>]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut json = false;
    let mut root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."));
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => return usage(),
            },
            "--json" => json = true,
            "check" | "atomics" if cmd.is_none() => cmd = Some(arg.as_str()),
            _ => return usage(),
        }
    }
    let Some(cmd) = cmd else {
        return usage();
    };
    // A mistyped --root must not silently scan nothing and report clean.
    if !root.join("crates").is_dir() {
        eprintln!(
            "xtask {cmd}: {} does not contain a `crates/` directory; nothing to scan",
            root.display()
        );
        return ExitCode::from(2);
    }
    if cmd == "atomics" {
        let inventory = run_atomics(&root);
        if json {
            println!("{}", atomics_json(&inventory));
        } else {
            let mut n = 0usize;
            for (file, found) in &inventory {
                for site in found {
                    n += 1;
                    println!(
                        "{}:{}: .{}({})",
                        file.display(),
                        site.line,
                        site.op,
                        site.orderings.join(", ")
                    );
                }
            }
            println!("xtask atomics: {n} site(s)");
        }
        return ExitCode::SUCCESS;
    }
    let violations = run_check(&root);
    if json {
        // JSON goes to stdout for archiving; the human diagnostics still
        // reach the terminal via stderr so a failing CI log stays readable.
        println!("{}", report::to_json(&violations));
    }
    if violations.is_empty() {
        if !json {
            println!("xtask check: clean");
        }
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("{v}");
        }
        eprintln!("xtask check: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

// ---------------------------------------------------------------------------
// Integration tests over the committed fixture trees
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree")
    }

    fn tree_clean() -> PathBuf {
        Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/tree_clean")
    }

    #[test]
    fn seeded_tree_trips_every_rule() {
        let vs = run_check(&tree());
        let hit = |rule: &str, file: &str, line: usize| {
            vs.iter()
                .any(|v| v.rule == rule && v.file.ends_with(file) && v.line == line)
        };
        assert!(hit("R1", "trajectory/src/lib.rs", 6), "{vs:#?}");
        assert!(hit("R8", "trajectory/src/lib.rs", 7), "{vs:#?}");
        assert!(hit("R2", "index/src/codec.rs", 4), "{vs:#?}");
        // The metric tree's codec file sits in the R2 scope and the
        // R1/R8 library sweep: dropping `metric.rs` from either fails
        // here.
        assert!(hit("R1", "index/src/metric.rs", 5), "{vs:#?}");
        assert!(hit("R8", "index/src/metric.rs", 6), "{vs:#?}");
        assert!(hit("R2", "index/src/metric.rs", 11), "{vs:#?}");
        assert!(hit("R3", "index/src/lib.rs", 1), "{vs:#?}");
        assert_eq!(vs.iter().filter(|v| v.rule == "R3").count(), 2, "{vs:#?}");
        assert!(hit("R4", "core/src/lib.rs", 6), "{vs:#?}");
        assert!(hit("R5", "datagen/src/lib.rs", 5), "{vs:#?}");
        assert!(hit("R6", "examples/demo.rs", 4), "{vs:#?}");
        assert!(hit("R7", "bench/src/lib.rs", 10), "{vs:#?}");
        assert!(hit("R9", "serve/src/server.rs", 4), "{vs:#?}");
        assert!(hit("R1", "serve/src/server.rs", 4), "{vs:#?}");
        assert!(hit("R10", "exec/src/queue.rs", 6), "{vs:#?}");
        assert!(hit("R11", "index/src/shared.rs", 5), "{vs:#?}");
        assert!(hit("R12", "exec/src/lib.rs", 8), "{vs:#?}");
        // The wire-protocol-v2 readiness loop is pinned inside the
        // concurrency scope: narrowing `concurrency_scope` or the R12
        // library set past `serve/src/mux.rs` fails here.
        assert!(hit("R11", "serve/src/mux.rs", 6), "{vs:#?}");
        assert!(hit("R12", "serve/src/mux.rs", 7), "{vs:#?}");
        // The durability rule covers the WAL crate: dropping
        // `crates/wal/src` from the R13 scope fails here.
        assert!(hit("R13", "wal/src/io.rs", 6), "{vs:#?}");
        assert_eq!(vs.len(), 20, "{vs:#?}");
        // The report comes back in canonical order.
        let mut sorted = vs.clone();
        report::sort(&mut sorted);
        assert_eq!(vs, sorted);
        // The seeded bench crate uses `std::time` without tripping R5
        // (bench is the allowlist) — only its lock unwrap is reported.
        assert!(!vs
            .iter()
            .any(|v| v.rule == "R5" && v.file.ends_with("bench/src/lib.rs")));
    }

    #[test]
    fn clean_tree_reports_nothing() {
        let vs = run_check(&tree_clean());
        assert!(vs.is_empty(), "{vs:#?}");
    }

    #[test]
    fn json_report_is_deterministic() {
        let one = report::to_json(&run_check(&tree()));
        let two = report::to_json(&run_check(&tree()));
        assert_eq!(one, two);
        assert!(one.contains("\"rule\": \"R10\""), "{one}");
        assert!(one.contains("\"rule\": \"R11\""), "{one}");
        assert!(one.contains("\"rule\": \"R12\""), "{one}");
        assert!(one.contains("\"rule\": \"R13\""), "{one}");
    }

    #[test]
    fn atomics_inventory_lists_the_seeded_site() {
        let inventory = run_atomics(&tree());
        assert_eq!(inventory.len(), 2, "{inventory:?}");
        let (file, found) = &inventory[0];
        assert!(file.ends_with("index/src/shared.rs"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].op, "fetch_add");
        assert_eq!(found[0].orderings, ["Relaxed"]);
        // The mux readiness loop shows up in the inventory too — the
        // concurrency scope covers every `serve/src` file.
        let (file, found) = &inventory[1];
        assert!(file.ends_with("serve/src/mux.rs"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].op, "fetch_add");
        let js = atomics_json(&inventory);
        assert!(js.contains("\"op\": \"fetch_add\""), "{js}");
        assert!(js.contains("\"orderings\": [\"Relaxed\"]"), "{js}");
        assert_eq!(atomics_json(&[]), "[]");
    }

    #[test]
    fn missing_tree_scans_nothing() {
        let vs = run_check(&tree().join("no-such-dir"));
        assert!(vs.is_empty(), "{vs:#?}");
    }
}
