//! A minimal Rust lexer producing a spanned token stream.
//!
//! The old scanner worked line-by-line with ad-hoc literal stripping, which
//! mis-read lifetimes as char-literal openers and only understood raw
//! strings with exactly one `#`. This module lexes the whole file in one
//! pass and yields two coordinated views:
//!
//! * a token stream ([`Token`]) with 1-based start lines, used by the
//!   token-aware rules (float equality, lock order, atomics, threads);
//! * sanitised per-line text ([`Line`]) where string/char bodies are
//!   blanked and comments removed, used by the pattern-matching rules.
//!
//! The lexer understands raw strings with any number of `#`s (`r##"…"##`),
//! byte and byte-raw strings, multi-line strings (interior lines produce no
//! sanitised text at all), lifetimes vs char literals, and *nested* block
//! comments (Rust block comments nest, unlike C).
//!
//! Two justification-comment tags are recognised and recorded per line:
//! `// invariant: <why>` (rules R1/R2/R6–R9, R12, R13) and `// ordering: <why>`
//! (rule R11). The grammar is documented in `DESIGN.md` § Static analysis.

use std::path::{Path, PathBuf};

/// What a [`Token`] is. Identifier text is kept; literal bodies are not
/// (no rule needs them, and dropping them is what makes the sanitised
/// views safe to pattern-match).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `lock`, `Relaxed`, ...).
    Ident(String),
    /// A lifetime or loop label such as `'a` (name without the quote).
    Lifetime(String),
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A string literal of any flavour (plain, raw, byte, byte-raw).
    Str,
    /// A numeric literal; `float` is true for fractional, exponent, or
    /// `f32`/`f64`-suffixed forms.
    Number {
        /// True when the literal is floating-point shaped.
        float: bool,
    },
    /// Punctuation, maximal-munched (`==`, `..=`, `::`, `->`, ...).
    Punct(String),
}

/// A token plus the 1-based line its first character sits on.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The classified token.
    pub kind: TokenKind,
    /// 1-based start line.
    pub line: usize,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True when this token is the exact punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokenKind::Punct(s) if s == p)
    }

    /// True when this token is the exact identifier `w`.
    pub fn is_ident(&self, w: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s == w)
    }
}

/// Which justification-comment tag a rule accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// `// invariant: <why this cannot fire>` — panics, casts, discards.
    Invariant,
    /// `// ordering: <why relaxed is sound>` — atomic-ordering audit.
    Ordering,
}

/// One source line after sanitisation.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line with comments removed and literal bodies blanked out.
    pub code: String,
    /// Whether the raw line carries an `// invariant:` justification.
    pub invariant: bool,
    /// Whether the raw line carries an `// ordering:` justification.
    pub ordering: bool,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// A lexed source file: the token stream plus the per-line views every
/// rule consumes.
#[derive(Debug)]
pub struct SourceFile {
    /// Path the file was read from (used verbatim in diagnostics).
    pub path: PathBuf,
    /// The full token stream, in source order.
    pub tokens: Vec<Token>,
    /// Sanitised lines, index `n - 1` for line `n`.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Lexes `source`, attributing diagnostics to `path`.
    pub fn lex(path: &Path, source: &str) -> SourceFile {
        let mut lx = Lexer::new(source);
        lx.run();
        let mut lines: Vec<Line> = lx
            .texts
            .into_iter()
            .enumerate()
            .map(|(i, code)| Line {
                number: i + 1,
                code,
                invariant: lx.invariant[i],
                ordering: lx.ordering[i],
                in_test: false,
            })
            .collect();
        mark_cfg_test(&mut lines);
        SourceFile {
            path: path.to_path_buf(),
            tokens: lx.tokens,
            lines,
        }
    }

    /// Whether 1-based `line` sits inside a `#[cfg(test)]` item. Out-of-range
    /// lines answer `false`.
    pub fn in_test(&self, line: usize) -> bool {
        line.checked_sub(1)
            .and_then(|i| self.lines.get(i))
            .is_some_and(|l| l.in_test)
    }

    /// Whether 1-based `line` carries the justification `tag`, either on the
    /// line itself or in the comment block (comment-only or blank lines)
    /// immediately above it. This lets a justification live on its own line,
    /// where rustfmt keeps it and multi-line explanations stay readable.
    pub fn justified(&self, line: usize, tag: Tag) -> bool {
        let has = |l: &Line| match tag {
            Tag::Invariant => l.invariant,
            Tag::Ordering => l.ordering,
        };
        let Some(i) = line.checked_sub(1).filter(|&i| i < self.lines.len()) else {
            return false;
        };
        if has(&self.lines[i]) {
            return true;
        }
        let mut j = i;
        while j > 0 && self.lines[j - 1].code.trim().is_empty() {
            j -= 1;
            if has(&self.lines[j]) {
                return true;
            }
        }
        false
    }

    /// The file stem (`queue` for `.../queue.rs`), used to qualify lock
    /// names so same-named fields in different files stay distinct.
    pub fn stem(&self) -> String {
        self.path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "?".to_string())
    }
}

/// Marks `#[cfg(test)]` items by brace depth. A pending attribute attaches
/// to the next `{`-opened item; a `;` before any brace cancels it (the
/// attribute sat on a brace-less item such as a `use`).
fn mark_cfg_test(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut skip_depth: Option<i64> = None;
    for line in lines.iter_mut() {
        let mut in_test = skip_depth.is_some();
        if line.code.contains("#[cfg(test)]") || line.code.contains("#[cfg(all(test") {
            pending = true;
            in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending && skip_depth.is_none() {
                        skip_depth = Some(depth);
                        pending = false;
                        in_test = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if skip_depth == Some(depth) {
                        skip_depth = None;
                    }
                }
                ';' => {
                    if pending && skip_depth.is_none() {
                        pending = false;
                        in_test = true;
                    }
                }
                _ => {}
            }
        }
        line.in_test = in_test || skip_depth.is_some();
    }
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    tokens: Vec<Token>,
    texts: Vec<String>,
    invariant: Vec<bool>,
    ordering: Vec<bool>,
}

impl Lexer {
    fn new(source: &str) -> Lexer {
        Lexer {
            chars: source.chars().collect(),
            i: 0,
            line: 1,
            tokens: Vec::new(),
            texts: vec![String::new()],
            invariant: vec![false],
            ordering: vec![false],
        }
    }

    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    /// Consumes one char, tracking line boundaries. Consumed chars are NOT
    /// echoed to the sanitised text; callers decide what to emit.
    fn bump(&mut self) -> Option<char> {
        let c = *self.chars.get(self.i)?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.texts.push(String::new());
            self.invariant.push(false);
            self.ordering.push(false);
        }
        Some(c)
    }

    fn text(&mut self, s: &str) {
        if let Some(last) = self.texts.last_mut() {
            last.push_str(s);
        }
    }

    fn token(&mut self, kind: TokenKind, line: usize) {
        self.tokens.push(Token { kind, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.bump();
            } else if c.is_whitespace() {
                self.bump();
                let mut buf = [0u8; 4];
                self.text(c.encode_utf8(&mut buf));
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment();
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment();
            } else if (c == 'r' || c == 'b') && self.try_literal_prefix() {
                // handled inside
            } else if c == '"' {
                self.string();
            } else if c == '\'' {
                self.quote();
            } else if c.is_ascii_digit() {
                self.number();
            } else if c.is_alphanumeric() || c == '_' {
                self.ident();
            } else {
                self.punct();
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'` when the
    /// cursor sits on the `r`/`b`; returns false when it is a plain
    /// identifier after all.
    fn try_literal_prefix(&mut self) -> bool {
        let first = self.peek(0);
        let mut k = 1;
        if first == Some('b') {
            match self.peek(1) {
                Some('\'') => {
                    // Byte char literal: consume `b`, then the char body.
                    self.bump();
                    self.quote_char_body();
                    return true;
                }
                Some('r') => k = 2,
                Some('"') => {
                    // b"…" supports escapes like a normal string.
                    self.bump();
                    self.string();
                    return true;
                }
                _ => return false,
            }
        }
        // Now expecting `#`* then `"` (raw string, possibly byte-raw).
        let mut hashes = 0;
        while self.peek(k) == Some('#') {
            hashes += 1;
            k += 1;
        }
        if self.peek(k) != Some('"') {
            return false;
        }
        let line = self.line;
        for _ in 0..=k {
            self.bump(); // prefix + opening quote
        }
        // Raw body: no escapes; ends at `"` followed by `hashes` hashes.
        loop {
            match self.bump() {
                None => break,
                Some('"') => {
                    let mut ok = true;
                    for h in 0..hashes {
                        if self.peek(h) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        break;
                    }
                }
                Some(_) => {}
            }
        }
        self.token(TokenKind::Str, line);
        self.text("\"\"");
        true
    }

    /// A plain (escaped) string literal; the cursor sits on the opening `"`.
    /// May span lines: interior lines contribute no sanitised text.
    fn string(&mut self) {
        let line = self.line;
        self.bump();
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    self.bump();
                }
                Some('"') => break,
                Some(_) => {}
            }
        }
        self.token(TokenKind::Str, line);
        self.text("\"\"");
    }

    /// The body of a char literal after an optional `b`; cursor on `'`.
    fn quote_char_body(&mut self) {
        let line = self.line;
        self.bump(); // opening '
        if self.peek(0) == Some('\\') {
            self.bump();
            self.bump(); // the escaped char
            while let Some(c) = self.peek(0) {
                // Multi-char escapes: \x7f, \u{…}
                self.bump();
                if c == '\'' {
                    break;
                }
            }
        } else {
            self.bump(); // the char
            self.bump(); // closing '
        }
        self.token(TokenKind::Char, line);
        self.text("''");
    }

    /// Disambiguates `'a` (lifetime) from `'a'` (char literal); cursor on `'`.
    fn quote(&mut self) {
        if self.peek(1) == Some('\\') {
            self.quote_char_body();
            return;
        }
        let is_ident = |c: char| c.is_alphanumeric() || c == '_';
        if self.peek(1).is_some_and(is_ident) {
            // Scan the identifier run after the quote.
            let mut k = 2;
            while self.peek(k).is_some_and(is_ident) {
                k += 1;
            }
            if self.peek(k) == Some('\'') {
                self.quote_char_body();
            } else {
                let line = self.line;
                self.bump(); // '
                let mut name = String::new();
                for _ in 1..k {
                    if let Some(c) = self.bump() {
                        name.push(c);
                    }
                }
                self.text(&format!("'{name}"));
                self.token(TokenKind::Lifetime(name), line);
            }
        } else if self.peek(2) == Some('\'') {
            // Non-identifier char such as `' '` or `'('`.
            self.quote_char_body();
        } else {
            // A stray quote; emit as punctuation and move on.
            let line = self.line;
            self.bump();
            self.text("'");
            self.token(TokenKind::Punct("'".to_string()), line);
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let mut float = false;
        let mut consumed = String::new();
        let take = |lx: &mut Lexer, out: &mut String| {
            if let Some(c) = lx.bump() {
                out.push(c);
            }
        };
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            take(self, &mut consumed);
            take(self, &mut consumed);
            while self
                .peek(0)
                .is_some_and(|c| c.is_ascii_hexdigit() || c == '_')
            {
                take(self, &mut consumed);
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                take(self, &mut consumed);
            }
            // A fractional point, unless it starts a `..` range or a method
            // call on the literal.
            if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                take(self, &mut consumed);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    take(self, &mut consumed);
                }
            }
            if matches!(self.peek(0), Some('e' | 'E'))
                && self
                    .peek(1)
                    .is_some_and(|c| c.is_ascii_digit() || c == '+' || c == '-')
            {
                float = true;
                take(self, &mut consumed);
                take(self, &mut consumed);
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == '_') {
                    take(self, &mut consumed);
                }
            }
        }
        // Type suffix: `u32`, `f64`, ...
        let mut suffix = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            if let Some(c) = self.bump() {
                suffix.push(c);
            }
        }
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        consumed.push_str(&suffix);
        self.text(&consumed);
        self.token(TokenKind::Number { float }, line);
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut word = String::new();
        while self
            .peek(0)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            if let Some(c) = self.bump() {
                word.push(c);
            }
        }
        self.text(&word);
        self.token(TokenKind::Ident(word), line);
    }

    /// Maximal-munch punctuation so `==` never splits into `=` `=` and
    /// `..=` never leaves a stray `=` to pair with a neighbour.
    fn punct(&mut self) {
        const THREE: [&str; 4] = ["<<=", ">>=", "..=", "..."];
        const TWO: [&str; 19] = [
            "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
            "^=", "&=", "|=", "<<", "..",
        ];
        let line = self.line;
        let at = |lx: &Lexer, s: &str| s.chars().enumerate().all(|(k, c)| lx.peek(k) == Some(c));
        let emit = |lx: &mut Lexer, s: &str| {
            for _ in 0..s.chars().count() {
                lx.bump();
            }
            lx.text(s);
            lx.token(TokenKind::Punct(s.to_string()), line);
        };
        for p in THREE {
            if at(self, p) {
                emit(self, p);
                return;
            }
        }
        // `>>` is deliberately absent from TWO: keeping it split avoids
        // mis-lexing nested generics `Vec<Vec<u8>>`; no rule needs `>>`.
        for p in TWO {
            if at(self, p) {
                emit(self, p);
                return;
            }
        }
        if let Some(c) = self.peek(0) {
            let mut buf = [0u8; 4];
            let s = c.encode_utf8(&mut buf).to_string();
            emit(self, &s);
        }
    }

    fn line_comment(&mut self) {
        // Collect the comment text (for justification tags), then drop it.
        let line = self.line;
        let mut body = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
            body.push(c);
        }
        let tag = body.trim_start_matches('/').trim_start();
        let idx = line - 1;
        if tag.starts_with("invariant:") {
            self.invariant[idx] = true;
        }
        if tag.starts_with("ordering:") {
            self.ordering[idx] = true;
        }
    }

    /// Block comments nest in Rust: `/* a /* b */ c */` is one comment.
    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match self.peek(0) {
                None => break,
                Some('/') if self.peek(1) == Some('*') => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek(1) == Some('/') => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {
                    self.bump();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> SourceFile {
        SourceFile::lex(Path::new("t.rs"), src)
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let f =
            lex("let s = \"contains .unwrap() and panic!\"; // and .expect( here\nlet c = 'x';");
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[0].code.contains(".expect("));
        assert_eq!(f.lines[1].code, "let c = '';");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = lex("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(f.lines[0].code.contains("<'a>"), "{}", f.lines[0].code);
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| matches!(t.kind, TokenKind::Lifetime(_)))
                .count(),
            3
        );
        assert!(!f.tokens.iter().any(|t| t.kind == TokenKind::Char));
        // The inherited bug class: `'a>(…` used to be eaten as a char
        // literal, swallowing the rest of the signature.
        let g = lex("impl<'a, T> Foo<'a, T> { fn g(&'a self) { x.unwrap(); } }");
        assert!(g.lines[0].code.contains(".unwrap()"), "{}", g.lines[0].code);
    }

    #[test]
    fn char_literals_of_all_shapes_are_blanked() {
        let f = lex(r"let a = 'x'; let b = '\n'; let c = ' '; let d = '\u{7f}'; let e = b'q';");
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            5
        );
        assert!(!f.lines[0].code.contains('x'), "{}", f.lines[0].code);
    }

    #[test]
    fn raw_strings_with_any_hash_count_are_stripped() {
        let f = lex("let s = r\"panic!\"; let t = r#\"x.unwrap()\"#; let u = r##\"a \"# b\"##; y");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(f.lines[0].code.ends_with('y'), "{}", f.lines[0].code);
        let g = lex("let v = br#\"bytes.unwrap()\"#;");
        assert!(!g.lines[0].code.contains(".unwrap()"));
    }

    #[test]
    fn multi_line_strings_leak_nothing() {
        let f = lex("let s = \"line one panic!\nline two .unwrap()\nend\"; tail()");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(f.lines[1].code.is_empty(), "{:?}", f.lines[1].code);
        assert!(f.lines[2].code.contains("tail()"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = lex("a /* panic!\n /* nested */ still panic!\n*/ b.unwrap()");
        assert!(!f.lines[0].code.contains("panic!"));
        assert!(!f.lines[1].code.contains("panic!"));
        assert!(f.lines[2].code.contains(".unwrap()"));
    }

    #[test]
    fn justification_tags_are_recorded_per_line() {
        let f = lex(
            "x.unwrap(); // invariant: validated above\ny.load(o); // ordering: monotonic\nz();",
        );
        assert!(f.lines[0].invariant && !f.lines[0].ordering);
        assert!(f.lines[1].ordering && !f.lines[1].invariant);
        assert!(!f.lines[2].invariant && !f.lines[2].ordering);
        assert!(f.justified(1, Tag::Invariant));
        assert!(f.justified(2, Tag::Ordering));
        assert!(!f.justified(3, Tag::Invariant));
    }

    #[test]
    fn justification_blocks_above_count() {
        let f = lex(
            "// ordering: monotonic counter, readers tolerate staleness\nc.fetch_add(1, Relaxed);",
        );
        assert!(f.justified(2, Tag::Ordering));
        let g = lex("// ordering: only for the line below\nlet a = 1;\nc.load(Relaxed);");
        assert!(!g.justified(3, Tag::Ordering));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let f = lex(
            "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\nfn t() { y.unwrap(); }\n}\nfn lib2() { z.unwrap(); }",
        );
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, [false, true, true, true, true, false]);
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_leak() {
        let f = lex("#[cfg(test)]\nuse std::collections::HashMap;\nfn lib() { x.unwrap(); }");
        assert!(f.lines[1].in_test);
        assert!(!f.lines[2].in_test, "pending attr leaked past the `;`");
    }

    #[test]
    fn numbers_classify_floats() {
        let f =
            lex("let a = 1; let b = 2.5; let c = 1e-9; let d = 3f64; let e = 0x10; let g = 7_000;");
        let floats: Vec<bool> = f
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Number { float } => Some(float),
                _ => None,
            })
            .collect();
        assert_eq!(floats, [false, true, true, true, false, false]);
    }

    #[test]
    fn punctuation_is_maximal_munched() {
        let f = lex("if x == 0.5 && y != 2.0 { for i in 0..=9 { a += i; } }");
        assert!(f.tokens.iter().any(|t| t.is_punct("==")));
        assert!(f.tokens.iter().any(|t| t.is_punct("!=")));
        assert!(f.tokens.iter().any(|t| t.is_punct("..=")));
        assert!(f.tokens.iter().any(|t| t.is_punct("&&")));
        assert!(!f.tokens.iter().any(|t| t.is_punct("=")));
    }

    #[test]
    fn token_lines_are_one_based_and_accurate() {
        let f = lex("first()\nsecond()\n\nfourth()");
        let on = |w: &str| f.tokens.iter().find(|t| t.is_ident(w)).map(|t| t.line);
        assert_eq!(on("first"), Some(1));
        assert_eq!(on("second"), Some(2));
        assert_eq!(on("fourth"), Some(4));
    }
}
