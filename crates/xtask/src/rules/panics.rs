//! The panic-shaped rules: R1 (no panicking constructs), R7 (no lock
//! unwraps), R8 (no discarded fallible calls), R9 (no socket unwraps).
//!
//! All four are pattern rules over the sanitised line view; `#[cfg(test)]`
//! code is exempt and a line can opt out with an `// invariant:`
//! justification (see `DESIGN.md` § Static analysis).

use crate::lexer::{SourceFile, Tag};
use crate::report::Violation;
use crate::rules::Rule;

fn violation(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.path.clone(),
        line,
        rule,
        message,
    }
}

/// R1: no `unwrap()` / `expect(` / `panic!` / `todo!` / `unimplemented!` /
/// `unreachable!` in library code.
pub struct NoPanics;

const PANIC_PATTERNS: [&str; 6] = [
    ".unwrap()",
    ".expect(",
    "panic!",
    "todo!",
    "unimplemented!",
    "unreachable!",
];

impl Rule for NoPanics {
    fn id(&self) -> &'static str {
        "R1"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for line in &file.lines {
            if line.in_test || file.justified(line.number, Tag::Invariant) {
                continue;
            }
            for pat in PANIC_PATTERNS {
                if line.code.contains(pat) {
                    out.push(violation(
                        file,
                        line.number,
                        self.id(),
                        format!(
                            "`{pat}` in library code; return an error or add \
                             `// invariant: <why this cannot fire>`"
                        ),
                    ));
                }
            }
        }
    }
}

/// R7: unwrapping a lock guard. Poisoning (a panic on another thread while
/// it held the guard) must become an error — `IndexError::Poisoned` in the
/// index layer — not a second panic that takes the whole pool down.
pub struct NoLockUnwrap;

const LOCK_UNWRAP_PATTERNS: [&str; 3] =
    [".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"];

impl Rule for NoLockUnwrap {
    fn id(&self) -> &'static str {
        "R7"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for line in &file.lines {
            if line.in_test || file.justified(line.number, Tag::Invariant) {
                continue;
            }
            for pat in LOCK_UNWRAP_PATTERNS {
                if line.code.contains(pat) {
                    out.push(violation(
                        file,
                        line.number,
                        self.id(),
                        format!(
                            "`{pat}` panics on a poisoned lock; map the \
                             `PoisonError` to an error (e.g. \
                             `IndexError::Poisoned`) instead"
                        ),
                    ));
                }
            }
        }
    }
}

/// R8: a discarded fallible call. `let _ = call(...)` and a
/// statement-ending `.ok();` both swallow a `Result` without looking at
/// it — with the fault-injection layer in place, that is how torn pages
/// and checksum mismatches vanish. The right-hand side must be
/// call-shaped (starts with an identifier and applies arguments) so the
/// idiomatic unused-parameter silencers (`let _ = n;`,
/// `let _ = (bound, n);`, `let _ = &reason;`) stay legal.
pub struct NoResultDiscards;

impl Rule for NoResultDiscards {
    fn id(&self) -> &'static str {
        "R8"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for line in &file.lines {
            if line.in_test || file.justified(line.number, Tag::Invariant) {
                continue;
            }
            let code = line.code.trim();
            for marker in ["let _ = ", "let _ ="] {
                let Some(pos) = code.find(marker) else {
                    continue;
                };
                let rhs = code[pos + marker.len()..].trim_start();
                if rhs.starts_with(|c: char| c.is_alphanumeric() || c == '_') && rhs.contains('(') {
                    out.push(violation(
                        file,
                        line.number,
                        self.id(),
                        "`let _ =` discards a call result; handle the \
                         `Result` (or justify with `// invariant:`)"
                            .to_string(),
                    ));
                }
                break;
            }
            // A trailing `.ok();` is only a discard when nothing receives
            // the value: assignments and `return` statements keep it.
            if code.ends_with(".ok();") && !code.contains('=') && !code.starts_with("return") {
                out.push(violation(
                    file,
                    line.number,
                    self.id(),
                    "statement-ending `.ok();` swallows an error; handle \
                     the `Result` (or justify with `// invariant:`)"
                        .to_string(),
                ));
            }
        }
    }
}

/// R9: socket-bearing tokens. A line that both touches one of these and
/// unwraps is almost certainly unwrapping the socket call's result. The
/// method patterns carry a leading dot so ordinary identifiers (a local
/// named `accept`, `ExecHandle::shutdown()`) stay out of scope.
pub struct NoSocketUnwraps;

const SOCKET_TOKENS: [&str; 16] = [
    "TcpListener",
    "TcpStream",
    "UdpSocket",
    ".accept()",
    ".connect(",
    ".local_addr()",
    ".peer_addr()",
    ".set_read_timeout(",
    ".set_write_timeout(",
    ".set_nodelay(",
    ".set_nonblocking(",
    ".set_ttl(",
    ".take_error()",
    ".try_clone()",
    ".shutdown(Shutdown",
    ".incoming()",
];

impl Rule for NoSocketUnwraps {
    fn id(&self) -> &'static str {
        "R9"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for line in &file.lines {
            if line.in_test || file.justified(line.number, Tag::Invariant) {
                continue;
            }
            let code = &line.code;
            if !code.contains(".unwrap()") && !code.contains(".expect(") {
                continue;
            }
            if SOCKET_TOKENS.iter().any(|t| code.contains(t)) {
                out.push(violation(
                    file,
                    line.number,
                    self.id(),
                    "socket I/O result unwrapped; peers disconnect and \
                     binds fail in normal operation, so handle the error \
                     (or justify with `// invariant:`)"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::tests::{flagged_lines, run_rule};

    #[test]
    fn r1_fixture_corpus() {
        let bad = run_rule(&NoPanics, include_str!("../../fixtures/r1_bad.rs"));
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R1"));
        let good = run_rule(&NoPanics, include_str!("../../fixtures/r1_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r1_reports_accurate_lines() {
        let src = "fn a() {}\nfn b() { x.unwrap(); }\nfn c() { panic!(\"boom\") }";
        assert_eq!(flagged_lines(&NoPanics, src), [2, 3]);
    }

    #[test]
    fn r1_does_not_flag_unwrap_or_variants() {
        let out = run_rule(
            &NoPanics,
            "let v = x.unwrap_or(0) + y.unwrap_or_else(|| 1);",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r1_invariant_block_above_excuses() {
        let excused = "// invariant: the store caps page ids well below u32::MAX,\n\
                       // so this conversion is lossless.\n\
                       let id = u32::try_from(n).expect(\"capped\");";
        assert!(run_rule(&NoPanics, excused).is_empty());
        let stale = "// invariant: only applies to the line below\n\
                     let a = first();\n\
                     b.unwrap();";
        assert_eq!(flagged_lines(&NoPanics, stale), [3]);
    }

    #[test]
    fn r7_fixture_corpus() {
        let bad = run_rule(&NoLockUnwrap, include_str!("../../fixtures/r7_bad.rs"));
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R7"));
        let good = run_rule(&NoLockUnwrap, include_str!("../../fixtures/r7_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r8_fixture_corpus() {
        let bad = run_rule(&NoResultDiscards, include_str!("../../fixtures/r8_bad.rs"));
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R8"));
        let good = run_rule(&NoResultDiscards, include_str!("../../fixtures/r8_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r9_fixture_corpus() {
        let bad = run_rule(&NoSocketUnwraps, include_str!("../../fixtures/r9_bad.rs"));
        assert_eq!(bad.len(), 6, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R9"));
        let good = run_rule(&NoSocketUnwraps, include_str!("../../fixtures/r9_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r9_covers_socket_option_setters() {
        // The satellite extension: timeout/nodelay setters pair with the
        // unwrap check exactly like accept/connect-shaped tokens.
        for call in [
            "s.set_read_timeout(Some(d)).unwrap();",
            "s.set_write_timeout(None).expect(\"t\");",
            "s.set_nodelay(true).unwrap();",
            "s.set_ttl(64).unwrap();",
            "let s2 = s.try_clone().unwrap();",
        ] {
            assert_eq!(run_rule(&NoSocketUnwraps, call).len(), 1, "{call}");
        }
        // Handled results on the same calls stay legal.
        for call in [
            "s.set_read_timeout(Some(d))?;",
            "if s.set_nodelay(true).is_err() { return; }",
        ] {
            assert!(run_rule(&NoSocketUnwraps, call).is_empty(), "{call}");
        }
    }
}
