//! R11: the atomic-ordering audit.
//!
//! `Ordering::Relaxed` is correct surprisingly often in this workspace —
//! monotone-lattice bound publication, post-join latency marks, stats
//! counters — and incorrect in exactly the places that look the same. The
//! rule forces every Relaxed site in the concurrency scope to carry an
//! `// ordering: <why relaxed is sound>` justification, and exposes a full
//! inventory of atomic sites (`cargo run -p xtask -- atomics`) so a
//! reviewer can audit the memory-ordering story in one listing.
//!
//! A site is an atomic method call (`.load(…)`, `.fetch_min(…)`, …) whose
//! arguments mention an `Ordering` variant; method calls without an
//! ordering argument (e.g. `Vec`-shaped `.swap(a, b)`) are not sites. The
//! justification may sit on any line of the call statement, trail it, or
//! stand in the comment block immediately above it.

use crate::lexer::{SourceFile, Tag, Token, TokenKind};
use crate::report::Violation;
use crate::rules::Rule;

/// Atomic method names whose calls take an `Ordering` argument.
const ATOMIC_OPS: [&str; 12] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "compare_exchange",
    "compare_exchange_weak",
];

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// One atomic operation with the orderings it names.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// 1-based line of the method name.
    pub line: usize,
    /// Last line of the call's argument list (justifications may trail it).
    pub end_line: usize,
    /// The atomic method (`load`, `fetch_min`, ...).
    pub op: String,
    /// Ordering variants named in the arguments, in source order.
    pub orderings: Vec<String>,
}

/// Extracts every atomic site in `file`, in source order.
pub fn sites(file: &SourceFile) -> Vec<AtomicSite> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_punct(".") {
            continue;
        }
        let Some(op) = toks.get(i + 1).and_then(Token::ident) else {
            continue;
        };
        if !ATOMIC_OPS.contains(&op) || !toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        // Scan the argument list to its matching close paren, collecting
        // any Ordering variants named inside.
        let mut depth = 1i32;
        let mut j = i + 3;
        let mut orderings = Vec::new();
        let mut end_line = toks[i + 1].line;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokenKind::Punct(p) if p == "(" => depth += 1,
                TokenKind::Punct(p) if p == ")" => depth -= 1,
                TokenKind::Ident(w) if ORDERINGS.contains(&w.as_str()) => {
                    orderings.push(w.clone());
                }
                _ => {}
            }
            end_line = toks[j].line;
            j += 1;
        }
        if !orderings.is_empty() {
            out.push(AtomicSite {
                line: toks[i + 1].line,
                end_line,
                op: op.to_string(),
                orderings,
            });
        }
    }
    out
}

/// The first line of the statement containing 1-based `line`: walks up
/// while the previous line continues the same expression (does not end in
/// `;`, `{`, or `}` and is not blank).
fn statement_start(file: &SourceFile, line: usize) -> usize {
    let mut l = line;
    while l > 1 {
        let prev = file.lines[l - 2].code.trim_end();
        if prev.is_empty()
            || prev.ends_with(';')
            || prev.ends_with('{')
            || prev.ends_with('}')
            || prev.ends_with(',')
        {
            break;
        }
        l -= 1;
    }
    l
}

/// R11: every `Ordering::Relaxed` in the concurrency scope carries an
/// `// ordering:` justification.
pub struct AtomicOrdering;

impl Rule for AtomicOrdering {
    fn id(&self) -> &'static str {
        "R11"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for site in sites(file) {
            if !site.orderings.iter().any(|o| o == "Relaxed") || file.in_test(site.line) {
                continue;
            }
            let start = statement_start(file, site.line);
            let excused = (start..=site.end_line).any(|l| {
                l.checked_sub(1)
                    .and_then(|i| file.lines.get(i))
                    .is_some_and(|ln| ln.ordering)
            }) || file.justified(start, Tag::Ordering);
            if excused {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line: site.line,
                rule: self.id(),
                message: format!(
                    "`Ordering::Relaxed` on `.{}(…)` without an \
                     `// ordering: <why relaxed is sound>` justification; \
                     explain the handshake or upgrade the ordering",
                    site.op
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::tests::{lex_fixture, run_rule};

    #[test]
    fn r11_fixture_corpus() {
        let bad = run_rule(&AtomicOrdering, include_str!("../../fixtures/r11_bad.rs"));
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R11"));
        let good = run_rule(&AtomicOrdering, include_str!("../../fixtures/r11_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn relaxed_without_justification_is_flagged() {
        let out = run_rule(
            &AtomicOrdering,
            "let v = self.bits.load(Ordering::Relaxed);",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("load"));
    }

    #[test]
    fn stronger_orderings_need_no_justification() {
        for src in [
            "let v = flag.load(Ordering::Acquire);",
            "flag.store(true, Ordering::Release);",
            "let old = flag.swap(true, Ordering::SeqCst);",
        ] {
            assert!(run_rule(&AtomicOrdering, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn justification_placements_all_excuse() {
        for src in [
            // Trailing on the same line.
            "c.fetch_add(1, Ordering::Relaxed); // ordering: monotonic counter",
            // Comment block above the statement.
            "// ordering: monotone lattice, stale reads stay sound\nself.bits.fetch_min(v, Ordering::Relaxed);",
            // Multi-line statement with the comment above its first line.
            "// ordering: thread join supplies the happens-before edge\nself.started_us\n    .fetch_min(now, Ordering::Relaxed);",
        ] {
            assert!(run_rule(&AtomicOrdering, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn bare_relaxed_after_use_import_is_still_a_site() {
        let out = run_rule(&AtomicOrdering, "counter.fetch_add(1, Relaxed);");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn non_atomic_swaps_are_not_sites() {
        assert!(run_rule(&AtomicOrdering, "items.swap(0, 1);").is_empty());
        assert!(run_rule(&AtomicOrdering, "let x = page.load(store)?;").is_empty());
    }

    #[test]
    fn inventory_lists_every_ordering() {
        let f = lex_fixture(
            "a.load(Ordering::Acquire);\nb.compare_exchange(x, y, Ordering::AcqRel, Ordering::Relaxed);",
        );
        let s = sites(&f);
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].op, "load");
        assert_eq!(s[0].orderings, ["Acquire"]);
        assert_eq!(s[1].orderings, ["AcqRel", "Relaxed"]);
    }
}
