//! R10: the inter-procedural lock-order audit.
//!
//! The executor and server layer their Mutexes (job queue, result slots,
//! connection registry, shard index) and a single inconsistent nesting
//! order is a deadlock that no test reliably reproduces. This rule builds
//! a conservative lock graph from the token stream and fails the check on
//! any acquisition cycle.
//!
//! The model, in full (also documented in `DESIGN.md` § Static analysis):
//!
//! * A **lock identity** is `filestem.field` — the receiver identifier of a
//!   `.lock()` call, qualified by the file it appears in. Every Mutex in
//!   this workspace is a private field used only from its defining module,
//!   so the qualification keeps same-named fields in different files
//!   distinct without needing type inference.
//! * A **guard is born** when a `.lock()` result is bound: a plain
//!   `let g = x.lock()…;` holds until its enclosing block closes or an
//!   explicit `drop(g)`; an `if let` / `while let` / `match` head
//!   acquisition holds through that construct's brace group only. A
//!   `.lock()` whose result is consumed in-statement (`.ok()` chains,
//!   call arguments) is a temporary: it creates edges but never holds.
//! * An **edge A → B** is recorded when B is acquired while a guard of A
//!   is live — directly, or through a call: each named call made while A
//!   is held contributes A → L for every lock L in the callee's transitive
//!   lock set (callees resolve by name across the whole scanned set; all
//!   same-named functions are unioned). Only free calls, path calls
//!   (`Type::helper(…)`), and method calls on `self` resolve; a method
//!   call on a local (`stream.shutdown(…)`, `guard.items.len()`)
//!   dispatches on a value the analysis cannot type, so matching it by
//!   bare name would fabricate edges — held guards included, whose lock
//!   is already accounted for.
//! * A **violation** is any cycle: a 2-cycle is the classic AB/BA
//!   inconsistent nesting order, a self-edge is a re-entrant acquisition
//!   (instant deadlock on `std::sync::Mutex`).
//!
//! The analysis is deliberately over-approximate (name-matched calls,
//! guard lifetimes rounded up to block ends) and under-approximate in
//! corners it cannot see (guards smuggled through return values bind at
//! the caller via the same `.lock()` pattern, so the common helper shape
//! is still covered). It is a tripwire against lock-order drift, not a
//! proof of deadlock freedom.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::lexer::{SourceFile, Token, TokenKind};
use crate::report::Violation;
use crate::rules::WorkspaceRule;

/// The whole-workspace lock-order rule.
pub struct LockOrder;

impl WorkspaceRule for LockOrder {
    fn id(&self) -> &'static str {
        "R10"
    }

    fn check(&self, files: &[SourceFile], out: &mut Vec<Violation>) {
        let fns = extract_functions(files);
        let edges = build_edges(&fns);
        report_cycles(self.id(), &edges, out);
    }
}

/// A named call made while zero or more guards were held.
struct CallSite {
    callee: String,
    held: Vec<String>,
    line: usize,
}

/// A held-while-acquiring pair observed inside one function.
struct EdgeRec {
    from: String,
    to: String,
    line: usize,
}

/// Everything the audit extracts from one `fn` body.
struct FnInfo {
    name: String,
    file: PathBuf,
    /// Locks this body acquires directly.
    direct: Vec<String>,
    calls: Vec<CallSite>,
    edges: Vec<EdgeRec>,
}

/// A live guard during the body scan.
struct Guard {
    name: Option<String>,
    lock: String,
    /// The brace depth the guard lives at; popped once depth drops below.
    scope: i32,
}

#[derive(PartialEq, Clone, Copy)]
enum Pend {
    /// `let g = …;` — commits a block-scoped guard at the `;`.
    Plain,
    /// `if let` / `while let` — commits a construct-scoped guard at `{`.
    Cond,
    /// `match head {` — commits an anonymous construct-scoped guard at `{`.
    Head,
}

/// A statement in flight that may become a guard binding.
struct Pending {
    kind: Pend,
    names: Vec<String>,
    lock: Option<String>,
    consumed: bool,
    depth: i32,
    paren: i32,
}

const CALLEE_SKIP: [&str; 24] = [
    "if", "while", "for", "match", "loop", "return", "break", "continue", "let", "fn", "else",
    "move", "in", "as", "where", "impl", "use", "mod", "Some", "Ok", "Err", "None", "drop", "lock",
];

fn extract_functions(files: &[SourceFile]) -> Vec<FnInfo> {
    let mut out = Vec::new();
    for file in files {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("fn") || file.in_test(toks[i].line) {
                continue;
            }
            let Some(name) = toks.get(i + 1).and_then(Token::ident) else {
                continue;
            };
            // The body is the first `{` outside any parens/brackets in the
            // signature; a `;` first means a trait method without a body.
            let mut j = i + 2;
            let mut pdepth = 0i32;
            let mut open = None;
            while j < toks.len() {
                if let TokenKind::Punct(p) = &toks[j].kind {
                    match p.as_str() {
                        "(" | "[" => pdepth += 1,
                        ")" | "]" => pdepth -= 1,
                        "{" if pdepth == 0 => {
                            open = Some(j);
                            break;
                        }
                        ";" if pdepth == 0 => break,
                        _ => {}
                    }
                }
                j += 1;
            }
            if let Some(open) = open {
                out.push(scan_body(file, name, open));
            }
        }
    }
    out
}

/// Walks one function body, tracking live guards, and records direct
/// acquisitions, held-while-acquiring edges, and call sites.
fn scan_body(file: &SourceFile, name: &str, open: usize) -> FnInfo {
    let toks = &file.tokens;
    let stem = file.stem();
    let mut info = FnInfo {
        name: name.to_string(),
        file: file.path.clone(),
        direct: Vec::new(),
        calls: Vec::new(),
        edges: Vec::new(),
    };
    let mut guards: Vec<Guard> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut depth: i32 = 1;
    let mut paren: i32 = 0;
    let mut i = open + 1;
    while i < toks.len() && depth > 0 {
        let tok = &toks[i];
        match &tok.kind {
            TokenKind::Punct(p) => match p.as_str() {
                "{" => {
                    depth += 1;
                    if let Some(pd) = pending.take() {
                        match pd.kind {
                            // A construct head ends at its `{`; commit the
                            // guard scoped to the construct's brace group.
                            Pend::Cond | Pend::Head => {
                                if let (Some(lock), false) = (pd.lock, pd.consumed) {
                                    guards.push(Guard {
                                        name: pd.names.last().cloned(),
                                        lock,
                                        scope: depth,
                                    });
                                }
                            }
                            // A `{` inside a plain let (struct literal,
                            // block expression) does not end the statement.
                            Pend::Plain => pending = Some(pd),
                        }
                    }
                }
                "}" => {
                    depth -= 1;
                    guards.retain(|g| g.scope <= depth);
                    if pending.as_ref().is_some_and(|pd| pd.depth > depth) {
                        pending = None;
                    }
                }
                "(" | "[" => paren += 1,
                ")" | "]" => paren -= 1,
                ";" => {
                    if pending
                        .as_ref()
                        .is_some_and(|pd| pd.depth == depth && pd.paren == paren)
                    {
                        let pd = pending.take().expect("checked above");
                        if pd.kind == Pend::Plain && !pd.consumed {
                            if let Some(lock) = pd.lock {
                                guards.push(Guard {
                                    name: pd.names.last().cloned(),
                                    lock,
                                    scope: depth,
                                });
                            }
                        }
                    }
                }
                "." => {
                    if is_lock_call(toks, i) {
                        let lock = format!("{stem}.{}", receiver_name(toks, i));
                        for g in &guards {
                            info.edges.push(EdgeRec {
                                from: g.lock.clone(),
                                to: lock.clone(),
                                line: tok.line,
                            });
                        }
                        info.direct.push(lock.clone());
                        if let Some(pd) = pending.as_mut() {
                            // Only a lock in the binding chain itself (not
                            // nested in call arguments or closures) makes
                            // the binding a guard.
                            if pd.lock.is_none() && pd.paren == paren {
                                pd.lock = Some(lock);
                            }
                        }
                        i += 4; // `.` `lock` `(` `)`
                        continue;
                    }
                    // A method chained onto an acquired lock consumes the
                    // guard within the statement (`.ok()`, `.and_then(…)`),
                    // except the error-mapping/asserting adapters that
                    // still yield the guard.
                    if let Some(pd) = pending.as_mut() {
                        if pd.lock.is_some() && pd.paren == paren {
                            if let Some(m) = toks.get(i + 1).and_then(Token::ident) {
                                if m != "map_err" && m != "expect" && m != "unwrap" {
                                    pd.consumed = true;
                                }
                            }
                        }
                    }
                }
                _ => {}
            },
            TokenKind::Ident(w) => match w.as_str() {
                "let" => {
                    let kind = if i > open
                        && toks
                            .get(i - 1)
                            .is_some_and(|t| t.is_ident("if") || t.is_ident("while"))
                    {
                        Pend::Cond
                    } else {
                        Pend::Plain
                    };
                    // Capture the pattern's binding idents up to the `=`,
                    // then resume the main scan on the right-hand side.
                    let mut names = Vec::new();
                    let mut j = i + 1;
                    let mut pdepth = 0i32;
                    let mut eq = None;
                    while j < toks.len() {
                        match &toks[j].kind {
                            TokenKind::Punct(p) => match p.as_str() {
                                "(" | "[" => pdepth += 1,
                                ")" | "]" => pdepth -= 1,
                                "=" if pdepth == 0 => {
                                    eq = Some(j);
                                    break;
                                }
                                ";" | "{" => break,
                                _ => {}
                            },
                            TokenKind::Ident(n) => {
                                if !matches!(
                                    n.as_str(),
                                    "mut" | "ref" | "Ok" | "Some" | "Err" | "None" | "_"
                                ) {
                                    names.push(n.clone());
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if let Some(eq) = eq {
                        pending = Some(Pending {
                            kind,
                            names,
                            lock: None,
                            consumed: false,
                            depth,
                            paren,
                        });
                        i = eq + 1;
                        continue;
                    }
                }
                "match" => {
                    pending = Some(Pending {
                        kind: Pend::Head,
                        names: Vec::new(),
                        lock: None,
                        consumed: false,
                        depth,
                        paren,
                    });
                }
                "else" => {
                    // `let Ok(g) = x.lock() else { … };` — the binding
                    // survives past the else block like a plain let.
                    if let Some(pd) = pending.take() {
                        if pd.kind == Pend::Plain && !pd.consumed {
                            if let Some(lock) = pd.lock {
                                guards.push(Guard {
                                    name: pd.names.last().cloned(),
                                    lock,
                                    scope: depth,
                                });
                            }
                        }
                    }
                }
                "drop" => {
                    if toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                        if let Some(n) = toks.get(i + 2).and_then(Token::ident) {
                            if toks.get(i + 3).is_some_and(|t| t.is_punct(")")) {
                                guards.retain(|g| g.name.as_deref() != Some(n));
                                i += 4;
                                continue;
                            }
                        }
                    }
                }
                _ => {
                    if toks.get(i + 1).is_some_and(|t| t.is_punct("("))
                        && !CALLEE_SKIP.contains(&w.as_str())
                    {
                        // Resolve free calls, path calls (`Type::helper(…)`),
                        // and method calls on `self`. A method call on a
                        // local (`stream.shutdown(…)`, `guard.items.len()`)
                        // dispatches on a value this analysis cannot type;
                        // matching it by bare name would fabricate edges to
                        // unrelated same-named functions — including calls
                        // through a held guard, whose lock is already
                        // accounted for.
                        let resolved = if i >= 1 && toks[i - 1].is_punct(".") {
                            receiver_base(toks, i - 1) == Some("self")
                        } else {
                            true
                        };
                        if resolved {
                            info.calls.push(CallSite {
                                callee: w.clone(),
                                held: guards.iter().map(|g| g.lock.clone()).collect(),
                                line: tok.line,
                            });
                        }
                    }
                }
            },
            _ => {}
        }
        i += 1;
    }
    info
}

/// True when `toks[dot]` starts the exact sequence `. lock ( )`.
fn is_lock_call(toks: &[Token], dot: usize) -> bool {
    toks[dot].is_punct(".")
        && toks.get(dot + 1).is_some_and(|t| t.is_ident("lock"))
        && toks.get(dot + 2).is_some_and(|t| t.is_punct("("))
        && toks.get(dot + 3).is_some_and(|t| t.is_punct(")"))
}

/// The base identifier of the receiver chain ending at the separator at
/// `sep`: `self.queue.inner.` → `self`; `guard.items.` → `guard`.
/// Index/call groups inside the chain are skipped; a chain rooted in
/// anything other than an identifier yields `None`.
fn receiver_base(toks: &[Token], sep: usize) -> Option<&str> {
    let mut j = sep as i64;
    let mut base = None;
    loop {
        match &toks[j as usize].kind {
            TokenKind::Punct(p) if p == "." || p == "::" => j -= 1,
            _ => break,
        }
        if j < 0 {
            break;
        }
        // Skip one trailing index/call group in this segment.
        if let TokenKind::Punct(p) = &toks[j as usize].kind {
            if p == "]" || p == ")" {
                let (close, open) = if p == "]" { ("]", "[") } else { (")", "(") };
                let mut d = 1;
                j -= 1;
                while j >= 0 && d > 0 {
                    if let TokenKind::Punct(q) = &toks[j as usize].kind {
                        if q == close {
                            d += 1;
                        } else if q == open {
                            d -= 1;
                        }
                    }
                    j -= 1;
                }
            }
        }
        if j < 0 {
            break;
        }
        match &toks[j as usize].kind {
            TokenKind::Ident(w) => {
                base = Some(w.as_str());
                j -= 1;
            }
            _ => break,
        }
        if j < 0 {
            break;
        }
    }
    base
}

/// The receiver identifier of a `.lock()` call: the last path segment
/// before the dot, skipping one trailing index/call group
/// (`slots[i].lock()`, `cell().lock()`).
fn receiver_name(toks: &[Token], dot: usize) -> String {
    let mut j = dot as i64 - 1;
    if j >= 0 {
        if let TokenKind::Punct(p) = &toks[j as usize].kind {
            if p == "]" || p == ")" {
                let (close, open) = if p == "]" { ("]", "[") } else { (")", "(") };
                let mut d = 1;
                j -= 1;
                while j >= 0 && d > 0 {
                    if let TokenKind::Punct(q) = &toks[j as usize].kind {
                        if q == close {
                            d += 1;
                        } else if q == open {
                            d -= 1;
                        }
                    }
                    j -= 1;
                }
            }
        }
    }
    while j >= 0 {
        match &toks[j as usize].kind {
            TokenKind::Ident(w) => return w.clone(),
            TokenKind::Punct(p) if p == "." || p == "::" => j -= 1,
            _ => break,
        }
    }
    "anon".to_string()
}

/// Folds per-function facts into the global edge map. Call edges use the
/// callee's *transitive* lock set, computed to a fixpoint so chains like
/// `submit → queue.push → queue.inner` resolve through any depth.
fn build_edges(fns: &[FnInfo]) -> BTreeMap<(String, String), (PathBuf, usize)> {
    let mut registry: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, f) in fns.iter().enumerate() {
        registry.entry(&f.name).or_default().push(idx);
    }
    let mut locksets: Vec<BTreeSet<String>> = fns
        .iter()
        .map(|f| f.direct.iter().cloned().collect())
        .collect();
    loop {
        let mut changed = false;
        for idx in 0..fns.len() {
            for call in &fns[idx].calls {
                let Some(callees) = registry.get(call.callee.as_str()) else {
                    continue;
                };
                for &c in callees {
                    if c == idx {
                        continue;
                    }
                    let add: Vec<String> = locksets[c]
                        .iter()
                        .filter(|l| !locksets[idx].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        locksets[idx].extend(add);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();
    let mut add = |from: &str, to: &str, file: &PathBuf, line: usize| {
        let key = (from.to_string(), to.to_string());
        let loc = (file.clone(), line);
        let entry = edges.entry(key).or_insert_with(|| loc.clone());
        if loc < *entry {
            *entry = loc;
        }
    };
    for f in fns {
        for e in &f.edges {
            add(&e.from, &e.to, &f.file, e.line);
        }
        for call in &f.calls {
            if call.held.is_empty() {
                continue;
            }
            let Some(callees) = registry.get(call.callee.as_str()) else {
                continue;
            };
            for &c in callees {
                for lock in &locksets[c] {
                    for held in &call.held {
                        add(held, lock, &f.file, call.line);
                    }
                }
            }
        }
    }
    edges
}

/// DFS cycle detection over the edge map; every cycle found becomes one
/// violation anchored at its lexicographically first edge location.
fn report_cycles(
    rule: &'static str,
    edges: &BTreeMap<(String, String), (PathBuf, usize)>,
    out: &mut Vec<Violation>,
) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }

    // Self-edges are re-entrant acquisitions; report them directly.
    for ((from, to), (file, line)) in edges {
        if from == to {
            out.push(Violation {
                file: file.clone(),
                line: *line,
                rule,
                message: format!(
                    "re-entrant acquisition: `{from}` is (transitively) \
                     acquired while already held — `std::sync::Mutex` \
                     deadlocks immediately"
                ),
            });
        }
    }

    let mut state: BTreeMap<&str, u8> = BTreeMap::new();
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let nodes: Vec<&str> = adj.keys().copied().collect();
    for node in nodes {
        if state.get(node).copied().unwrap_or(0) == 0 {
            dfs(node, &adj, &mut state, &mut Vec::new(), &mut cycles);
        }
    }
    for cycle in cycles {
        if cycle.len() < 2 {
            continue; // self-edges already reported above
        }
        // Anchor the diagnostic at the smallest (file, line) among the
        // cycle's edges so the report is stable across runs.
        let mut loc: Option<(PathBuf, usize)> = None;
        for k in 0..cycle.len() {
            let key = (cycle[k].clone(), cycle[(k + 1) % cycle.len()].clone());
            if let Some(l) = edges.get(&key) {
                if loc.as_ref().map_or(true, |best| l < best) {
                    loc = Some(l.clone());
                }
            }
        }
        let (file, line) = loc.unwrap_or_else(|| (PathBuf::from("?"), 0));
        let path = cycle.join(" -> ");
        let first = &cycle[0];
        out.push(Violation {
            file,
            line,
            rule,
            message: format!(
                "lock-order cycle: {path} -> {first}; these locks must \
                 nest in one consistent order everywhere"
            ),
        });
    }
}

fn dfs<'a>(
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    state: &mut BTreeMap<&'a str, u8>,
    stack: &mut Vec<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    state.insert(node, 1);
    stack.push(node);
    for &next in adj.get(node).into_iter().flatten() {
        match state.get(next).copied().unwrap_or(0) {
            0 => dfs(next, adj, state, stack, cycles),
            1 => {
                let pos = stack.iter().position(|&n| n == next).unwrap_or(0);
                let mut cycle: Vec<String> = stack[pos..].iter().map(|s| s.to_string()).collect();
                // Canonical rotation: smallest lock name first, so the
                // same cycle discovered from different entry points
                // deduplicates.
                if let Some(k) = (0..cycle.len()).min_by_key(|&k| &cycle[k]) {
                    cycle.rotate_left(k);
                }
                cycles.insert(cycle);
            }
            _ => {}
        }
    }
    stack.pop();
    state.insert(node, 2);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::SourceFile;
    use std::path::Path;

    fn check_files(named: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = named
            .iter()
            .map(|(name, src)| SourceFile::lex(Path::new(name), src))
            .collect();
        let mut out = Vec::new();
        LockOrder.check(&files, &mut out);
        out
    }

    #[test]
    fn r10_fixture_corpus() {
        let bad = check_files(&[("r10_bad.rs", include_str!("../../fixtures/r10_bad.rs"))]);
        assert!(
            bad.iter()
                .any(|v| v.rule == "R10" && v.message.contains("lock-order cycle")),
            "{bad:?}"
        );
        let good = check_files(&[("r10_good.rs", include_str!("../../fixtures/r10_good.rs"))]);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn opposite_orders_in_one_file_form_a_cycle() {
        let src = "
            fn ab(s: &S) { let a = s.left.lock()?; let b = s.right.lock()?; use2(a, b); }
            fn ba(s: &S) { let b = s.right.lock()?; let a = s.left.lock()?; use2(a, b); }
        ";
        let out = check_files(&[("pair.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0]
                .message
                .contains("pair.left -> pair.right -> pair.left"),
            "{}",
            out[0].message
        );
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn one(s: &S) { let a = s.left.lock()?; let b = s.right.lock()?; use2(a, b); }
            fn two(s: &S) { let a = s.left.lock()?; let b = s.right.lock()?; use2(a, b); }
        ";
        assert!(check_files(&[("pair.rs", src)]).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "
            fn ab(s: &S) { let a = s.left.lock()?; drop(a); let b = s.right.lock()?; }
            fn ba(s: &S) { let b = s.right.lock()?; drop(b); let a = s.left.lock()?; }
        ";
        assert!(check_files(&[("pair.rs", src)]).is_empty());
    }

    #[test]
    fn if_let_guard_ends_at_the_construct() {
        // The guard from an `if let` head does not leak past its block, so
        // the second acquisition is sequential, not nested.
        let src = "
            fn seq(s: &S) {
                if let Ok(g) = s.left.lock() { touch(g); }
                if let Ok(h) = s.right.lock() { touch(h); }
            }
            fn rev(s: &S) { let b = s.right.lock()?; let a = s.left.lock()?; use2(a, b); }
        ";
        assert!(check_files(&[("pair.rs", src)]).is_empty());
    }

    #[test]
    fn interprocedural_cycle_through_a_call() {
        let a = "
            fn push(q: &Q) { let g = q.inner.lock()?; g.push_back(1); }
        ";
        let b = "
            fn collect(s: &S) { let slot = s.slots.lock()?; push(s.queue); drop(slot); }
            fn refill(s: &S) { let g = s.queue2.inner2.lock()?; grab(s); }
            fn grab(s: &S) { let slot = s.slots.lock()?; touch(slot); }
        ";
        // collect: batch.slots -> queue.inner (via call). No cycle yet.
        let out = check_files(&[("queue.rs", a), ("batch.rs", b)]);
        assert!(out.is_empty(), "{out:?}");
        // Now make the queue call back into a function that takes slots:
        let a2 = "
            fn push(q: &Q) { let g = q.inner.lock()?; grab(q.owner); }
        ";
        let out2 = check_files(&[("queue.rs", a2), ("batch.rs", b)]);
        assert!(
            out2.iter().any(|v| v.message.contains("lock-order cycle")),
            "{out2:?}"
        );
    }

    #[test]
    fn reentrant_acquisition_is_a_self_edge() {
        let src =
            "fn twice(s: &S) { let a = s.inner.lock()?; let b = s.inner.lock()?; use2(a, b); }";
        let out = check_files(&[("q.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("re-entrant"), "{}", out[0].message);
    }

    #[test]
    fn consumed_lock_results_do_not_hold() {
        // `.ok().and_then(...)` consumes the guard inside the statement;
        // the binding is a value, not a guard, so no edge to later locks.
        let src = "
            fn take(s: &S) {
                let v = s.right.lock().ok().and_then(|mut g| g.take());
                let a = s.left.lock()?;
                use2(v, a);
            }
            fn fwd(s: &S) { let a = s.left.lock()?; let b = s.right.lock()?; use2(a, b); }
        ";
        assert!(check_files(&[("pair.rs", src)]).is_empty());
    }

    #[test]
    fn calls_through_a_held_guard_are_not_resolved() {
        // `guard.helper()` dereferences into the protected object; resolving
        // it by name against an unrelated `fn helper` that locks the same
        // mutex would be a phantom re-entrancy.
        let src = "
            fn read(s: &S) { let guard = s.inner.lock()?; guard.helper(); }
            fn helper(s: &S) { let g = s.inner.lock()?; touch(g); }
        ";
        assert!(check_files(&[("q.rs", src)]).is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
            #[cfg(test)]
            mod tests {
                fn ab(s: &S) { let a = s.left.lock()?; let b = s.right.lock()?; use2(a, b); }
                fn ba(s: &S) { let b = s.right.lock()?; let a = s.left.lock()?; use2(a, b); }
            }
        ";
        assert!(check_files(&[("pair.rs", src)]).is_empty());
    }
}
