//! R12: the thread-lifecycle rule — no detached threads.
//!
//! Every OS thread this workspace starts must have a join path: a bound
//! `JoinHandle` that shutdown later joins, a handle pushed into a drain
//! list, or a scoped spawn (`std::thread::scope`) that joins structurally.
//! A detached thread (`thread::spawn(…);` with the handle discarded) can
//! outlive the executor, touch freed shard state on teardown, and turn a
//! clean shutdown into a flaky one.
//!
//! Detection: a `spawn(` call whose statement mentions `thread` or
//! `Builder` is a spawn site. It is flagged when the handle is discarded —
//! statement-position (`…spawn(f);`), `let _ = …spawn(f);`, or
//! `drop(…spawn(f))`. Handles that are bound, assigned, pushed, returned,
//! or produced in expression position (collected into a `Vec`, mapped into
//! a drain) all pass. Scoped spawns (`s.spawn(…)`) never mention `thread`
//! in their statement and stay out of scope by construction.

use crate::lexer::{SourceFile, Tag, Token, TokenKind};
use crate::report::Violation;
use crate::rules::Rule;

/// R12: every `thread::spawn` has a join path.
pub struct ThreadLifecycle;

impl Rule for ThreadLifecycle {
    fn id(&self) -> &'static str {
        "R12"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let toks = &file.tokens;
        for i in 0..toks.len() {
            if !toks[i].is_ident("spawn") || !toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
                continue;
            }
            let line = toks[i].line;
            if file.in_test(line) || file.justified(line, Tag::Invariant) {
                continue;
            }
            // The statement window: back to the nearest `;`, `{`, or `}`.
            let mut b = i;
            while b > 0 {
                if let TokenKind::Punct(p) = &toks[b - 1].kind {
                    if p == ";" || p == "{" || p == "}" {
                        break;
                    }
                }
                b -= 1;
            }
            let window = &toks[b..i];
            let is_thread_spawn = window
                .iter()
                .any(|t| t.is_ident("thread") || t.is_ident("Builder"));
            if !is_thread_spawn {
                continue;
            }
            if let Some(reason) = discard_reason(toks, window, i) {
                out.push(Violation {
                    file: file.path.clone(),
                    line,
                    rule: self.id(),
                    message: format!(
                        "detached thread: {reason}; keep the `JoinHandle` \
                         and join it on shutdown (or register it with a \
                         drain list)"
                    ),
                });
            }
        }
    }
}

/// Decides whether the spawn at `toks[spawn]` discards its `JoinHandle`.
/// `window` is the statement prefix before the spawn token.
fn discard_reason(toks: &[Token], window: &[Token], spawn: usize) -> Option<&'static str> {
    // `let _ = thread::spawn(…);` — explicitly thrown away.
    for w in window.windows(3) {
        if w[0].is_ident("let") && w[1].is_ident("_") && w[2].is_punct("=") {
            return Some("the `JoinHandle` is discarded via `let _ =`");
        }
    }
    // `drop(thread::spawn(…))` — dropped on the spot.
    if window.iter().any(|t| t.is_ident("drop")) {
        return Some("the `JoinHandle` is dropped immediately");
    }
    // Any other binding, assignment, or return keeps the handle.
    if window
        .iter()
        .any(|t| t.is_ident("let") || t.is_ident("return") || t.is_punct("=") || t.is_punct("+="))
    {
        return None;
    }
    // Expression position (the spawn is an argument or receiver inside an
    // open paren/bracket): the surrounding expression owns the handle.
    let mut depth = 0i32;
    for t in window {
        if let TokenKind::Punct(p) = &t.kind {
            match p.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                _ => {}
            }
        }
    }
    if depth > 0 {
        return None;
    }
    // Statement-position: skip the call's argument list and any trailing
    // adapter chain; a terminating `;` means nobody kept the handle.
    let mut j = spawn + 2; // past `spawn` `(`
    let mut pdepth = 1i32;
    while j < toks.len() && pdepth > 0 {
        if let TokenKind::Punct(p) = &toks[j].kind {
            match p.as_str() {
                "(" | "[" => pdepth += 1,
                ")" | "]" => pdepth -= 1,
                _ => {}
            }
        }
        j += 1;
    }
    while j < toks.len() {
        match &toks[j].kind {
            TokenKind::Punct(p) if p == "?" => j += 1,
            TokenKind::Punct(p) if p == "." => {
                // A chained method (`.expect(…)`, `.ok()`) — skip it and
                // its arguments; the chain still ends in a discard unless
                // something receives the value.
                j += 2;
                if toks.get(j).is_some_and(|t| t.is_punct("(")) {
                    let mut d = 1i32;
                    j += 1;
                    while j < toks.len() && d > 0 {
                        if let TokenKind::Punct(p) = &toks[j].kind {
                            match p.as_str() {
                                "(" => d += 1,
                                ")" => d -= 1,
                                _ => {}
                            }
                        }
                        j += 1;
                    }
                }
            }
            TokenKind::Punct(p) if p == ";" => {
                return Some(
                    "the `JoinHandle` from `thread::spawn` is discarded at statement position",
                );
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::tests::run_rule;

    #[test]
    fn r12_fixture_corpus() {
        let bad = run_rule(&ThreadLifecycle, include_str!("../../fixtures/r12_bad.rs"));
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R12"));
        let good = run_rule(&ThreadLifecycle, include_str!("../../fixtures/r12_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn statement_position_spawn_is_detached() {
        for src in [
            "fn f() { std::thread::spawn(move || work()); }",
            "fn f() { thread::Builder::new().name(n).spawn(move || work())?; }",
            "fn f() { let _ = thread::spawn(worker); }",
            "fn f() { drop(thread::spawn(worker)); }",
        ] {
            assert_eq!(run_rule(&ThreadLifecycle, src).len(), 1, "{src}");
        }
    }

    #[test]
    fn bound_pushed_and_returned_handles_pass() {
        for src in [
            "fn f() { let h = thread::spawn(worker); h.join().ok(); }",
            "fn f() { self.handle = Some(thread::spawn(worker)); }",
            "fn f() { workers.push(thread::Builder::new().name(n).spawn(w)?); }",
            "fn f() -> J { return thread::spawn(worker); }",
            "fn f() -> J { thread::spawn(worker) }",
            "fn f() { let hs: Vec<_> = cfgs.iter().map(|c| thread::spawn(c.run)).collect(); }",
        ] {
            assert!(run_rule(&ThreadLifecycle, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn scoped_spawns_are_out_of_scope() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| work()); }); }";
        assert!(run_rule(&ThreadLifecycle, src).is_empty());
    }

    #[test]
    fn test_code_and_invariants_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f() { thread::spawn(w); } }";
        assert!(run_rule(&ThreadLifecycle, src).is_empty());
        let excused = "// invariant: fire-and-forget logger, exits with the process\nfn f() { std::thread::spawn(log_pump); }";
        assert!(run_rule(&ThreadLifecycle, excused).is_empty());
    }
}
