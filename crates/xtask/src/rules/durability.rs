//! R13: the durability rule — no writable file handle drops unsynced.
//!
//! The WAL crate's crash-safety argument is a chain of explicit fsyncs:
//! every byte that a commit acknowledges must be on disk before the
//! handle that wrote it can drop. A `File::create` or `OpenOptions`
//! handle that is written and then dropped without `sync_all`/`sync_data`
//! (or a directory `sync_dir` for rename barriers) leaves the bytes in
//! the page cache, where a crash silently discards them — the recovery
//! suite cannot catch that on a filesystem that never crashes under test.
//!
//! Detection: a writable-handle creation site is `File::create(…)` or an
//! `OpenOptions::new(…)` builder chain. The site is flagged unless the
//! *innermost enclosing function body* also contains a durability
//! barrier — an identifier `sync_all`, `sync_data`, or `sync_dir` (the
//! latter covers helpers that fsync the parent directory after a
//! rename). Read-only `File::open` handles are out of scope: dropping a
//! reader loses nothing. Test code is exempt, and a deliberate
//! non-durable handle (a scratch file whose loss is harmless) can be
//! justified with `// invariant: <why>` on the creation line.
//!
//! The function-scope containment is deliberately coarse: it does not
//! prove the sync dominates the drop, only that the author thought about
//! durability in the same function that created the handle. That is the
//! same trade the other token-level rules make, and it keeps the rule
//! free of false positives on the real tree.

use crate::lexer::{SourceFile, Tag, Token, TokenKind};
use crate::report::Violation;
use crate::rules::Rule;

/// R13: every writable file handle reaches an fsync before it drops.
pub struct UnsyncedHandles;

impl Rule for UnsyncedHandles {
    fn id(&self) -> &'static str {
        "R13"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let toks = &file.tokens;
        let bodies = fn_bodies(toks);
        for i in 0..toks.len() {
            let Some(what) = creation_site(toks, i) else {
                continue;
            };
            let line = toks[i].line;
            if file.in_test(line) || file.justified(line, Tag::Invariant) {
                continue;
            }
            let scope = scope_of(&bodies, toks.len(), i);
            if toks[scope]
                .iter()
                .any(|t| BARRIERS.iter().any(|b| t.is_ident(b)))
            {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line,
                rule: self.id(),
                message: format!(
                    "unsynced file handle: `{what}` opens a writable file but \
                     this function never calls `sync_all`/`sync_data`/`sync_dir`, \
                     so the handle can drop with its bytes still in the page \
                     cache; fsync before the handle drops (or justify a \
                     scratch file with `// invariant:`)"
                ),
            });
        }
    }
}

/// The identifiers that count as a durability barrier.
const BARRIERS: [&str; 3] = ["sync_all", "sync_data", "sync_dir"];

/// Classifies `toks[i]` as the start of a writable-handle creation site:
/// `File::create(` or `OpenOptions::new(`. The `::new(` requirement is
/// what keeps `use std::fs::OpenOptions;` imports out of scope.
fn creation_site(toks: &[Token], i: usize) -> Option<&'static str> {
    let seq = |a: &str, b: &str| {
        toks[i].is_ident(a)
            && toks.get(i + 1).is_some_and(|t| t.is_punct("::"))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(b))
            && toks.get(i + 3).is_some_and(|t| t.is_punct("("))
    };
    if seq("File", "create") {
        Some("File::create")
    } else if seq("OpenOptions", "new") {
        Some("OpenOptions::new")
    } else {
        None
    }
}

/// The `(open, close)` token ranges of every `fn` body, in source order.
/// The body open is the first top-level `{` after the `fn` keyword (a `;`
/// first means a bodiless trait method). Nested items yield nested
/// ranges; callers pick the innermost one containing a site.
fn fn_bodies(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        // Find the body `{`, skipping the parameter list (and any parens
        // or brackets in the return type / where clause).
        let mut j = i + 1;
        let mut depth = 0i32;
        let open = loop {
            let Some(t) = toks.get(j) else { break None };
            match &t.kind {
                TokenKind::Punct(p) if p == "(" || p == "[" => depth += 1,
                TokenKind::Punct(p) if p == ")" || p == "]" => depth -= 1,
                TokenKind::Punct(p) if p == "{" && depth == 0 => break Some(j),
                TokenKind::Punct(p) if p == ";" && depth == 0 => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(open) = open else { continue };
        // Match the body's braces to find its close.
        let mut bdepth = 1i32;
        let mut k = open + 1;
        while k < toks.len() && bdepth > 0 {
            if let TokenKind::Punct(p) = &toks[k].kind {
                match p.as_str() {
                    "{" => bdepth += 1,
                    "}" => bdepth -= 1,
                    _ => {}
                }
            }
            k += 1;
        }
        out.push((open, k));
    }
    out
}

/// The tokens of the innermost `fn` body containing index `i`, or the
/// whole file when the site sits outside any function (a const
/// initialiser, say) — the barrier may then be anywhere.
fn scope_of(bodies: &[(usize, usize)], len: usize, i: usize) -> std::ops::Range<usize> {
    bodies
        .iter()
        .filter(|(open, close)| *open < i && i < *close)
        .min_by_key(|(open, close)| close - open)
        .map(|&(open, close)| open..close)
        .unwrap_or(0..len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::tests::{flagged_lines, run_rule};

    #[test]
    fn r13_fixture_corpus() {
        let bad = run_rule(&UnsyncedHandles, include_str!("../../fixtures/r13_bad.rs"));
        assert_eq!(bad.len(), 3, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R13"));
        let good = run_rule(&UnsyncedHandles, include_str!("../../fixtures/r13_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn unsynced_creation_sites_are_flagged() {
        for src in [
            "fn f(p: &Path) -> io::Result<()> { let mut f = File::create(p)?; \
             f.write_all(b\"x\")?; Ok(()) }",
            "fn f(p: &Path) -> io::Result<File> { \
             OpenOptions::new().append(true).create(true).open(p) }",
        ] {
            assert_eq!(run_rule(&UnsyncedHandles, src).len(), 1, "{src}");
        }
    }

    #[test]
    fn a_barrier_in_the_same_function_passes() {
        for src in [
            "fn f(p: &Path) -> io::Result<()> { let mut f = File::create(p)?; \
             f.write_all(b\"x\")?; f.sync_all() }",
            "fn f(p: &Path) -> io::Result<()> { let f = \
             OpenOptions::new().write(true).open(p)?; f.sync_data() }",
            "fn f(&self, p: &Path) -> io::Result<()> { \
             let f = File::create(p)?; drop(f); self.sync_dir() }",
        ] {
            assert!(run_rule(&UnsyncedHandles, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn the_barrier_must_be_in_the_innermost_function() {
        // The sync lives in a sibling function: the creating function
        // still drops the handle unsynced, and is still flagged.
        let src = "fn create(p: &Path) -> io::Result<()> {\n\
                   let mut f = File::create(p)?;\n\
                   f.write_all(b\"x\")\n\
                   }\n\
                   fn elsewhere(f: &File) -> io::Result<()> { f.sync_all() }\n";
        assert_eq!(flagged_lines(&UnsyncedHandles, src), vec![2]);
        // A nested helper that creates without syncing is flagged even
        // though the *outer* function syncs something else.
        let nested = "fn outer(p: &Path) -> io::Result<()> {\n\
                      fn inner(p: &Path) -> io::Result<File> { File::create(p) }\n\
                      let f = inner(p)?;\n\
                      f.sync_all()\n\
                      }\n";
        assert_eq!(flagged_lines(&UnsyncedHandles, nested), vec![2]);
    }

    #[test]
    fn read_only_handles_and_imports_are_out_of_scope() {
        for src in [
            "fn f(p: &Path) -> io::Result<File> { File::open(p) }",
            "use std::fs::{self, File, OpenOptions};",
            "use std::fs::OpenOptions;",
        ] {
            assert!(run_rule(&UnsyncedHandles, src).is_empty(), "{src}");
        }
    }

    #[test]
    fn test_code_and_invariants_are_exempt() {
        let src = "#[cfg(test)]\nmod t { fn f(p: &Path) { let _f = File::create(p); } }";
        assert!(run_rule(&UnsyncedHandles, src).is_empty());
        let excused = "// invariant: scratch probe file, deleted on the next line\n\
                       fn f(p: &Path) -> io::Result<()> { File::create(p).map(|_| ()) }";
        assert!(run_rule(&UnsyncedHandles, excused).is_empty());
    }
}
