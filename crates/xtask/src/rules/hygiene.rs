//! The hygiene rules: R2 (no lossy casts in binary-format modules), R3
//! (crate-root attributes), R4 (no float equality), R5 (no wall clocks),
//! R6 (no deprecated query calls).
//!
//! R4 is the one rule here that genuinely benefits from the token stream:
//! it inspects `==`/`!=` punctuation tokens adjacent to float-shaped
//! number literals, so ranges (`0.0..1.0`) and `..=` never false-positive.

use crate::lexer::{SourceFile, Tag, TokenKind};
use crate::report::Violation;
use crate::rules::Rule;

fn violation(file: &SourceFile, line: usize, rule: &'static str, message: String) -> Violation {
    Violation {
        file: file.path.clone(),
        line,
        rule,
        message,
    }
}

/// R2: numeric `as` casts in binary-format modules; width changes must go
/// through `From`/`TryFrom` or the checked codec helpers so truncation is
/// impossible by construction.
pub struct NoLossyCasts;

const NUMERIC_TYPES: [&str; 13] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "isize", "f32", "f64",
];

impl Rule for NoLossyCasts {
    fn id(&self) -> &'static str {
        "R2"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        // Token view: `as` is an identifier-shaped keyword; a numeric type
        // name directly after it is the cast target.
        for pair in file.tokens.windows(2) {
            if !pair[0].is_ident("as") {
                continue;
            }
            let Some(ty) = pair[1].ident() else { continue };
            if !NUMERIC_TYPES.contains(&ty) {
                continue;
            }
            let line = pair[1].line;
            if file.in_test(line) || file.justified(line, Tag::Invariant) {
                continue;
            }
            out.push(violation(
                file,
                line,
                self.id(),
                format!(
                    "`as {ty}` cast in a binary-format module; use \
                     `From`/`TryFrom` or the checked codec helpers"
                ),
            ));
        }
    }
}

/// R3: every crate root declares `#![forbid(unsafe_code)]` and
/// `#![deny(missing_docs)]`.
pub struct CrateRootAttrs;

impl Rule for CrateRootAttrs {
    fn id(&self) -> &'static str {
        "R3"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for required in ["#![forbid(unsafe_code)]", "#![deny(missing_docs)]"] {
            if !file.lines.iter().any(|l| l.code.contains(required)) {
                out.push(violation(
                    file,
                    1,
                    self.id(),
                    format!("crate root does not declare `{required}`"),
                ));
            }
        }
    }
}

/// R4: `==` / `!=` adjacent to a float-shaped literal. Detection is a
/// literal-adjacency heuristic (an exact type-aware check needs full
/// inference); it is a tripwire, not a proof.
pub struct NoFloatEquality;

impl Rule for NoFloatEquality {
    fn id(&self) -> &'static str {
        "R4"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let toks = &file.tokens;
        for (i, tok) in toks.iter().enumerate() {
            if !tok.is_punct("==") && !tok.is_punct("!=") {
                continue;
            }
            let float_at = |k: Option<usize>| {
                k.and_then(|k| toks.get(k))
                    .is_some_and(|t| matches!(t.kind, TokenKind::Number { float: true }))
            };
            // Look one past a possible unary minus on the right.
            let right = if toks.get(i + 1).is_some_and(|t| t.is_punct("-")) {
                Some(i + 2)
            } else {
                Some(i + 1)
            };
            if !float_at(i.checked_sub(1)) && !float_at(right) {
                continue;
            }
            let line = tok.line;
            if file.in_test(line) || file.justified(line, Tag::Invariant) {
                continue;
            }
            out.push(violation(
                file,
                line,
                self.id(),
                "exact `==`/`!=` against a float literal; compare through \
                 `trajectory::float` or justify with `// invariant:`"
                    .to_string(),
            ));
        }
    }
}

/// R5: no `std::time` / `Instant` outside `mst-bench` and the executor's
/// clock module: library code must stay deterministic and clock-free so
/// results are reproducible.
pub struct NoClocks;

impl Rule for NoClocks {
    fn id(&self) -> &'static str {
        "R5"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for line in &file.lines {
            if line.in_test || file.justified(line.number, Tag::Invariant) {
                continue;
            }
            let has_instant = file
                .tokens
                .iter()
                .any(|t| t.line == line.number && t.is_ident("Instant"));
            if line.code.contains("std::time") || has_instant {
                out.push(violation(
                    file,
                    line.number,
                    self.id(),
                    "wall-clock access in library code; timing belongs in \
                     `mst-bench`"
                        .to_string(),
                ));
            }
        }
    }
}

/// R6: method calls on the deprecated pre-builder query surface. The
/// leading dot keeps free functions like `search::nearest_trajectories(...)`
/// (the still-supported low-level entry points) out of scope; only the
/// deprecated `MovingObjectDatabase` methods are method calls.
pub struct NoDeprecatedQueryCalls;

const DEPRECATED_DB_CALLS: [&str; 7] = [
    ".most_similar(",
    ".most_similar_with(",
    ".within_dissim(",
    ".most_similar_time_relaxed(",
    ".nearest_segments(",
    ".nearest_trajectories(",
    ".range(",
];

impl Rule for NoDeprecatedQueryCalls {
    fn id(&self) -> &'static str {
        "R6"
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        // Deliberately applies to test code too: the deprecated surface is
        // gone and must not creep back anywhere.
        for line in &file.lines {
            if file.justified(line.number, Tag::Invariant) {
                continue;
            }
            for pat in DEPRECATED_DB_CALLS {
                if line.code.contains(pat) {
                    let name = pat.trim_start_matches('.').trim_end_matches('(');
                    out.push(violation(
                        file,
                        line.number,
                        self.id(),
                        format!(
                            "call to deprecated query method `{name}`; use \
                             the `Query` builder (see crates/core/src/query.rs)"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::tests::{flagged_lines, run_rule};

    #[test]
    fn r2_fixture_corpus() {
        let bad = run_rule(&NoLossyCasts, include_str!("../../fixtures/r2_bad.rs"));
        assert_eq!(bad.len(), 2, "{bad:?}");
        assert!(bad.iter().all(|v| v.rule == "R2"));
        let good = run_rule(&NoLossyCasts, include_str!("../../fixtures/r2_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r2_ignores_non_numeric_casts() {
        assert!(run_rule(&NoLossyCasts, "let d = x as &dyn Trait;").is_empty());
        assert!(run_rule(&NoLossyCasts, "let x = y as u32z;").is_empty());
        assert_eq!(flagged_lines(&NoLossyCasts, "let x = y as u32;"), [1]);
    }

    #[test]
    fn r3_fixture_corpus() {
        let bad = run_rule(&CrateRootAttrs, include_str!("../../fixtures/r3_bad.rs"));
        assert_eq!(bad.len(), 2, "{bad:?}");
        let good = run_rule(&CrateRootAttrs, include_str!("../../fixtures/r3_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r4_fixture_corpus() {
        let bad = run_rule(&NoFloatEquality, include_str!("../../fixtures/r4_bad.rs"));
        assert_eq!(bad.len(), 3, "{bad:?}");
        let good = run_rule(&NoFloatEquality, include_str!("../../fixtures/r4_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r4_token_heuristic_edges() {
        for hit in [
            "if x == 0.0 {",
            "if 1.5 != y {",
            "x == 1e-9",
            "x == -2.5",
            "x == 3f64",
        ] {
            assert_eq!(run_rule(&NoFloatEquality, hit).len(), 1, "{hit}");
        }
        for miss in [
            "if x == 0 {",
            "if x <= 0.5 {",
            "for i in 0..=10 {",
            "let r = 0.0..1.0;",
            "a == b",
            "let s = \"0.5 == x\";",
        ] {
            assert!(run_rule(&NoFloatEquality, miss).is_empty(), "{miss}");
        }
    }

    #[test]
    fn r5_fixture_corpus() {
        let bad = run_rule(&NoClocks, include_str!("../../fixtures/r5_bad.rs"));
        assert_eq!(bad.len(), 2, "{bad:?}");
        let good = run_rule(&NoClocks, include_str!("../../fixtures/r5_good.rs"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r5_ignores_lookalike_identifiers() {
        let out = run_rule(
            &NoClocks,
            "let instantaneous = 1; struct NotAnInstantiation;",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn r6_fixture_corpus() {
        let bad = run_rule(
            &NoDeprecatedQueryCalls,
            include_str!("../../fixtures/r6_bad.rs"),
        );
        assert_eq!(bad.len(), 2, "{bad:?}");
        let good = run_rule(
            &NoDeprecatedQueryCalls,
            include_str!("../../fixtures/r6_good.rs"),
        );
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn r6_spares_free_functions() {
        let out = run_rule(
            &NoDeprecatedQueryCalls,
            "let nn = nearest_trajectories(&mut idx, &q, &p, 5)?;",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
