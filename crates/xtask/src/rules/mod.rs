//! The rule modules and the traits that bind them to the driver.
//!
//! Every rule is an independent unit struct implementing [`Rule`] (one file
//! at a time) or [`WorkspaceRule`] (the whole scanned set at once, for
//! cross-file analyses like the lock-order audit). The scope wiring — which
//! directories each rule runs over — lives in `main.rs`; the rules
//! themselves are scope-agnostic and fully exercised by the fixture corpus
//! under `fixtures/`.

pub mod atomics;
pub mod durability;
pub mod hygiene;
pub mod lock_order;
pub mod panics;
pub mod threads;

use crate::lexer::SourceFile;
use crate::report::Violation;

/// A per-file analysis: sees one lexed file, appends diagnostics.
pub trait Rule {
    /// The stable rule identifier (`R1` … `R13`).
    fn id(&self) -> &'static str;
    /// Scans `file` and appends any violations to `out`.
    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>);
}

/// A whole-workspace analysis: sees every file in its scope at once.
pub trait WorkspaceRule {
    /// The stable rule identifier.
    fn id(&self) -> &'static str;
    /// Scans the file set and appends any violations to `out`.
    fn check(&self, files: &[SourceFile], out: &mut Vec<Violation>);
}

#[cfg(test)]
pub mod tests {
    //! Shared helpers for the fixture-corpus self-tests.
    use super::*;
    use std::path::Path;

    /// Lexes an inline or `include_str!`-ed fixture under a synthetic name.
    pub fn lex_fixture(src: &str) -> SourceFile {
        SourceFile::lex(Path::new("fixture.rs"), src)
    }

    /// Runs a per-file rule over one fixture and returns its diagnostics.
    pub fn run_rule(rule: &dyn Rule, src: &str) -> Vec<Violation> {
        let file = lex_fixture(src);
        let mut out = Vec::new();
        rule.check(&file, &mut out);
        out
    }

    /// The 1-based lines a rule flags in `src`, in report order.
    pub fn flagged_lines(rule: &dyn Rule, src: &str) -> Vec<usize> {
        let mut out = run_rule(rule, src);
        crate::report::sort(&mut out);
        out.into_iter().map(|v| v.line).collect()
    }
}
