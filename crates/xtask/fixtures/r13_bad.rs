//! R13 corpus: writable handles that can drop with bytes in the page cache.
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Creates and writes a segment, then lets the handle drop unsynced.
pub fn write_segment(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(payload)?;
    Ok(())
}

/// An append-mode builder chain with no barrier anywhere in the function.
pub fn open_for_append(path: &Path) -> std::io::Result<File> {
    OpenOptions::new().append(true).create(true).open(path)
}

/// The sync lives in a *different* function: the creating function still
/// returns with the handle's bytes unflushed, so the site is flagged.
pub fn write_then_defer(path: &Path, payload: &[u8]) -> std::io::Result<File> {
    let mut f = File::create(path)?;
    f.write_all(payload)?;
    Ok(f)
}

/// Not the barrier for the sites above — a separate function.
pub fn barrier_elsewhere(f: &File) -> std::io::Result<()> {
    f.sync_all()
}
