//! R3 seeded-bad: a crate root missing both safety attributes.
#![warn(missing_docs)]

pub fn f() {}
