//! R12 seeded-bad: detached threads — the handle dies on the spot.

fn fire_and_forget() {
    std::thread::spawn(move || pump());
    let _ = thread::spawn(worker);
    drop(thread::spawn(logger));
}
