//! R2 seeded-bad: numeric `as` casts in a binary-format module.

fn narrow(n: u64) -> u32 {
    n as u32
}

fn widen_lossy(x: f64) -> usize {
    x as usize
}
