//! R8 known-good: parameter silencers, value-position `.ok()`, handled
//! results, and a justified fire-and-forget.

fn silencers(bound: f64, n: usize, reason: &str) {
    let _ = n;
    let _ = (bound, n);
    let _ = &reason;
}

fn value_position(lock: Result<Guard, E>) -> Option<u32> {
    let v = lock.ok();
    v.map(|g| g.value)
}

fn handled(store: &mut Store, id: PageId, page: &Page) -> Result<(), E> {
    store.write(id, page)?;
    Ok(())
}

fn justified(path: &Path) {
    // invariant: best-effort cleanup; failure changes nothing observable.
    let _ = remove_file(path);
}

#[cfg(test)]
mod tests {
    fn fine_here(p: &Path) {
        std::fs::remove_file(p).ok();
    }
}
