//! R5 seeded-bad: wall-clock access in library code.

use std::time::Instant;

fn measure() -> u128 {
    let t0 = Instant::now();
    t0.elapsed().as_micros()
}
