#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Clean: errors handled, builder API, no clocks, no casts.

fn top(db: &mut Db, q: &Traj) -> Result<Vec<Hit>, E> {
    Query::kmst(q).k(4).run(db)
}
