#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Clean integration tree: nothing here trips any rule.
