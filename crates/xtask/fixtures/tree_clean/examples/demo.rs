//! Clean showcase: handled socket result, builder query.

fn main() -> Result<(), E> {
    let db = open()?;
    let hits = Query::kmst(&traj()).k(3).run(&mut db)?;
    show(hits);
    Ok(())
}
