//! R1 known-good: errors are propagated, unwraps are justified or in tests.

fn first(x: Option<u32>) -> Result<u32, E> {
    x.ok_or(E::Missing)
}

fn second(v: Option<u32>) -> u32 {
    // Near-misses: the non-panicking unwrap family is legal.
    v.unwrap_or(0) + v.unwrap_or_else(|| 1) + v.unwrap_or_default()
}

fn third(n: usize) -> u32 {
    // invariant: the store caps page ids well below u32::MAX, so this
    // conversion is lossless.
    u32::try_from(n).expect("capped")
}

fn fourth() {
    let s = "contains .unwrap() and panic! in a string";
    let r = r#"raw with x.unwrap() inside"#;
    log(s, r);
}

#[cfg(test)]
mod tests {
    fn in_tests_anything_goes(x: Option<u32>) -> u32 {
        x.unwrap()
    }
}
