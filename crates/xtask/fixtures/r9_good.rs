//! R9 known-good: handled socket results, non-socket unwraps, and a
//! justified bind.

fn serve(addr: &str) -> Result<(), E> {
    let listener = TcpListener::bind(addr)?;
    if let Ok(peer) = listener.local_addr() {
        log(peer);
    }
    Ok(())
}

fn non_socket(options: &Options) -> usize {
    // invariant: `k` is defaulted by the builder; never None here.
    let k = options.k.unwrap();
    k
}

fn tuned(stream: &TcpStream) -> Result<(), E> {
    stream.set_read_timeout(Some(d))?;
    stream.set_write_timeout(None)?;
    stream.set_nodelay(true)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    fn fine_here(addr: &str) {
        let l = TcpListener::bind(addr).unwrap();
        l.set_ttl(64).unwrap();
    }
}
