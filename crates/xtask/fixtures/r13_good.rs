//! R13 corpus: every writable handle reaches a barrier, readers are free.
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// The canonical shape: write, fsync, then the handle may drop.
pub fn write_segment(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(payload)?;
    f.sync_all()
}

/// `sync_data` counts: file length is pre-allocated, only data matters.
pub fn append_record(path: &Path, payload: &[u8]) -> std::io::Result<()> {
    let mut f = OpenOptions::new().append(true).create(true).open(path)?;
    f.write_all(payload)?;
    f.sync_data()
}

/// A directory-barrier helper counts too — the publish-by-rename shape.
pub struct Dir(std::path::PathBuf);

impl Dir {
    fn sync_dir(&self) -> std::io::Result<()> {
        File::open(&self.0).and_then(|d| d.sync_all())
    }

    /// Temp-write / rename / dir-fsync: durable publication.
    pub fn publish(&self, name: &str, payload: &[u8]) -> std::io::Result<()> {
        let tmp = self.0.join("tmp");
        let mut f = File::create(&tmp)?;
        f.write_all(payload)?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, self.0.join(name))?;
        self.sync_dir()
    }
}

/// Read-only handles lose nothing when dropped — out of scope.
pub fn read_segment(path: &Path) -> std::io::Result<File> {
    File::open(path)
}

/// A deliberate non-durable handle, excused at the creation site.
pub fn probe_writable(path: &Path) -> bool {
    // invariant: scratch probe to test writability; its loss is harmless
    File::create(path).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_skip_the_fsync() {
        let dir = std::env::temp_dir().join("r13");
        let _f = File::create(dir.join("scratch"));
    }
}
