//! R11 known-good: justified `Relaxed` in every accepted placement,
//! stronger orderings, and lookalike non-atomic calls.

impl Stats {
    fn bump(&self) {
        // ordering: monotonic counter; readers tolerate stale values.
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn publish(&self, v: u64) {
        self.bits.store(v, Ordering::Release);
    }

    fn snapshot(&self) -> u64 {
        self.hits.load(Ordering::Relaxed) // ordering: stats-only read
    }

    fn mark(&self, now: u64) {
        // ordering: the spawner joins this thread before reading; the
        // join supplies the happens-before edge.
        self.started_us
            .fetch_min(now, Ordering::Relaxed);
    }

    fn not_atomic(&self, items: &mut Vec<u32>, page: &Page, store: &Store) -> Result<u64, E> {
        items.swap(0, 1);
        page.load(store)
    }
}
