//! R1 seeded-bad: panicking constructs in library code.

fn first(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn second(r: Result<u32, E>) -> u32 {
    r.expect("always ok")
}

fn third(flag: bool) {
    if flag {
        panic!("boom");
    }
}
