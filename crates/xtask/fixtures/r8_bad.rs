//! R8 seeded-bad: fallible calls whose results vanish.

fn flush(pool: &mut Pool, store: &mut Store, id: PageId, page: &Page) {
    let _ = store.write(id, page);
    let _ = flush_all(pool);
    pool.flush(store).ok();
}
