//! R6 known-good: the `Query` builder and the still-supported low-level
//! free functions.

fn builder(db: &mut Db, q: &Traj) -> Result<Vec<Hit>, E> {
    Query::kmst(q).k(4).run(db)
}

fn low_level(idx: &mut Index, q: &Traj, p: &Params) -> Result<Vec<Hit>, E> {
    nearest_trajectories(idx, q, p, 5)
}

fn lookalikes(xs: &[u32]) -> std::ops::Range<u32> {
    // `.range(` is deprecated as a method; a free `range(` or a field
    // named range is not.
    let range = span(xs);
    range
}
