//! R4 seeded-bad: exact equality against float literals.

fn zero(x: f64) -> bool {
    x == 0.0
}

fn not_half(y: f64) -> bool {
    1.5 != y
}

fn epsilon(z: f64) -> bool {
    z == 1e-9
}
