//! R9 seeded-bad: socket I/O results unwrapped, including the option
//! setters the heuristic was extended to cover.

fn serve(addr: &str) {
    let listener = TcpListener::bind(addr).unwrap();
    let stream = TcpStream::connect(addr).unwrap();
    let peer = stream.peer_addr().expect("peer");
    stream.set_read_timeout(Some(d)).unwrap();
    stream.set_nodelay(true).unwrap();
    let copy = stream.try_clone().expect("clone");
    run(listener, peer, copy);
}
