//! R11 seeded-bad: `Ordering::Relaxed` without a rationale.

impl Stats {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn read(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}
