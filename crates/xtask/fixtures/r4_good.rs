//! R4 known-good: integer comparisons, ranges, ordered comparisons, and
//! tolerance-based float comparison.

fn int_eq(x: u32) -> bool {
    x == 0
}

fn ordered(x: f64) -> bool {
    x <= 0.5 && x >= -0.5
}

fn ranges(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..=10 {
        acc += xs[i % xs.len()];
    }
    let window = 0.0..1.0;
    if window.contains(&acc) {
        acc
    } else {
        0.0
    }
}

fn tolerant(a: f64, b: f64) -> bool {
    approx_eq(a, b)
}

#[cfg(test)]
mod tests {
    fn exact_is_fine_in_tests(x: f64) -> bool {
        x == 0.25
    }
}
