//! R6 seeded-bad: calls to the removed pre-builder query surface.

fn old_school(db: &mut Db, q: &Traj, p: &Params) -> Vec<Hit> {
    let top = db.most_similar(q, p, 4);
    let near = db.nearest_segments(q, p, 8);
    merge(top, near)
}
