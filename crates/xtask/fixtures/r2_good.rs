//! R2 known-good: width changes go through From/TryFrom; non-numeric
//! casts and lookalike identifiers are out of scope.

fn widen(n: u32) -> u64 {
    u64::from(n)
}

fn narrow(n: u64) -> Result<u32, E> {
    u32::try_from(n).map_err(|_| E::Overflow)
}

fn erase(r: &dyn std::fmt::Debug) -> &dyn std::fmt::Debug {
    r as &dyn std::fmt::Debug
}

fn justified(n: u64) -> u32 {
    // invariant: callers mask to 24 bits before this point.
    n as u32
}

#[cfg(test)]
mod tests {
    fn fine_here(n: u64) -> u32 {
        n as u32
    }
}
