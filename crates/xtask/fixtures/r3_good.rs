//! R3 known-good: both attributes declared.
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub fn f() {}
