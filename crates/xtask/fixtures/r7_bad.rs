//! R7 seeded-bad: unwrapping lock guards.

fn grab(m: &Mutex<u32>, rw: &RwLock<u32>) -> u32 {
    let g = m.lock().unwrap();
    let r = rw.read().unwrap();
    let mut w = rw.write().unwrap();
    *w += *g + *r;
    *w
}
