//! R10 known-good: one consistent nesting order everywhere, an explicit
//! `drop` releasing a guard before the next acquisition, and a
//! construct-scoped `if let` guard.

fn submit(s: &Shards) -> Result<(), E> {
    let q = s.queue.lock().map_err(|_| E::Poisoned)?;
    let slots = s.slots.lock().map_err(|_| E::Poisoned)?;
    move_job(q, slots);
    Ok(())
}

fn requeue(s: &Shards) -> Result<(), E> {
    let q = s.queue.lock().map_err(|_| E::Poisoned)?;
    q.push_back(0);
    drop(q);
    let slots = s.slots.lock().map_err(|_| E::Poisoned)?;
    clear(slots);
    Ok(())
}

fn stats(s: &Shards) -> Result<usize, E> {
    if let Ok(g) = s.slots.lock() {
        return Ok(g.len());
    }
    Ok(0)
}
