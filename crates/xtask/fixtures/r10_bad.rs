//! R10 seeded-bad: the queue/slots pair nested in opposite orders — the
//! classic AB/BA deadlock the audit exists to catch.

fn submit(s: &Shards) -> Result<(), E> {
    let q = s.queue.lock().map_err(|_| E::Poisoned)?;
    let slots = s.slots.lock().map_err(|_| E::Poisoned)?;
    move_job(q, slots);
    Ok(())
}

fn drain(s: &Shards) -> Result<(), E> {
    let slots = s.slots.lock().map_err(|_| E::Poisoned)?;
    let q = s.queue.lock().map_err(|_| E::Poisoned)?;
    move_job(q, slots);
    Ok(())
}
