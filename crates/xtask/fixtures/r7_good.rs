//! R7 known-good: poisoning surfaces as an error, never a second panic.

fn grab(m: &Mutex<u32>) -> Result<u32, E> {
    let g = m.lock().map_err(|_| E::Poisoned)?;
    Ok(*g)
}

fn option_unwraps_are_not_lock_unwraps(o: Option<u32>) -> u32 {
    o.unwrap_or_default()
}

fn justified(m: &Mutex<u32>) -> u32 {
    // invariant: single-threaded setup path, no poisoner can exist yet.
    let g = m.lock().unwrap();
    *g
}

#[cfg(test)]
mod tests {
    fn fine_here(m: &Mutex<u32>) -> u32 {
        *m.lock().unwrap()
    }
}
