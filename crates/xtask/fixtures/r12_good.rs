//! R12 known-good: joined, pushed, returned, scoped, and justified
//! spawn handles.

fn joined() {
    let h = thread::spawn(worker);
    h.join().ok();
}

fn pooled(workers: &mut Vec<JoinHandle<()>>, n: String) -> Result<(), E> {
    workers.push(thread::Builder::new().name(n).spawn(worker)?);
    Ok(())
}

fn handed() -> JoinHandle<()> {
    thread::spawn(worker)
}

fn scoped(xs: &[u32]) {
    std::thread::scope(|s| {
        for x in xs {
            s.spawn(move || work(x));
        }
    });
}

fn justified() {
    // invariant: fire-and-forget log pump; exits with the process.
    std::thread::spawn(log_pump);
}
