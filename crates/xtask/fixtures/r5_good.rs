//! R5 known-good: deterministic library code; lookalike identifiers do
//! not trip the word-level check.

fn deterministic(steps: u64) -> u64 {
    let instantaneous = steps * 2;
    instantaneous
}

struct NotAnInstantiation;

fn tick(clock: &dyn Clock) -> u64 {
    clock.elapsed_us()
}
