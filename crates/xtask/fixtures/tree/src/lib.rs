#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Seeded integration tree: the workspace facade itself is clean.
