//! Seeded: R6 — a deprecated query method call in showcase code.

fn main() {
    let hits = db.most_similar(q, p, 3);
    show(hits);
}
