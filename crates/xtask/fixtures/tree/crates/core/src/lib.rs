#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Seeded: R4 — exact float equality.

fn is_zero(x: f64) -> bool {
    x == 0.0
}
