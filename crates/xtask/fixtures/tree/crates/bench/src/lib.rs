#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Seeded: R7 — a lock unwrap. The `std::time` use is allowlisted here
//! (bench crates may measure wall time) and must NOT trip R5.

use std::time::Instant;

fn measure(m: &Mutex<u32>) -> u32 {
    let start = Instant::now();
    let v = *m.lock().unwrap();
    elapsed(start);
    v
}
