//! Seeded: R3 — both crate-root attributes missing.

mod codec;
mod shared;
