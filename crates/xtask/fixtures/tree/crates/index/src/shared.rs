//! Seeded: R11 — `Relaxed` without an `// ordering:` justification.

impl Stats {
    fn bump(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}
