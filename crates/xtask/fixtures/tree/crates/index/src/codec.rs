//! Seeded: R2 — a lossy `as` cast in a binary-format module.

fn widen(n: u16) -> u32 {
    n as u32
}
