//! Seeded: R1 (an expect), R8 (a discarded `Result`), and R2 (a lossy
//! `as` cast) in the metric tree's snapshot codec scope.

fn radius_of(rs: &[f64]) -> f64 {
    let r = rs.last().expect("non-empty");
    let _ = persist(rs);
    *r
}

fn encode_count(n: u64) -> u32 {
    n as u32
}
