//! Seeded: R9 — a socket unwrap (also R1; serve is in its scope).

fn serve(addr: &str) {
    let listener = TcpListener::bind(addr).unwrap();
    run(listener);
}
