//! Seeded: R11 + R12 — the readiness-loop module is inside the
//! concurrency-audit scope: an unjustified `Relaxed` and a detached IO
//! worker must both be reported from `serve/src/mux.rs`.

fn accept(shared: &Shared) {
    shared.live_conns.fetch_add(1, Ordering::Relaxed);
    std::thread::spawn(move || io_worker_loop(shared));
}
