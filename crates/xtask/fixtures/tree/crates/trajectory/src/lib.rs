#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Seeded: R1 (an unwrap) and R8 (a discarded `Result`).

fn sample(xs: &[u32]) -> u32 {
    let head = xs.first().unwrap();
    let _ = persist(xs);
    *head
}
