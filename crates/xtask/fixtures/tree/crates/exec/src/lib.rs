#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Seeded: R12 — a detached thread.

mod queue;

fn start() {
    std::thread::spawn(move || pump());
}
