//! Seeded: R10 — queue/slots locked in opposite orders across two
//! functions in the concurrency scope.

fn push(s: &Shards) -> Result<(), E> {
    let q = s.queue.lock().map_err(|_| E::Poisoned)?;
    let slots = s.slots.lock().map_err(|_| E::Poisoned)?;
    move_job(q, slots);
    Ok(())
}

fn pop(s: &Shards) -> Result<(), E> {
    let slots = s.slots.lock().map_err(|_| E::Poisoned)?;
    let q = s.queue.lock().map_err(|_| E::Poisoned)?;
    move_job(q, slots);
    Ok(())
}
