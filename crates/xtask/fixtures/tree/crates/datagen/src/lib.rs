#![forbid(unsafe_code)]
#![deny(missing_docs)]
//! Seeded: R5 — wall-clock access in library code.

use std::time::Instant;
