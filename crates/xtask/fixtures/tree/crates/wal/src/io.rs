//! Seeded R13 violation: a segment writer whose handle drops unsynced.
use std::fs::File;
use std::io::Write;

pub fn append_segment(path: &std::path::Path, payload: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(payload)?;
    Ok(())
}
