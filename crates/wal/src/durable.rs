//! The coupling: a sharded database that survives the process.
//!
//! [`DurableDatabase`] wraps an [`mst_exec::ShardedDatabase`] (shared by
//! `Arc`, so the executor and serving layers read the very same shards)
//! with write-ahead logging in front of every mutation:
//!
//! 1. **validate** — refuse anything replay could not re-apply (duplicate
//!    ids, empty trajectories, deletes on a substrate without
//!    [`DurableSubstrate::SUPPORTS_DELETE`]) *before* logging;
//! 2. **log** — append one record per operation, then one group-commit
//!    fsync for the whole batch;
//! 3. **apply** — only after the fsync returns, mutate the in-memory
//!    shards ([`ShardedDatabase::apply_op`], generation-published).
//!
//! A crash between 2 and 3 loses nothing: the in-memory state dies with
//! the process, and recovery rebuilds it as `snapshot + replay(lsn..)`.
//! Replay application is guarded — insert if absent, delete if present —
//! so replaying a log twice equals replaying it once, and a crash
//! *during* recovery re-runs harmlessly. [`DurableDatabase::open`] also
//! repairs a torn final segment (rewriting its valid prefix through the
//! atomic-rename path) and always resumes writing in a fresh segment, so
//! damage never accretes.

use std::collections::HashMap;
use std::sync::Arc;

use mst_exec::{ExecError, IngestOp, IngestOutcome, ShardedDatabase};
use mst_index::PAGE_SIZE;
use mst_search::TrajectoryStore;

use crate::record::{decode_frame, Decoded, WalRecord};
use crate::replay::{replay, TailState};
use crate::snapshot::{decode_snapshot, encode_snapshot, DurableSubstrate};
use crate::stream::{log_floor, read_committed_frames};
use crate::writer::{WalConfig, WalWriter};
use crate::{LogStore, Result, WalError};

/// Counters of the durable layer (monotonic over the handle's life,
/// except `applied_lsn`, which is a position).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct DurableStats {
    /// LSN of the last operation applied in memory.
    pub applied_lsn: u64,
    /// Records appended to the log.
    pub wal_appends: u64,
    /// Group-commit fsyncs issued.
    pub wal_fsyncs: u64,
    /// Log segment rotations.
    pub wal_rotations: u64,
    /// Framed bytes appended.
    pub wal_bytes: u64,
    /// Records re-applied by the last recovery (0 for a clean open).
    pub replayed_records: u64,
    /// Snapshots written by [`DurableDatabase::checkpoint`].
    pub checkpoints: u64,
}

/// A crash-recoverable trajectory database: WAL-before-apply ingest over
/// shared sharded state, LSN-stamped snapshots, replay on open.
pub struct DurableDatabase<I: DurableSubstrate, S: LogStore> {
    db: Arc<ShardedDatabase<I>>,
    writer: WalWriter<S>,
    applied_lsn: u64,
    replayed_records: u64,
    checkpoints: u64,
}

impl<I: DurableSubstrate, S: LogStore> DurableDatabase<I, S> {
    /// Bootstraps a brand-new empty database of `num_shards` shards in
    /// `store`: writes the genesis snapshot (LSN 0) and opens the first
    /// log segment. Refuses a store that already holds a database.
    pub fn create(store: S, config: WalConfig, num_shards: usize) -> Result<Self> {
        if store.read_snapshot()?.is_some() || !store.list_logs()?.is_empty() {
            return Err(WalError::Config(
                "store already holds a database; open it instead",
            ));
        }
        let parts = (0..num_shards)
            .map(|_| (I::fresh(), TrajectoryStore::new()))
            .collect();
        let db = Arc::new(ShardedDatabase::from_shard_parts(parts)?);
        store.write_snapshot(&encode_snapshot(&db, 0)?)?;
        let writer = WalWriter::create(store, config, 1)?;
        Ok(DurableDatabase {
            db,
            writer,
            applied_lsn: 0,
            replayed_records: 0,
            checkpoints: 0,
        })
    }

    /// Recovers the database a crash (or clean shutdown) left in
    /// `store`: decode the snapshot, replay the log's gapless suffix
    /// with guarded application, repair any torn final segment, and
    /// resume writing in a fresh segment at the next LSN.
    pub fn open(store: S, config: WalConfig) -> Result<Self> {
        let snapshot = store.read_snapshot()?.ok_or(WalError::Config(
            "store holds no database; create one first",
        ))?;
        let (db, snapshot_lsn) = decode_snapshot::<I>(&snapshot)?;
        let db = Arc::new(db);
        let report = replay(&store, snapshot_lsn + 1)?;
        let replayed_records = report.records.len() as u64;
        for (lsn, record) in &report.records {
            if let Some(op) = record.to_op()? {
                apply_replayed(&db, &op)
                    .map_err(|e| WalError::Corrupt(format!("replay of lsn {lsn} failed: {e}")))?;
            }
            // Physical page-image records carry their LSN in the chain
            // but need no logical application: the snapshot plus the
            // logical records already rebuild every page.
        }
        if report.tail != TailState::Clean {
            if let Some(segment) = report.tail_segment {
                let bytes = store.read_log(segment)?;
                let valid = bytes
                    .get(..report.tail_valid_bytes as usize)
                    .unwrap_or(&bytes);
                store.rewrite_log(segment, valid)?;
            }
        }
        let writer = WalWriter::create(store, config, report.next_lsn)?;
        Ok(DurableDatabase {
            db,
            writer,
            applied_lsn: report.next_lsn - 1,
            replayed_records,
            checkpoints: 0,
        })
    }

    /// Applies a batch of ingest operations durably: all records are
    /// validated, logged, made durable with **one** fsync (group
    /// commit), and only then applied to the shared in-memory shards.
    /// When `apply` returns, the batch survives any crash; when it
    /// errors during validation or logging, none of it was applied.
    pub fn apply(&mut self, ops: &[IngestOp]) -> Result<Vec<IngestOutcome>> {
        // Validation must simulate the batch's own effects (an insert
        // after a delete of the same id is fine; two inserts are not),
        // so presence is tracked as db-state overlaid with the batch.
        let mut presence: HashMap<u64, bool> = HashMap::new();
        let mut loggable = Vec::with_capacity(ops.len());
        for op in ops {
            let id = op.id();
            let exists = *presence
                .entry(id.0)
                .or_insert_with(|| self.db.trajectory(id).is_some());
            match op {
                IngestOp::Insert { trajectory, .. } => {
                    if trajectory.num_segments() == 0 {
                        return Err(WalError::Exec(ExecError::Config(
                            "ingest of a segment-less trajectory",
                        )));
                    }
                    if exists {
                        return Err(WalError::Exec(ExecError::Config(
                            "ingest insert of an id that already exists; delete it first",
                        )));
                    }
                    presence.insert(id.0, true);
                    loggable.push(op);
                }
                IngestOp::Delete { .. } => {
                    if !I::SUPPORTS_DELETE {
                        return Err(WalError::Config(
                            "this index substrate does not support deletes",
                        ));
                    }
                    if exists {
                        presence.insert(id.0, false);
                        loggable.push(op);
                    }
                    // A delete of an absent id is a no-op: not logged,
                    // reported as applied: false by the apply loop below.
                }
            }
        }
        for op in &loggable {
            self.writer.append(&WalRecord::from_op(op))?;
        }
        self.writer.commit()?;
        // The records are durable; now make them visible. A failure here
        // leaves the log ahead of memory — exactly what recovery replays.
        let mut outcomes = Vec::with_capacity(ops.len());
        for op in ops {
            outcomes.push(self.db.apply_op(op)?);
        }
        self.applied_lsn = self.writer.next_lsn() - 1;
        Ok(outcomes)
    }

    /// Applies a batch of *independent* ingest operations — the serving
    /// lane. Where [`DurableDatabase::apply`] treats the batch as one
    /// transaction (any validation failure refuses everything),
    /// `apply_independent` treats each operation as its own request:
    /// invalid operations are refused individually with a typed error
    /// while the rest proceed, sharing **one** group-commit fsync. This
    /// is what a server flushing a burst of ingest frames from many
    /// unrelated clients needs — one bad frame must not fail its
    /// neighbours, and the burst must not pay per-op fsyncs.
    ///
    /// Each successful entry reports `(lsn, applied)`: the operation's
    /// own LSN (a no-op delete of an absent id reports the current
    /// applied LSN) and whether state changed. The outer error is an
    /// I/O or index failure — nothing was acked if it fires during
    /// logging; a failure during application leaves the log ahead of
    /// memory, which recovery replays.
    pub fn apply_independent(
        &mut self,
        ops: &[IngestOp],
    ) -> Result<Vec<std::result::Result<(u64, bool), ExecError>>> {
        enum Plan {
            Log,
            Noop,
            Refuse(&'static str),
        }
        // Validation overlays the burst's own effects on db state, same
        // as `apply`: an insert after an in-burst delete of the id is
        // legal; two in-burst inserts of one id are not.
        let mut presence: HashMap<u64, bool> = HashMap::new();
        let mut plans = Vec::with_capacity(ops.len());
        for op in ops {
            let id = op.id();
            let exists = *presence
                .entry(id.0)
                .or_insert_with(|| self.db.trajectory(id).is_some());
            let plan = match op {
                IngestOp::Insert { trajectory, .. } => {
                    if trajectory.num_segments() == 0 {
                        Plan::Refuse("ingest of a segment-less trajectory")
                    } else if exists {
                        Plan::Refuse("ingest insert of an id that already exists; delete it first")
                    } else {
                        presence.insert(id.0, true);
                        Plan::Log
                    }
                }
                IngestOp::Delete { .. } => {
                    if !I::SUPPORTS_DELETE {
                        Plan::Refuse("this index substrate does not support deletes")
                    } else if exists {
                        presence.insert(id.0, false);
                        Plan::Log
                    } else {
                        Plan::Noop
                    }
                }
            };
            plans.push(plan);
        }
        let mut staged: Vec<Option<u64>> = Vec::with_capacity(ops.len());
        for (op, plan) in ops.iter().zip(&plans) {
            staged.push(match plan {
                Plan::Log => Some(self.writer.append(&WalRecord::from_op(op))?),
                Plan::Noop | Plan::Refuse(_) => None,
            });
        }
        self.writer.commit()?;
        let mut results = Vec::with_capacity(ops.len());
        for ((op, plan), lsn) in ops.iter().zip(plans).zip(staged) {
            match plan {
                Plan::Refuse(msg) => results.push(Err(ExecError::Config(msg))),
                Plan::Noop => results.push(Ok((self.applied_lsn, false))),
                Plan::Log => {
                    let outcome = self.db.apply_op(op)?;
                    self.applied_lsn = lsn.unwrap_or(self.applied_lsn);
                    results.push(Ok((self.applied_lsn, outcome.applied)));
                }
            }
        }
        Ok(results)
    }

    /// Logs one physical page-image redo record (substrate-internal
    /// maintenance that bypasses the logical lane). Durable when the
    /// call returns — page images are rare enough to commit alone.
    pub fn log_page_image(&mut self, shard: u32, page: u32, bytes: &[u8]) -> Result<u64> {
        if bytes.len() != PAGE_SIZE {
            return Err(WalError::Config("a page image must be PAGE_SIZE bytes"));
        }
        let lsn = self.writer.append(&WalRecord::PageImage {
            shard,
            page,
            bytes: bytes.into(),
        })?;
        self.writer.commit()?;
        self.applied_lsn = lsn;
        Ok(lsn)
    }

    /// Writes a snapshot consistent through everything applied so far
    /// and drops every log segment the snapshot makes redundant (all but
    /// the one being written to). Recovery time is then proportional to
    /// the log written *since* the checkpoint.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.writer.commit()?;
        let bytes = encode_snapshot(&self.db, self.applied_lsn)?;
        self.writer.store().write_snapshot(&bytes)?;
        let segments = self.writer.store().list_logs()?;
        if let Some((&_last, older)) = segments.split_last() {
            for &segment in older {
                self.writer.store().remove_log(segment)?;
            }
        }
        self.checkpoints += 1;
        Ok(())
    }

    /// Bootstraps a **replica** from a primary's snapshot image: decodes
    /// it (checksum-verified), makes it the store's own genesis snapshot,
    /// and opens the log at the snapshot's LSN + 1 so
    /// [`DurableDatabase::apply_replicated`] can continue the chain.
    /// Refuses a store that already holds a database — a restarting
    /// replica recovers its own state with [`DurableDatabase::open`] and
    /// re-subscribes from where it left off instead.
    pub fn from_snapshot(store: S, config: WalConfig, snapshot: &[u8]) -> Result<Self> {
        if store.read_snapshot()?.is_some() || !store.list_logs()?.is_empty() {
            return Err(WalError::Config(
                "store already holds a database; open it instead",
            ));
        }
        let (db, snapshot_lsn) = decode_snapshot::<I>(snapshot)?;
        let db = Arc::new(db);
        store.write_snapshot(snapshot)?;
        let writer = WalWriter::create(store, config, snapshot_lsn + 1)?;
        Ok(DurableDatabase {
            db,
            writer,
            applied_lsn: snapshot_lsn,
            replayed_records: 0,
            checkpoints: 0,
        })
    }

    /// Applies a batch of sealed frames shipped from a primary's log —
    /// the replica's write path. Every frame is re-verified from its raw
    /// bytes (checksum + structure) and must continue the replica's own
    /// LSN chain gaplessly; any gap, damage, or regression refuses the
    /// whole batch **before** anything is logged. The verified records
    /// are then appended to the replica's own log, made durable with one
    /// group-commit fsync, and applied to the in-memory shards with the
    /// same guarded (idempotent) application recovery uses — so a
    /// replica that crashes mid-batch recovers and re-applies
    /// harmlessly. Returns the new applied LSN.
    pub fn apply_replicated(&mut self, frames: &[Vec<u8>]) -> Result<u64> {
        let mut records = Vec::with_capacity(frames.len());
        let mut expected = self.writer.next_lsn();
        for frame in frames {
            match decode_frame(frame) {
                Decoded::Record {
                    lsn,
                    record,
                    consumed,
                } => {
                    if consumed != frame.len() {
                        return Err(WalError::Corrupt(format!(
                            "replicated frame for lsn {lsn} carries {} trailing bytes",
                            frame.len() - consumed
                        )));
                    }
                    if lsn != expected {
                        return Err(WalError::Corrupt(format!(
                            "replication stream gap: expected lsn {expected}, frame carries {lsn}"
                        )));
                    }
                    expected += 1;
                    records.push(record);
                }
                Decoded::Torn | Decoded::Corrupt => {
                    return Err(WalError::Corrupt(format!(
                        "replicated frame at lsn {expected} failed verification"
                    )));
                }
            }
        }
        for record in &records {
            self.writer.append(record)?;
        }
        self.writer.commit()?;
        for record in &records {
            if let Some(op) = record.to_op()? {
                apply_replayed(&self.db, &op)?;
            }
        }
        self.applied_lsn = self.writer.next_lsn() - 1;
        Ok(self.applied_lsn)
    }

    /// The lowest LSN still servable from this node's log. A subscriber
    /// asking to stream from below this floor needs a snapshot first
    /// (checkpoints prune segments from the front). The floor is the
    /// first retained segment's name — its first record's LSN.
    pub fn replication_floor(&self) -> Result<u64> {
        Ok(log_floor(self.writer.store())?.unwrap_or(self.applied_lsn + 1))
    }

    /// Encodes a snapshot of the **current** applied state, for
    /// bootstrapping a subscriber that fell below the replication floor.
    /// Unlike [`DurableDatabase::checkpoint`] this writes nothing to the
    /// store and prunes nothing.
    pub fn encode_current_snapshot(&self) -> Result<Vec<u8>> {
        encode_snapshot(&self.db, self.applied_lsn)
    }

    /// Reads the gapless run of sealed frames starting at `from_lsn`, as
    /// raw bytes, capped at the applied (committed) watermark and
    /// bounded by `max_bytes` (at least one frame ships when any is
    /// available). The replication feed: frames travel verbatim and the
    /// replica re-verifies every checksum on arrival.
    pub fn read_committed_frames(&self, from_lsn: u64, max_bytes: usize) -> Result<Vec<Vec<u8>>> {
        read_committed_frames(self.writer.store(), from_lsn, self.applied_lsn, max_bytes)
    }

    /// The shared in-memory database — hand clones of this `Arc` to the
    /// executor ([`mst_exec::ExecHandle`]) and serving layers; they see
    /// every applied ingest at generation granularity.
    pub fn database(&self) -> &Arc<ShardedDatabase<I>> {
        &self.db
    }

    /// LSN of the last operation applied in memory.
    pub fn applied_lsn(&self) -> u64 {
        self.applied_lsn
    }

    /// The durable layer's counters.
    pub fn stats(&self) -> DurableStats {
        let wal = self.writer.stats();
        DurableStats {
            applied_lsn: self.applied_lsn,
            wal_appends: wal.appends,
            wal_fsyncs: wal.fsyncs,
            wal_rotations: wal.rotations,
            wal_bytes: wal.bytes_appended,
            replayed_records: self.replayed_records,
            checkpoints: self.checkpoints,
        }
    }
}

/// Guarded (idempotent) application for replay: insert if absent,
/// delete if present. Whole-op granularity matches how recovery works —
/// the snapshot never holds half an operation, so a record is either
/// fully reflected already (skip) or not at all (apply). Public so the
/// recovery suite can prove replay-twice idempotence directly.
pub fn apply_replayed<I: DurableSubstrate>(
    db: &ShardedDatabase<I>,
    op: &IngestOp,
) -> std::result::Result<(), ExecError> {
    let exists = db.trajectory(op.id()).is_some();
    match op {
        IngestOp::Insert { .. } if exists => Ok(()),
        IngestOp::Delete { .. } if !exists => Ok(()),
        _ => db.apply_op(op).map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimStore;
    use mst_index::Rtree3D;
    use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};

    fn traj(id: u64, n: usize) -> Trajectory {
        let pts = (0..n)
            .map(|i| SamplePoint::new(i as f64, i as f64 * 0.5, id as f64))
            .collect();
        Trajectory::new(pts).expect("valid")
    }

    fn insert(id: u64) -> IngestOp {
        IngestOp::Insert {
            id: TrajectoryId(id),
            trajectory: traj(id, 5),
        }
    }

    fn delete(id: u64) -> IngestOp {
        IngestOp::Delete {
            id: TrajectoryId(id),
        }
    }

    #[test]
    fn create_apply_reopen_recovers_everything_acked() {
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 2).unwrap();
        let outcomes = db
            .apply(&[insert(1), insert(2), insert(3), delete(2)])
            .unwrap();
        assert!(outcomes.iter().take(3).all(|o| o.applied));
        assert_eq!(db.stats().wal_fsyncs, 1, "one group, one fsync");
        assert_eq!(db.applied_lsn(), 4);
        drop(db);

        let back = DurableDatabase::<Rtree3D, _>::open(store, WalConfig::default()).unwrap();
        assert_eq!(back.applied_lsn(), 4);
        assert_eq!(back.stats().replayed_records, 4);
        let shared = back.database();
        assert_eq!(shared.num_objects(), 2);
        assert!(shared.trajectory(TrajectoryId(1)).is_some());
        assert!(shared.trajectory(TrajectoryId(2)).is_none());
        assert!(shared.trajectory(TrajectoryId(3)).is_some());
    }

    #[test]
    fn checkpoint_truncates_the_log_and_speeds_recovery() {
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
        db.apply(&[insert(1), insert(2)]).unwrap();
        db.checkpoint().unwrap();
        db.apply(&[insert(3)]).unwrap();
        drop(db);

        let back = DurableDatabase::<Rtree3D, _>::open(store, WalConfig::default()).unwrap();
        assert_eq!(
            back.stats().replayed_records,
            1,
            "only the post-checkpoint suffix replays"
        );
        assert_eq!(back.database().num_objects(), 3);
        assert_eq!(back.applied_lsn(), 3);
    }

    #[test]
    fn validation_failures_log_and_apply_nothing() {
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
        db.apply(&[insert(1)]).unwrap();
        let appends_before = db.stats().wal_appends;
        // Second op of the batch is invalid: the whole batch is refused.
        let err = db.apply(&[insert(2), insert(1)]).expect_err("duplicate");
        assert!(matches!(err, WalError::Exec(ExecError::Config(_))));
        assert_eq!(db.stats().wal_appends, appends_before, "nothing logged");
        assert_eq!(db.database().num_objects(), 1, "nothing applied");
        // Delete-then-insert of the same id in one batch is legal.
        let outcomes = db.apply(&[delete(1), insert(1)]).unwrap();
        assert!(outcomes.iter().all(|o| o.applied));
    }

    #[test]
    fn independent_batches_refuse_per_op_and_share_one_fsync() {
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 2).unwrap();
        db.apply(&[insert(1)]).unwrap();
        let fsyncs_before = db.stats().wal_fsyncs;
        // A burst mixing valid ops, a duplicate insert, and a no-op
        // delete: the bad op is refused alone, the rest land, and the
        // whole burst costs exactly one fsync.
        let results = db
            .apply_independent(&[insert(2), insert(1), delete(9), delete(1), insert(3)])
            .unwrap();
        assert!(matches!(results[0], Ok((2, true))));
        assert!(results[1].is_err(), "duplicate insert refused alone");
        assert!(
            matches!(results[2], Ok((_, false))),
            "absent delete is a no-op"
        );
        assert!(matches!(results[3], Ok((3, true))));
        assert!(matches!(results[4], Ok((4, true))));
        assert_eq!(db.stats().wal_fsyncs, fsyncs_before + 1, "one group commit");
        assert_eq!(db.applied_lsn(), 4);
        drop(db);

        // Everything acked by the burst survives recovery.
        let back = DurableDatabase::<Rtree3D, _>::open(store, WalConfig::default()).unwrap();
        assert_eq!(back.database().num_objects(), 2, "ids 2 and 3 (1 deleted)");
        assert!(back.database().trajectory(TrajectoryId(1)).is_none());
        assert_eq!(back.applied_lsn(), 4);
    }

    #[test]
    fn deletes_on_a_tbtree_are_refused_before_logging() {
        use mst_index::TbTree;
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<TbTree, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
        db.apply(&[insert(1)]).unwrap();
        let err = db.apply(&[delete(1)]).expect_err("no deletes on tbtree");
        assert!(matches!(err, WalError::Config(_)));
        assert_eq!(db.stats().wal_appends, 1, "the delete never hit the log");
    }

    #[test]
    fn absent_id_deletes_are_unlogged_no_ops() {
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
        let outcomes = db.apply(&[delete(9)]).unwrap();
        assert!(!outcomes[0].applied);
        assert_eq!(db.stats().wal_appends, 0);
        assert_eq!(db.applied_lsn(), 0);
    }

    #[test]
    fn page_image_records_replay_as_chain_links_only() {
        let store = SimStore::new();
        let mut db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
        db.apply(&[insert(1)]).unwrap();
        db.log_page_image(0, 3, &vec![0x5A; PAGE_SIZE]).unwrap();
        db.apply(&[insert(2)]).unwrap();
        drop(db);
        let back = DurableDatabase::<Rtree3D, _>::open(store, WalConfig::default()).unwrap();
        assert_eq!(back.stats().replayed_records, 3);
        assert_eq!(back.database().num_objects(), 2);
    }

    #[test]
    fn a_replica_fed_committed_frames_converges_bit_identically() {
        let mut primary =
            DurableDatabase::<Rtree3D, _>::create(SimStore::new(), WalConfig::default(), 2)
                .unwrap();
        let replica_store = SimStore::new();
        let mut replica = DurableDatabase::<Rtree3D, _>::from_snapshot(
            replica_store.clone(),
            WalConfig::default(),
            &primary.encode_current_snapshot().unwrap(),
        )
        .unwrap();

        primary.apply(&[insert(1), insert(2), insert(3)]).unwrap();
        primary.apply(&[delete(2), insert(4)]).unwrap();
        let frames = primary
            .read_committed_frames(replica.applied_lsn() + 1, usize::MAX)
            .unwrap();
        assert_eq!(frames.len(), 5);
        assert_eq!(replica.apply_replicated(&frames).unwrap(), 5);
        assert_eq!(replica.applied_lsn(), primary.applied_lsn());
        assert_eq!(
            encode_snapshot(replica.database(), 0).unwrap(),
            encode_snapshot(primary.database(), 0).unwrap(),
            "replica state must be bit-identical"
        );

        // The replica's own log is durable: a reopen recovers the same
        // state without the primary.
        drop(replica);
        let back =
            DurableDatabase::<Rtree3D, _>::open(replica_store, WalConfig::default()).unwrap();
        assert_eq!(back.applied_lsn(), 5);
        assert_eq!(
            encode_snapshot(back.database(), 0).unwrap(),
            encode_snapshot(primary.database(), 0).unwrap()
        );
    }

    #[test]
    fn replication_gaps_and_tampered_frames_are_refused_before_logging() {
        let mut primary =
            DurableDatabase::<Rtree3D, _>::create(SimStore::new(), WalConfig::default(), 1)
                .unwrap();
        primary.apply(&[insert(1), insert(2), insert(3)]).unwrap();
        let frames = primary.read_committed_frames(1, usize::MAX).unwrap();

        let mut replica = DurableDatabase::<Rtree3D, _>::from_snapshot(
            SimStore::new(),
            WalConfig::default(),
            &DurableDatabase::<Rtree3D, _>::create(SimStore::new(), WalConfig::default(), 1)
                .unwrap()
                .encode_current_snapshot()
                .unwrap(),
        )
        .unwrap();

        // A gap (skipping lsn 1) is refused.
        assert!(matches!(
            replica.apply_replicated(&frames[1..]),
            Err(WalError::Corrupt(_))
        ));
        // A flipped bit is refused.
        let mut bent = frames.clone();
        let mid = bent[1].len() / 2;
        bent[1][mid] ^= 0x20;
        assert!(matches!(
            replica.apply_replicated(&bent),
            Err(WalError::Corrupt(_))
        ));
        // Nothing was logged or applied by the refusals.
        assert_eq!(replica.stats().wal_appends, 0);
        assert_eq!(replica.database().num_objects(), 0);
        // The intact batch still applies afterwards.
        assert_eq!(replica.apply_replicated(&frames).unwrap(), 3);
        assert_eq!(replica.database().num_objects(), 3);
    }

    #[test]
    fn the_replication_floor_rises_with_checkpoints() {
        let store = SimStore::new();
        let mut db = DurableDatabase::<Rtree3D, _>::create(
            store.clone(),
            WalConfig { rotate_bytes: 256 },
            1,
        )
        .unwrap();
        for id in 1..=12 {
            db.apply(&[insert(id)]).unwrap();
        }
        assert_eq!(db.replication_floor().unwrap(), 1);
        db.checkpoint().unwrap();
        let floor = db.replication_floor().unwrap();
        assert!(floor > 1, "pruned segments must raise the floor");
        // From the floor on, frames stream fine; capped at applied_lsn.
        let frames = db.read_committed_frames(floor, usize::MAX).unwrap();
        assert!(!frames.is_empty() || floor == db.applied_lsn() + 1);
    }

    #[test]
    fn create_refuses_an_occupied_store_and_open_an_empty_one() {
        let store = SimStore::new();
        assert!(matches!(
            DurableDatabase::<Rtree3D, _>::open(store.clone(), WalConfig::default()),
            Err(WalError::Config(_))
        ));
        let _db =
            DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
        assert!(matches!(
            DurableDatabase::<Rtree3D, _>::create(store, WalConfig::default(), 1),
            Err(WalError::Config(_))
        ));
    }
}
