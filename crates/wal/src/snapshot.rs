//! Whole-database snapshot images, LSN-stamped.
//!
//! A snapshot captures every shard — trajectory store *and* index image
//! (the `persist.rs` `MSTIDX02` format, which itself carries the LSN) —
//! sealed with a [`fold_bytes`] trailer over the whole byte stream:
//!
//! ```text
//! snapshot := "MSTWALSS" lsn:u64 shard_count:u32 shard{shard_count} sum:u32
//! shard    := object_count:u32 object{object_count} image_len:u64 image
//! object   := id:u64 point_count:u32 (t:f64 x:f64 y:f64){point_count}
//! ```
//!
//! Shards appear in routing order, objects in store order, so the same
//! database state encodes to the same bytes — which is what lets the
//! recovery suite assert replay-twice idempotence on image bits.
//!
//! [`DurableSubstrate`] is the seam that lets the codec stay generic
//! over the index substrates: their `save_lsn`/`load_lsn` are
//! inherent methods (each validates its own image kind), so the trait
//! re-routes them, adds [`DurableSubstrate::fresh`] for bootstrapping an
//! empty database, and declares whether the substrate can honor delete
//! records ([`DurableSubstrate::SUPPORTS_DELETE`] — checked *before*
//! logging, so the log never holds an op replay cannot apply).

use std::io::{Read, Write};

use mst_exec::ShardedDatabase;
use mst_index::checksum::fold_bytes;
use mst_index::{MetricTree, Rtree3D, StrTree, TbTree, TrajectoryIndexWrite};
use mst_search::{KmstSubstrate, TrajectoryStore};
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};

use crate::record::Cursor;
use crate::{Result, WalError};

const MAGIC: &[u8; 8] = b"MSTWALSS";

/// An index substrate the durable store can checkpoint and recover.
pub trait DurableSubstrate: TrajectoryIndexWrite + KmstSubstrate + Sized {
    /// Substrate name, for error messages and bench labels.
    const NAME: &'static str;

    /// Whether [`TrajectoryIndexWrite::delete_entry`] works. Checked
    /// before a delete is logged: a substrate that cannot delete must
    /// never be asked to replay one.
    const SUPPORTS_DELETE: bool;

    /// An empty index (bootstrapping a brand-new database).
    fn fresh() -> Self;

    /// Serializes the index, stamped as consistent through `lsn`.
    fn save_image<W: Write>(&mut self, writer: W, lsn: u64) -> mst_index::Result<()>;

    /// Reconstructs an index from an image, returning its LSN stamp.
    fn load_image<R: Read>(reader: R) -> mst_index::Result<(Self, u64)>;
}

impl DurableSubstrate for Rtree3D {
    const NAME: &'static str = "rtree";
    const SUPPORTS_DELETE: bool = true;

    fn fresh() -> Self {
        Rtree3D::new()
    }

    fn save_image<W: Write>(&mut self, writer: W, lsn: u64) -> mst_index::Result<()> {
        self.save_lsn(writer, lsn)
    }

    fn load_image<R: Read>(reader: R) -> mst_index::Result<(Self, u64)> {
        Rtree3D::load_lsn(reader)
    }
}

impl DurableSubstrate for TbTree {
    const NAME: &'static str = "tbtree";
    const SUPPORTS_DELETE: bool = false;

    fn fresh() -> Self {
        TbTree::new()
    }

    fn save_image<W: Write>(&mut self, writer: W, lsn: u64) -> mst_index::Result<()> {
        self.save_lsn(writer, lsn)
    }

    fn load_image<R: Read>(reader: R) -> mst_index::Result<(Self, u64)> {
        TbTree::load_lsn(reader)
    }
}

impl DurableSubstrate for StrTree {
    const NAME: &'static str = "strtree";
    const SUPPORTS_DELETE: bool = false;

    fn fresh() -> Self {
        StrTree::new()
    }

    fn save_image<W: Write>(&mut self, writer: W, lsn: u64) -> mst_index::Result<()> {
        self.save_lsn(writer, lsn)
    }

    fn load_image<R: Read>(reader: R) -> mst_index::Result<(Self, u64)> {
        StrTree::load_lsn(reader)
    }
}

impl DurableSubstrate for MetricTree {
    const NAME: &'static str = "metric";
    const SUPPORTS_DELETE: bool = false;

    fn fresh() -> Self {
        MetricTree::new()
    }

    fn save_image<W: Write>(&mut self, writer: W, lsn: u64) -> mst_index::Result<()> {
        self.save_lsn(writer, lsn)
    }

    fn load_image<R: Read>(reader: R) -> mst_index::Result<(Self, u64)> {
        MetricTree::load_lsn(reader)
    }
}

/// Encodes the whole database as a snapshot consistent through `lsn`.
/// Takes each shard's store read lock and index lock in turn (shard by
/// shard, store before index — the global lock order), so it can run
/// while other shards answer queries.
pub fn encode_snapshot<I: DurableSubstrate>(db: &ShardedDatabase<I>, lsn: u64) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(db.num_shards() as u32).to_le_bytes());
    for shard in db.shards() {
        let store = shard.store();
        out.extend_from_slice(&(store.len() as u32).to_le_bytes());
        for (id, traj) in store.iter() {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(traj.points().len() as u32).to_le_bytes());
            for p in traj.points() {
                out.extend_from_slice(&p.t.to_le_bytes());
                out.extend_from_slice(&p.x.to_le_bytes());
                out.extend_from_slice(&p.y.to_le_bytes());
            }
        }
        let mut image = Vec::new();
        shard
            .index()
            .with(|index| index.save_image(&mut image, lsn))??;
        out.extend_from_slice(&(image.len() as u64).to_le_bytes());
        out.extend_from_slice(&image);
        drop(store);
    }
    out.extend_from_slice(&fold_bytes(&out).to_le_bytes());
    Ok(out)
}

/// Decodes a snapshot back into a database plus the LSN it is
/// consistent through. The trailer checksum is verified before any
/// parsing, and each shard image's own LSN stamp must agree with the
/// header's.
pub fn decode_snapshot<I: DurableSubstrate>(bytes: &[u8]) -> Result<(ShardedDatabase<I>, u64)> {
    let corrupt = |msg: &str| WalError::Corrupt(format!("snapshot: {msg}"));
    let body_len = bytes
        .len()
        .checked_sub(4)
        .ok_or_else(|| corrupt("shorter than its checksum trailer"))?;
    let (body, trailer) = (
        bytes.get(..body_len).ok_or_else(|| corrupt("truncated"))?,
        bytes.get(body_len..).ok_or_else(|| corrupt("truncated"))?,
    );
    let stored = u32::from_le_bytes([
        trailer.first().copied().unwrap_or(0),
        trailer.get(1).copied().unwrap_or(0),
        trailer.get(2).copied().unwrap_or(0),
        trailer.get(3).copied().unwrap_or(0),
    ]);
    if fold_bytes(body) != stored {
        return Err(corrupt("checksum trailer mismatch"));
    }
    let mut cur = Cursor { buf: body };
    if cur.take(MAGIC.len()) != Some(&MAGIC[..]) {
        return Err(corrupt("bad magic"));
    }
    let lsn = cur.u64().ok_or_else(|| corrupt("missing lsn"))?;
    let shard_count = cur.u32().ok_or_else(|| corrupt("missing shard count"))? as usize;
    let mut parts = Vec::with_capacity(shard_count);
    for shard_no in 0..shard_count {
        let object_count = cur.u32().ok_or_else(|| corrupt("missing object count"))? as usize;
        let mut store = TrajectoryStore::new();
        for _ in 0..object_count {
            let id = TrajectoryId(cur.u64().ok_or_else(|| corrupt("missing object id"))?);
            let point_count = cur.u32().ok_or_else(|| corrupt("missing point count"))? as usize;
            if cur.remaining() < point_count.saturating_mul(24) {
                return Err(corrupt("object points truncated"));
            }
            let mut points = Vec::with_capacity(point_count);
            for _ in 0..point_count {
                let t = cur.f64().ok_or_else(|| corrupt("missing point"))?;
                let x = cur.f64().ok_or_else(|| corrupt("missing point"))?;
                let y = cur.f64().ok_or_else(|| corrupt("missing point"))?;
                points.push(SamplePoint::new(t, x, y));
            }
            let traj = Trajectory::new(points)
                .map_err(|e| corrupt(&format!("object {} invalid: {e}", id.0)))?;
            store.insert(id, traj);
        }
        let image_len = cur.u64().ok_or_else(|| corrupt("missing image length"))? as usize;
        let image = cur
            .take(image_len)
            .ok_or_else(|| corrupt("image truncated"))?;
        let (index, image_lsn) = I::load_image(image)?;
        if image_lsn != lsn {
            return Err(corrupt(&format!(
                "shard {shard_no} image is at lsn {image_lsn}, header says {lsn}"
            )));
        }
        parts.push((index, store));
    }
    if cur.remaining() != 0 {
        return Err(corrupt("trailing bytes after final shard"));
    }
    let db = ShardedDatabase::from_shard_parts(parts)?;
    Ok((db, lsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mst_index::TrajectoryIndex;
    use mst_trajectory::SamplePoint;

    fn traj(id: u64, n: usize) -> (TrajectoryId, Trajectory) {
        let pts = (0..n)
            .map(|i| SamplePoint::new(i as f64, i as f64 * 0.25, id as f64))
            .collect();
        (TrajectoryId(id), Trajectory::new(pts).expect("valid"))
    }

    #[test]
    fn a_sharded_rtree_database_roundtrips_with_its_lsn() {
        let db = ShardedDatabase::with_rtree(3, (0..10u64).map(|id| traj(id, 6))).unwrap();
        let bytes = encode_snapshot(&db, 42).unwrap();
        let (back, lsn) = decode_snapshot::<Rtree3D>(&bytes).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(back.num_shards(), 3);
        assert_eq!(back.num_objects(), 10);
        for id in 0..10u64 {
            let id = TrajectoryId(id);
            assert_eq!(back.trajectory(id), db.trajectory(id));
        }
        for (a, b) in db.shards().iter().zip(back.shards()) {
            assert_eq!(
                a.index().reader().num_entries(),
                b.index().reader().num_entries()
            );
        }
    }

    #[test]
    fn the_same_state_encodes_to_the_same_bytes() {
        let db = ShardedDatabase::with_tbtree(2, (0..6u64).map(|id| traj(id, 5))).unwrap();
        let a = encode_snapshot(&db, 7).unwrap();
        let (back, _) = decode_snapshot::<TbTree>(&a).unwrap();
        let b = encode_snapshot(&back, 7).unwrap();
        assert_eq!(a, b, "decode∘encode is byte-stable");
    }

    #[test]
    fn any_flipped_bit_is_rejected() {
        let db = ShardedDatabase::with_rtree(1, (0..3u64).map(|id| traj(id, 4))).unwrap();
        let bytes = encode_snapshot(&db, 1).unwrap();
        // Probe a spread of offsets (every byte would be slow: images are
        // page-sized). Include the magic, lsn, both length fields, the
        // trailer, and arbitrary interior bytes.
        let probes = [
            0,
            9,
            17,
            21,
            bytes.len() / 2,
            bytes.len() - 5,
            bytes.len() - 1,
        ];
        for &offset in &probes {
            let mut bent = bytes.clone();
            bent[offset] ^= 0x10;
            assert!(
                decode_snapshot::<Rtree3D>(&bent).is_err(),
                "flip at {offset} must be rejected"
            );
        }
        for cut in [0, 4, 11, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                decode_snapshot::<Rtree3D>(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
    }

    #[test]
    fn substrate_capabilities_are_declared() {
        assert!(Rtree3D::SUPPORTS_DELETE);
        assert!(!TbTree::SUPPORTS_DELETE);
        assert!(!StrTree::SUPPORTS_DELETE);
        assert_eq!(Rtree3D::fresh().num_entries(), 0);
    }
}
