//! Reading the log back: torn-tail-tolerant, gap-intolerant.
//!
//! A crash interrupts the log mid-write, so the *final* segment is
//! allowed to end in an incomplete frame ([`TailState::Torn`]) or a
//! checksum-failing one ([`TailState::Corrupt`]) — replay stops cleanly
//! at the last valid record and reports where the damage starts (the
//! repair offset). The same damage anywhere *else* cannot be a crash
//! artifact and is refused as real corruption, as is any discontinuity
//! in the LSN chain: the records handed back are always the gapless
//! run `from_lsn..next_lsn`.

use crate::record::{decode_frame, Decoded, WalRecord};
use crate::{LogStore, Result, WalError};

/// How the final segment ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailState {
    /// At a record boundary — the normal shutdown shape.
    Clean,
    /// Mid-frame — the shape a crash during an append leaves.
    Torn,
    /// A structurally complete frame with a bad checksum — the shape a
    /// torn write *inside* a sector, or bit rot, leaves.
    Corrupt,
}

/// What a log scan recovered.
#[derive(Debug)]
pub struct ReplayReport {
    /// The gapless run of records `from_lsn..next_lsn`, ascending.
    pub records: Vec<(u64, WalRecord)>,
    /// How the final segment ends.
    pub tail: TailState,
    /// Start LSN of the final segment, if the log has any segments.
    pub tail_segment: Option<u64>,
    /// Valid-prefix length of the final segment in bytes — the repair
    /// point: rewriting the segment to this length removes the damage
    /// without touching any record.
    pub tail_valid_bytes: u64,
    /// The LSN after the last valid record (where writing resumes).
    pub next_lsn: u64,
}

/// Scans every segment in LSN order and returns the records at or after
/// `from_lsn` (the snapshot's LSN + 1). Errors are permanent: chain
/// gaps, damage outside the final segment, or a log that ends before
/// reaching `from_lsn`.
pub fn replay<S: LogStore>(store: &S, from_lsn: u64) -> Result<ReplayReport> {
    let segments = store.list_logs()?;
    let mut records: Vec<(u64, WalRecord)> = Vec::new();
    let mut chain: Option<u64> = None;
    let mut tail = TailState::Clean;
    let mut tail_valid_bytes = 0;

    for (i, &start) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        if let Some(expected) = chain {
            if start != expected {
                return Err(WalError::Corrupt(format!(
                    "segment chain gap: expected a segment starting at lsn {expected}, \
                     found lsn {start}"
                )));
            }
        }
        let bytes = store.read_log(start)?;
        let mut offset = 0usize;
        // Within a segment the first record carries the segment's name;
        // every later one increments by exactly 1.
        let mut expected = start;
        while offset < bytes.len() {
            let Some(rest) = bytes.get(offset..) else {
                break;
            };
            match decode_frame(rest) {
                Decoded::Record {
                    lsn,
                    record,
                    consumed,
                } => {
                    if lsn != expected {
                        return Err(WalError::Corrupt(format!(
                            "lsn discontinuity in segment {start}: expected {expected}, \
                             record carries {lsn}"
                        )));
                    }
                    expected += 1;
                    offset += consumed;
                    if lsn >= from_lsn {
                        records.push((lsn, record));
                    }
                }
                Decoded::Torn => {
                    if !is_last {
                        return Err(WalError::Corrupt(format!(
                            "torn record in non-final segment {start} (offset {offset})"
                        )));
                    }
                    tail = TailState::Torn;
                    break;
                }
                Decoded::Corrupt => {
                    if !is_last {
                        return Err(WalError::Corrupt(format!(
                            "corrupt record in non-final segment {start} (offset {offset})"
                        )));
                    }
                    tail = TailState::Corrupt;
                    break;
                }
            }
        }
        if is_last {
            tail_valid_bytes = offset as u64;
        }
        chain = Some(expected);
    }

    let next_lsn = chain.unwrap_or(from_lsn);
    if records.is_empty() {
        // No replayable records is fine only when the log's end meets the
        // snapshot exactly; anything else means records were lost.
        if next_lsn != from_lsn {
            return Err(WalError::Corrupt(format!(
                "log ends at lsn {next_lsn} but the snapshot expects replay from {from_lsn}"
            )));
        }
    } else if let Some((first, _)) = records.first() {
        if *first != from_lsn {
            return Err(WalError::Corrupt(format!(
                "first replayable record is lsn {first} but the snapshot expects {from_lsn}"
            )));
        }
    }

    Ok(ReplayReport {
        records,
        tail,
        tail_segment: segments.last().copied(),
        tail_valid_bytes,
        next_lsn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::{LogIo, SimStore};
    use crate::record::encode_frame;
    use crate::writer::{WalConfig, WalWriter};
    use mst_trajectory::TrajectoryId;

    fn delete(id: u64) -> WalRecord {
        WalRecord::Delete {
            id: TrajectoryId(id),
        }
    }

    fn store_with(n: u64, rotate_bytes: u64) -> SimStore {
        let store = SimStore::new();
        let mut w = WalWriter::create(store.clone(), WalConfig { rotate_bytes }, 1).unwrap();
        for i in 0..n {
            w.append(&delete(i)).unwrap();
        }
        w.commit().unwrap();
        store
    }

    #[test]
    fn replays_the_whole_chain_across_rotated_segments() {
        let store = store_with(30, 64);
        assert!(store.list_logs().unwrap().len() > 1, "must span segments");
        let report = replay(&store, 1).unwrap();
        assert_eq!(report.tail, TailState::Clean);
        assert_eq!(report.next_lsn, 31);
        let lsns: Vec<u64> = report.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, (1..=30).collect::<Vec<u64>>());
    }

    #[test]
    fn from_lsn_skips_what_the_snapshot_already_holds() {
        let store = store_with(10, 64);
        let report = replay(&store, 7).unwrap();
        let lsns: Vec<u64> = report.records.iter().map(|(l, _)| *l).collect();
        assert_eq!(lsns, vec![7, 8, 9, 10]);
        // Snapshot exactly at the log's end: nothing to replay, no error.
        let report = replay(&store, 11).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(report.next_lsn, 11);
    }

    #[test]
    fn a_torn_final_tail_is_tolerated_and_locates_the_repair_point() {
        let store = store_with(5, 1 << 20);
        let clean_len = store.read_log(1).unwrap().len() as u64;
        // Append half a frame, as a crash mid-write would leave.
        let mut log = store.create_log_for_test(1);
        let frame = encode_frame(6, &delete(6));
        log.append(&frame[..frame.len() / 2]).unwrap();
        log.sync().unwrap();

        let report = replay(&store, 1).unwrap();
        assert_eq!(report.tail, TailState::Torn);
        assert_eq!(report.records.len(), 5);
        assert_eq!(report.next_lsn, 6);
        assert_eq!(report.tail_segment, Some(1));
        assert_eq!(report.tail_valid_bytes, clean_len);
    }

    #[test]
    fn a_corrupt_final_tail_is_tolerated_but_ends_the_replay() {
        let store = store_with(4, 1 << 20);
        let mut frame = encode_frame(5, &delete(5));
        let body = frame.len() - 1;
        frame[body] ^= 0xFF;
        let mut log = store.create_log_for_test(1);
        log.append(&frame).unwrap();
        log.sync().unwrap();

        let report = replay(&store, 1).unwrap();
        assert_eq!(report.tail, TailState::Corrupt);
        assert_eq!(report.records.len(), 4);
        assert_eq!(report.next_lsn, 5);
    }

    #[test]
    fn damage_in_a_non_final_segment_is_refused() {
        let store = store_with(30, 64);
        let segments = store.list_logs().unwrap();
        assert!(segments.len() > 1);
        let first = segments[0];
        let mut bytes = store.read_log(first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        store.rewrite_log(first, &bytes).unwrap();
        assert!(matches!(replay(&store, 1), Err(WalError::Corrupt(_))));
    }

    #[test]
    fn a_segment_chain_gap_is_refused() {
        let store = store_with(30, 64);
        let segments = store.list_logs().unwrap();
        assert!(segments.len() > 2);
        store.remove_log(segments[1]).unwrap();
        assert!(matches!(replay(&store, 1), Err(WalError::Corrupt(_))));
    }

    #[test]
    fn a_log_ending_before_the_snapshot_is_refused() {
        let store = store_with(5, 1 << 20);
        assert!(matches!(replay(&store, 9), Err(WalError::Corrupt(_))));
    }

    impl SimStore {
        /// Reopens segment `start` for appending *without* truncating —
        /// test-only seam for planting damaged tails.
        fn create_log_for_test(&self, start: u64) -> crate::io::SimLog {
            let bytes = self.read_log(start).unwrap();
            let mut log = self.create_log(start).unwrap();
            log.append(&bytes).unwrap();
            log.sync().unwrap();
            log
        }
    }
}
