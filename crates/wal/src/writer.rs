//! Appending side of the log: group commit and rotation.
//!
//! [`WalWriter::append`] assigns the next LSN, frames the record
//! ([`crate::record::encode_frame`]) and buffers it in the current
//! segment; nothing is durable — or ackable — until [`WalWriter::commit`]
//! returns, which makes *every* record appended since the last commit
//! durable with a single fsync. That is group commit: a burst of N
//! ingest operations costs one fsync, not N.
//!
//! Segments rotate at a record boundary once the current one exceeds
//! [`WalConfig::rotate_bytes`]. Rotation syncs the old segment before
//! the new one exists, so no handle is ever dropped with unsynced
//! bytes, and the LSN chain runs seamlessly across the boundary (a new
//! segment's name *is* the LSN of its first record).

use crate::record::{encode_frame, WalRecord};
use crate::{LogIo, LogStore, Result, WalError};

/// Tuning knobs of the appending side.
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes (checked before each append, at a record boundary).
    pub rotate_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        // 4 MiB keeps recovery sweeps short without rotating every burst.
        WalConfig {
            rotate_bytes: 4 << 20,
        }
    }
}

/// Counters of the appending side (monotonic over the writer's life).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Commit fsyncs issued (group commits, plus one per rotation with
    /// unsynced bytes).
    pub fsyncs: u64,
    /// Segment rotations.
    pub rotations: u64,
    /// Framed bytes appended.
    pub bytes_appended: u64,
}

/// The appending half of a write-ahead log over some [`LogStore`].
pub struct WalWriter<S: LogStore> {
    store: S,
    log: S::Log,
    config: WalConfig,
    /// LSN the next appended record will carry.
    next_lsn: u64,
    /// Appends since the last commit (the current group).
    pending: u64,
    stats: WalStats,
}

impl<S: LogStore> WalWriter<S> {
    /// Opens a fresh segment whose first record will carry `start_lsn`
    /// and writes through it from then on. `start_lsn` must be positive
    /// (LSN 0 is the pre-history snapshot stamp).
    pub fn create(store: S, config: WalConfig, start_lsn: u64) -> Result<Self> {
        if start_lsn == 0 {
            return Err(WalError::Config("the log starts at LSN 1, not 0"));
        }
        if config.rotate_bytes == 0 {
            return Err(WalError::Config("rotate_bytes must be positive"));
        }
        let log = store.create_log(start_lsn)?;
        Ok(WalWriter {
            store,
            log,
            config,
            next_lsn: start_lsn,
            pending: 0,
            stats: WalStats::default(),
        })
    }

    /// Appends one record, returning the LSN it was sealed with. The
    /// record is durable only after the next [`WalWriter::commit`].
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        if self.log.len() > self.config.rotate_bytes {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let frame = encode_frame(lsn, record);
        self.log.append(&frame)?;
        self.next_lsn += 1;
        self.pending += 1;
        self.stats.appends += 1;
        self.stats.bytes_appended += frame.len() as u64;
        Ok(lsn)
    }

    /// Makes every append since the last commit durable with one fsync.
    /// A no-op (and no fsync) when nothing is pending.
    pub fn commit(&mut self) -> Result<()> {
        if self.pending == 0 {
            return Ok(());
        }
        self.log.sync()?;
        self.stats.fsyncs += 1;
        self.pending = 0;
        Ok(())
    }

    /// Closes the current segment (syncing any unsynced tail first) and
    /// starts a fresh one at the next LSN.
    fn rotate(&mut self) -> Result<()> {
        if self.pending > 0 {
            // The old segment's bytes must be durable before its handle
            // goes away; these records stay un-acked until the caller's
            // commit, which is then free on this segment.
            self.log.sync()?;
            self.stats.fsyncs += 1;
            self.pending = 0;
        }
        self.log = self.store.create_log(self.next_lsn)?;
        self.stats.rotations += 1;
        Ok(())
    }

    /// The LSN the next append will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Appends not yet covered by a commit.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// The writer's counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The store underneath (snapshots, truncation — the durable
    /// database's checkpoint path).
    pub fn store(&self) -> &S {
        &self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimStore;
    use crate::record::{decode_frame, Decoded};
    use mst_trajectory::TrajectoryId;

    fn delete(id: u64) -> WalRecord {
        WalRecord::Delete {
            id: TrajectoryId(id),
        }
    }

    #[test]
    fn a_group_of_appends_costs_one_fsync() {
        let store = SimStore::new();
        let mut w = WalWriter::create(store.clone(), WalConfig::default(), 1).unwrap();
        for i in 0..10 {
            assert_eq!(w.append(&delete(i)).unwrap(), 1 + i);
        }
        assert_eq!(w.stats().fsyncs, 0, "nothing synced before commit");
        w.commit().unwrap();
        w.commit().unwrap();
        let stats = w.stats();
        assert_eq!(stats.appends, 10);
        assert_eq!(stats.fsyncs, 1, "one group, one fsync; empty commit free");
        assert_eq!(w.next_lsn(), 11);
    }

    #[test]
    fn rotation_splits_segments_at_record_boundaries_with_a_seamless_chain() {
        let store = SimStore::new();
        let config = WalConfig { rotate_bytes: 64 };
        let mut w = WalWriter::create(store.clone(), config, 1).unwrap();
        for i in 0..20 {
            w.append(&delete(i)).unwrap();
        }
        w.commit().unwrap();
        assert!(w.stats().rotations > 0, "64-byte segments must rotate");

        let segments = store.list_logs().unwrap();
        assert_eq!(segments.first(), Some(&1));
        let mut expected_lsn = 1;
        for &start in &segments {
            assert_eq!(start, expected_lsn, "segment name = first record's LSN");
            let bytes = store.read_log(start).unwrap();
            let mut off = 0;
            while off < bytes.len() {
                match decode_frame(&bytes[off..]) {
                    Decoded::Record { lsn, consumed, .. } => {
                        assert_eq!(lsn, expected_lsn);
                        expected_lsn += 1;
                        off += consumed;
                    }
                    other => panic!("mid-segment damage: {other:?}"),
                }
            }
        }
        assert_eq!(expected_lsn, 21, "all 20 records present across segments");
    }

    #[test]
    fn commit_is_the_durability_line_under_a_crash() {
        let store = SimStore::new();
        let mut w = WalWriter::create(store.clone(), WalConfig::default(), 1).unwrap();
        w.append(&delete(1)).unwrap();
        w.commit().unwrap();
        w.append(&delete(2)).unwrap();
        // Kill at the commit fsync: ops create(0) a(1) sync(2) a(3), kill 4.
        store.arm(crate::SimCrashPlan {
            kill_at_op: 4,
            seed: 3,
        });
        assert!(matches!(w.commit(), Err(WalError::Crashed)));
        store.reopen();
        let bytes = store.read_log(1).unwrap();
        match decode_frame(&bytes) {
            Decoded::Record { lsn, consumed, .. } => {
                assert_eq!(lsn, 1, "committed record survives");
                // Whatever follows is at most a torn fragment of record 2.
                match decode_frame(&bytes[consumed..]) {
                    Decoded::Torn | Decoded::Corrupt => {}
                    Decoded::Record { lsn, .. } => assert_eq!(lsn, 2),
                }
            }
            other => panic!("committed record lost: {other:?}"),
        }
    }

    #[test]
    fn zero_start_lsn_and_zero_rotate_bytes_are_config_errors() {
        assert!(matches!(
            WalWriter::create(SimStore::new(), WalConfig::default(), 0),
            Err(WalError::Config(_))
        ));
        assert!(matches!(
            WalWriter::create(SimStore::new(), WalConfig { rotate_bytes: 0 }, 1),
            Err(WalError::Config(_))
        ));
    }
}
