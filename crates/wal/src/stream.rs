//! Reading committed records *while the log is live*: the replication
//! feed and the offline integrity sweep.
//!
//! [`replay`](crate::replay::replay) rebuilds a database once, at open.
//! Replication needs something different: a **tail-follow cursor** that
//! repeatedly asks "give me the sealed frames from LSN `n` on", against
//! a log another handle is still appending to. [`read_committed_frames`]
//! is that read: it walks the segment chain, skips everything below
//! `from_lsn`, and returns raw frame bytes — verbatim, checksum and all —
//! up to a byte budget and a hard LSN cap (the caller's committed
//! watermark, so an fsync-pending tail is never shipped). The frames
//! travel the wire as-is; the receiving side re-verifies every checksum
//! and the gapless chain before applying, so replication inherits the
//! log's end-to-end integrity argument instead of inventing its own.
//!
//! [`verify_store`] is the operator-facing cousin (`mst-serve
//! --verify-store DIR`): a full offline sweep of snapshot + every
//! segment, classifying the tail (clean / torn / corrupt) and refusing
//! gaps, for runbooks that must answer "is this directory safe to
//! recover from?" without starting a server.

use crate::record::{decode_frame, Decoded, FRAME_HEADER};
use crate::replay::{replay, TailState};
use crate::snapshot::{decode_snapshot, DurableSubstrate};
use crate::{LogStore, Result, WalError};

/// The lowest LSN still readable from the log, or `None` for a log with
/// no segments. A subscriber asking for anything below this floor needs
/// a snapshot first — checkpoints prune segments from the front.
pub fn log_floor<S: LogStore>(store: &S) -> Result<Option<u64>> {
    Ok(store.list_logs()?.first().copied())
}

/// Reads the gapless run of sealed frames `from_lsn..=cap_lsn` as raw
/// bytes, stopping early once `max_bytes` of frames are collected (at
/// least one frame is always returned when any is available, so a
/// record bigger than the budget still ships — alone). A torn or
/// checksum-failing tail in the **final** segment ends the read cleanly
/// (those bytes are not committed); the same damage anywhere else, or a
/// chain gap, is refused as corruption.
///
/// `cap_lsn` is the caller's committed watermark: frames past it are
/// never returned even if present in the segment bytes, because an
/// append whose group commit has not fsynced yet must not replicate.
pub fn read_committed_frames<S: LogStore>(
    store: &S,
    from_lsn: u64,
    cap_lsn: u64,
    max_bytes: usize,
) -> Result<Vec<Vec<u8>>> {
    let segments = store.list_logs()?;
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut collected = 0usize;
    let mut chain: Option<u64> = None;
    for (i, &start) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        if let Some(expected) = chain {
            if start != expected {
                return Err(WalError::Corrupt(format!(
                    "segment chain gap: expected a segment starting at lsn {expected}, \
                     found lsn {start}"
                )));
            }
        }
        // Segments wholly below the request are chain-checked by name
        // only; their bytes need no scan.
        if !is_last && segments.get(i + 1).is_some_and(|&next| next <= from_lsn) {
            chain = Some(segments[i + 1]);
            continue;
        }
        let bytes = store.read_log(start)?;
        let mut offset = 0usize;
        let mut expected = start;
        while offset < bytes.len() {
            let Some(rest) = bytes.get(offset..) else {
                break;
            };
            match decode_frame(rest) {
                Decoded::Record { lsn, consumed, .. } => {
                    if lsn != expected {
                        return Err(WalError::Corrupt(format!(
                            "lsn discontinuity in segment {start}: expected {expected}, \
                             record carries {lsn}"
                        )));
                    }
                    expected += 1;
                    if lsn > cap_lsn {
                        return Ok(out);
                    }
                    if lsn >= from_lsn {
                        let frame = rest
                            .get(..consumed)
                            .ok_or_else(|| {
                                WalError::Corrupt(format!(
                                    "frame at lsn {lsn} overruns its segment"
                                ))
                            })?
                            .to_vec();
                        collected += frame.len();
                        out.push(frame);
                        if collected >= max_bytes {
                            return Ok(out);
                        }
                    }
                    offset += consumed;
                }
                Decoded::Torn | Decoded::Corrupt => {
                    if !is_last {
                        return Err(WalError::Corrupt(format!(
                            "damaged record in non-final segment {start} (offset {offset})"
                        )));
                    }
                    // The live writer's un-fsynced tail (or a crash
                    // artifact awaiting repair): not committed, not ours.
                    return Ok(out);
                }
            }
        }
        chain = Some(expected);
    }
    Ok(out)
}

/// What the offline integrity sweep found in a healthy store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// The snapshot's LSN stamp.
    pub snapshot_lsn: u64,
    /// Snapshot size in bytes (checksum verified, every shard decoded).
    pub snapshot_bytes: u64,
    /// Log segments present, in LSN order.
    pub segments: Vec<u64>,
    /// Replayable records after the snapshot (all checksums verified).
    pub records: u64,
    /// How the final segment ends. `Torn`/`Corrupt` here is survivable
    /// crash damage — recovery repairs it — reported so operators know.
    pub tail: TailState,
    /// The LSN recovery would resume writing at.
    pub next_lsn: u64,
}

/// Sweeps a store offline: decodes the snapshot (checksum + every shard
/// image), replays the whole log chain (every frame checksum, gapless
/// LSNs, damage confined to the final segment), and classifies the
/// tail. An error means the store cannot recover losslessly; a report
/// with a non-[`TailState::Clean`] tail means a crash left repairable
/// damage that the next open will trim.
pub fn verify_store<I: DurableSubstrate, S: LogStore>(store: &S) -> Result<VerifyReport> {
    let snapshot = store.read_snapshot()?.ok_or(WalError::Config(
        "store holds no database; nothing to verify",
    ))?;
    let (_db, snapshot_lsn) = decode_snapshot::<I>(&snapshot)?;
    let report = replay(store, snapshot_lsn + 1)?;
    // Replay validated the chain; re-derive the record count from it so
    // the sweep reports exactly what recovery would apply.
    Ok(VerifyReport {
        snapshot_lsn,
        snapshot_bytes: snapshot.len() as u64,
        segments: store.list_logs()?,
        records: report.records.len() as u64,
        tail: report.tail,
        next_lsn: report.next_lsn,
    })
}

/// The byte length a frame's header promises, for size accounting
/// without a copy. `None` when `buf` holds less than a header.
pub fn frame_len(buf: &[u8]) -> Option<usize> {
    let header = buf.get(..FRAME_HEADER)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    Some(FRAME_HEADER + len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::SimStore;
    use crate::record::{encode_frame, WalRecord};
    use crate::writer::{WalConfig, WalWriter};
    use crate::LogIo;
    use mst_trajectory::TrajectoryId;

    fn delete(id: u64) -> WalRecord {
        WalRecord::Delete {
            id: TrajectoryId(id),
        }
    }

    fn store_with(n: u64, rotate_bytes: u64) -> SimStore {
        let store = SimStore::new();
        let mut w = WalWriter::create(store.clone(), WalConfig { rotate_bytes }, 1).unwrap();
        for i in 0..n {
            w.append(&delete(i)).unwrap();
        }
        w.commit().unwrap();
        store
    }

    fn lsns(frames: &[Vec<u8>]) -> Vec<u64> {
        frames
            .iter()
            .map(|f| match decode_frame(f) {
                Decoded::Record { lsn, .. } => lsn,
                other => panic!("shipped frame must decode: {other:?}"),
            })
            .collect()
    }

    #[test]
    fn the_cursor_follows_the_tail_across_rotated_segments() {
        let store = store_with(30, 64);
        assert!(store.list_logs().unwrap().len() > 1, "must span segments");
        let frames = read_committed_frames(&store, 1, 30, usize::MAX).unwrap();
        assert_eq!(lsns(&frames), (1..=30).collect::<Vec<u64>>());
        // Mid-log start, capped watermark.
        let frames = read_committed_frames(&store, 12, 20, usize::MAX).unwrap();
        assert_eq!(lsns(&frames), (12..=20).collect::<Vec<u64>>());
        // Nothing new at the tail: an empty batch, not an error.
        let frames = read_committed_frames(&store, 31, 30, usize::MAX).unwrap();
        assert!(frames.is_empty());
    }

    #[test]
    fn the_byte_budget_bounds_a_batch_but_never_starves_it() {
        let store = store_with(20, 1 << 20);
        let one = encode_frame(1, &delete(0)).len();
        let frames = read_committed_frames(&store, 1, 20, one * 3).unwrap();
        assert_eq!(lsns(&frames), vec![1, 2, 3]);
        // A budget smaller than one frame still ships one frame.
        let frames = read_committed_frames(&store, 4, 20, 1).unwrap();
        assert_eq!(lsns(&frames), vec![4]);
    }

    #[test]
    fn an_uncommitted_torn_tail_is_never_shipped() {
        let store = store_with(5, 1 << 20);
        let bytes = store.read_log(1).unwrap();
        let mut log = store.create_log(1).unwrap();
        log.append(&bytes).unwrap();
        let torn = encode_frame(6, &delete(6));
        log.append(&torn[..torn.len() / 2]).unwrap();
        log.sync().unwrap();
        let frames = read_committed_frames(&store, 1, 99, usize::MAX).unwrap();
        assert_eq!(lsns(&frames), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn gaps_and_interior_damage_are_refused() {
        let store = store_with(30, 64);
        let segments = store.list_logs().unwrap();
        assert!(segments.len() > 2);
        store.remove_log(segments[1]).unwrap();
        assert!(matches!(
            read_committed_frames(&store, 1, 30, usize::MAX),
            Err(WalError::Corrupt(_))
        ));
    }

    #[test]
    fn skipped_leading_segments_still_have_their_names_chain_checked() {
        let store = store_with(30, 64);
        let segments = store.list_logs().unwrap();
        let last = *segments.last().unwrap();
        // Asking from the last segment's start skips the earlier ones.
        let frames = read_committed_frames(&store, last, 30, usize::MAX).unwrap();
        assert_eq!(lsns(&frames), (last..=30).collect::<Vec<u64>>());
    }

    #[test]
    fn the_floor_is_the_first_segment() {
        let store = store_with(30, 64);
        let segments = store.list_logs().unwrap();
        assert_eq!(log_floor(&store).unwrap(), segments.first().copied());
        assert_eq!(log_floor(&SimStore::new()).unwrap(), None);
    }

    #[test]
    fn frame_len_matches_the_encoder() {
        let frame = encode_frame(9, &delete(9));
        assert_eq!(frame_len(&frame), Some(frame.len()));
        assert_eq!(frame_len(&frame[..4]), None);
    }
}
