//! The log record grammar.
//!
//! Every record travels in one frame:
//!
//! ```text
//! frame    := payload_len:u32 checksum:u32 payload
//! payload  := lsn:u64 kind:u8 body
//! checksum := fold_bytes(payload)          (word-folded FNV, checksum.rs)
//!
//! body(Insert,  kind 1) := id:u64 count:u32 (t:f64 x:f64 y:f64){count}
//! body(Delete,  kind 2) := id:u64
//! body(PageImage, kind 3) := shard:u32 page:u32 bytes[PAGE_SIZE]
//! ```
//!
//! All integers and floats are little-endian. The checksum seals the
//! *whole* payload — LSN included — so a record can never be replayed
//! under a different sequence number than it was written with. `Insert`
//! and `Delete` are the logical ingest operations
//! ([`mst_exec::IngestOp`]); `PageImage` is a physical redo entry (one
//! sealed page) for substrate-internal maintenance that bypasses the
//! logical lane — the replayer surfaces it to the caller's redo hook.

use mst_exec::IngestOp;
use mst_index::checksum::fold_bytes;
use mst_index::PAGE_SIZE;
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};

use crate::{Result, WalError};

/// `payload_len` + `checksum`.
pub const FRAME_HEADER: usize = 8;

/// Upper bound on one payload (defensive: a corrupt length prefix must
/// not drive allocation). Generous next to real records — a `PageImage`
/// payload is `9 + 8 + PAGE_SIZE` bytes.
pub const MAX_PAYLOAD: usize = 1 << 22;

/// One write-ahead log record (without its LSN, which frames carry).
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A whole trajectory entering the database.
    Insert {
        /// The object's identity.
        id: TrajectoryId,
        /// The trajectory's sample points, in time order.
        points: Vec<SamplePoint>,
    },
    /// A trajectory (and all its segment entries) leaving the database.
    Delete {
        /// The object's identity.
        id: TrajectoryId,
    },
    /// Physical redo: the sealed image of one index page of one shard.
    PageImage {
        /// The shard whose page store the image belongs to.
        shard: u32,
        /// The page id within that store.
        page: u32,
        /// Exactly [`mst_index::PAGE_SIZE`] bytes.
        bytes: Box<[u8]>,
    },
}

impl WalRecord {
    /// The logical record for one ingest operation.
    pub fn from_op(op: &IngestOp) -> WalRecord {
        match op {
            IngestOp::Insert { id, trajectory } => WalRecord::Insert {
                id: *id,
                points: trajectory.points().to_vec(),
            },
            IngestOp::Delete { id } => WalRecord::Delete { id: *id },
        }
    }

    /// The ingest operation a logical record replays as (`None` for
    /// physical records). A logged `Insert` always came from a valid
    /// trajectory, so a points list [`Trajectory::new`] rejects is
    /// corruption that slipped past the checksum — reported, not replayed.
    pub fn to_op(&self) -> Result<Option<IngestOp>> {
        match self {
            WalRecord::Insert { id, points } => {
                let trajectory = Trajectory::new(points.clone()).map_err(|e| {
                    WalError::Corrupt(format!("insert record for object {} : {e}", id.0))
                })?;
                Ok(Some(IngestOp::Insert {
                    id: *id,
                    trajectory,
                }))
            }
            WalRecord::Delete { id } => Ok(Some(IngestOp::Delete { id: *id })),
            WalRecord::PageImage { .. } => Ok(None),
        }
    }

    fn kind(&self) -> u8 {
        match self {
            WalRecord::Insert { .. } => 1,
            WalRecord::Delete { .. } => 2,
            WalRecord::PageImage { .. } => 3,
        }
    }
}

/// Encodes one record as a sealed frame carrying `lsn`.
pub fn encode_frame(lsn: u64, record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    payload.extend_from_slice(&lsn.to_le_bytes());
    payload.push(record.kind());
    match record {
        WalRecord::Insert { id, points } => {
            payload.extend_from_slice(&id.0.to_le_bytes());
            payload.extend_from_slice(&(points.len() as u32).to_le_bytes());
            for p in points {
                payload.extend_from_slice(&p.t.to_le_bytes());
                payload.extend_from_slice(&p.x.to_le_bytes());
                payload.extend_from_slice(&p.y.to_le_bytes());
            }
        }
        WalRecord::Delete { id } => {
            payload.extend_from_slice(&id.0.to_le_bytes());
        }
        WalRecord::PageImage { shard, page, bytes } => {
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&page.to_le_bytes());
            payload.extend_from_slice(bytes);
        }
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fold_bytes(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// The outcome of decoding the frame at the head of `buf`.
#[derive(Debug, PartialEq)]
pub enum Decoded {
    /// A sealed, parsed record occupying the first `consumed` bytes.
    Record {
        /// The record's log sequence number.
        lsn: u64,
        /// The record itself.
        record: WalRecord,
        /// Frame size in bytes (header + payload).
        consumed: usize,
    },
    /// `buf` ends mid-frame: the torn tail a crash leaves behind.
    Torn,
    /// A structurally complete frame whose checksum or body is garbage.
    Corrupt,
}

/// Decodes the frame at the head of `buf` (an empty `buf` is a clean
/// end, reported as [`Decoded::Torn`] with zero bytes — callers check
/// emptiness first when they care about the distinction).
pub fn decode_frame(buf: &[u8]) -> Decoded {
    let Some(header) = buf.get(..FRAME_HEADER) else {
        return Decoded::Torn;
    };
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let stored_sum = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    if len > MAX_PAYLOAD {
        return Decoded::Corrupt;
    }
    let Some(payload) = buf.get(FRAME_HEADER..FRAME_HEADER + len) else {
        return Decoded::Torn;
    };
    if fold_bytes(payload) != stored_sum {
        return Decoded::Corrupt;
    }
    match parse_payload(payload) {
        Some((lsn, record)) => Decoded::Record {
            lsn,
            record,
            consumed: FRAME_HEADER + len,
        },
        None => Decoded::Corrupt,
    }
}

/// Parses a checksum-verified payload. `None` = structurally impossible
/// body (which a correct writer never produces).
fn parse_payload(payload: &[u8]) -> Option<(u64, WalRecord)> {
    let mut cur = Cursor { buf: payload };
    let lsn = cur.u64()?;
    let kind = cur.u8()?;
    let record = match kind {
        1 => {
            let id = TrajectoryId(cur.u64()?);
            let count = cur.u32()? as usize;
            // Exact-size check before the loop: the count must match the
            // remaining bytes, so a plausible-but-wrong count cannot
            // over-allocate or leave slack.
            if cur.remaining() != count.checked_mul(24)? {
                return None;
            }
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let t = cur.f64()?;
                let x = cur.f64()?;
                let y = cur.f64()?;
                points.push(SamplePoint::new(t, x, y));
            }
            WalRecord::Insert { id, points }
        }
        2 => WalRecord::Delete {
            id: TrajectoryId(cur.u64()?),
        },
        3 => {
            let shard = cur.u32()?;
            let page = cur.u32()?;
            if cur.remaining() != PAGE_SIZE {
                return None;
            }
            let bytes: Box<[u8]> = cur.take(PAGE_SIZE)?.into();
            WalRecord::PageImage { shard, page, bytes }
        }
        _ => return None,
    };
    if cur.remaining() != 0 {
        return None;
    }
    Some((lsn, record))
}

/// Minimal bounds-checked reader over a payload (shared with the
/// snapshot codec).
pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let (head, rest) = (self.buf.get(..n)?, self.buf.get(n..)?);
        self.buf = rest;
        Some(head)
    }

    pub(crate) fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    pub(crate) fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    pub(crate) fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn insert_record(id: u64, n: usize) -> WalRecord {
        WalRecord::Insert {
            id: TrajectoryId(id),
            points: (0..n)
                .map(|i| SamplePoint::new(i as f64, i as f64 * 0.5, id as f64))
                .collect(),
        }
    }

    #[test]
    fn every_record_kind_roundtrips() {
        let records = [
            insert_record(7, 5),
            WalRecord::Delete {
                id: TrajectoryId(9),
            },
            WalRecord::PageImage {
                shard: 3,
                page: 12,
                bytes: vec![0xA5u8; PAGE_SIZE].into(),
            },
        ];
        for (i, record) in records.iter().enumerate() {
            let frame = encode_frame(100 + i as u64, record);
            match decode_frame(&frame) {
                Decoded::Record {
                    lsn,
                    record: decoded,
                    consumed,
                } => {
                    assert_eq!(lsn, 100 + i as u64);
                    assert_eq!(&decoded, record);
                    assert_eq!(consumed, frame.len());
                }
                other => panic!("expected a record, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_at_every_depth_reads_as_torn() {
        let frame = encode_frame(1, &insert_record(1, 4));
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]),
                Decoded::Torn,
                "cut at {cut} must look torn, not corrupt"
            );
        }
    }

    #[test]
    fn any_flipped_bit_reads_as_corrupt_or_torn_never_a_wrong_record() {
        let frame = encode_frame(42, &insert_record(2, 3));
        let original = match decode_frame(&frame) {
            Decoded::Record { record, .. } => record,
            other => panic!("sanity: {other:?}"),
        };
        for offset in 0..frame.len() {
            let mut bent = frame.clone();
            bent[offset] ^= 0x04;
            match decode_frame(&bent) {
                Decoded::Corrupt | Decoded::Torn => {}
                Decoded::Record { record, lsn, .. } => {
                    // Flipping a length-prefix bit can still frame a valid
                    // record only if the checksum collides — fold_bytes
                    // makes that astronomically unlikely; a passing decode
                    // here must be the identical record.
                    assert_eq!(record, original, "flip at {offset}");
                    assert_eq!(lsn, 42);
                }
            }
        }
    }

    #[test]
    fn hostile_length_prefixes_do_not_allocate() {
        let mut frame = encode_frame(
            1,
            &WalRecord::Delete {
                id: TrajectoryId(1),
            },
        );
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_frame(&frame), Decoded::Corrupt);
    }

    #[test]
    fn insert_records_convert_back_to_ops() {
        let op = IngestOp::Insert {
            id: TrajectoryId(5),
            trajectory: Trajectory::from_txy(&[(0.0, 0.0, 0.0), (1.0, 1.0, 1.0)]).expect("valid"),
        };
        let record = WalRecord::from_op(&op);
        let back = record.to_op().expect("valid").expect("logical");
        assert_eq!(back, op);

        let del = IngestOp::Delete {
            id: TrajectoryId(5),
        };
        assert_eq!(WalRecord::from_op(&del).to_op().unwrap(), Some(del));

        let physical = WalRecord::PageImage {
            shard: 0,
            page: 0,
            bytes: vec![0u8; PAGE_SIZE].into(),
        };
        assert_eq!(physical.to_op().unwrap(), None);
    }
}
