//! Durable, crash-recoverable storage for the MST database.
//!
//! The index crates give us checksummed 4 KiB pages, snapshot images, and
//! deterministic fault injection; the executor gives us a sharded
//! database with an online ingest lane. This crate couples them into a
//! store that survives the process:
//!
//! * [`WalRecord`]/[`record`] — the log record grammar: length-prefixed
//!   frames sealed with the same word-folded FNV checksum the page layer
//!   uses ([`mst_index::checksum::fold_bytes`]), each carrying a log
//!   sequence number (LSN).
//! * [`LogIo`]/[`LogStore`] — the seam between the log logic and the
//!   bytes underneath. [`FileStore`] is the real thing (directory of
//!   segment files, temp-file + rename snapshots); [`SimStore`] is an
//!   in-memory double with a *durability line*: unsynced bytes live in a
//!   volatile tail that a simulated crash discards, except for a torn
//!   prefix drawn from the seeded [`mst_index::FaultInjector`] stream.
//!   Killing the writer at every schedule point and recovering is how the
//!   crash suite proves torn-write safety.
//! * [`WalWriter`] — append + group-commit: any number of records are
//!   appended buffered, then one [`WalWriter::commit`] makes them all
//!   durable with a single fsync. Segments rotate at a size threshold.
//! * [`replay`] — torn-tail-tolerant log reading: replay stops cleanly at
//!   the first incomplete or checksum-failing record of the final
//!   segment (that is what a crash leaves behind), while damage anywhere
//!   else is reported as real corruption.
//! * [`stream`](read_committed_frames) — the live-log reads: a
//!   tail-follow cursor returning sealed frames verbatim for the
//!   replication feed (capped at the committed watermark, so un-fsynced
//!   bytes never ship), and [`verify_store`], the offline integrity
//!   sweep behind `mst-serve --verify-store`.
//! * [`DurableDatabase`] — the coupling: WAL-before-apply ingest over an
//!   [`mst_exec::ShardedDatabase`], LSN-stamped snapshot images
//!   (temp-file + rename of the `persist.rs` format), and recovery =
//!   `snapshot + replay(LSN..)` with idempotent re-application.
//!
//! # Invariants
//!
//! * A record is *acked* only after its commit's fsync returned: an acked
//!   operation survives any later crash.
//! * Replayable records form a gapless LSN chain continuing from the
//!   snapshot's LSN; recovery refuses gaps.
//! * Replaying a log twice is the same as replaying it once: application
//!   is guarded (`insert` if absent, `delete` if present), so a crash
//!   *during* recovery re-runs harmlessly.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod durable;
mod io;
pub mod record;
mod replay;
mod snapshot;
mod stream;
mod writer;

pub use durable::{apply_replayed, DurableDatabase, DurableStats};
pub use io::{FileLog, FileStore, LogIo, LogStore, SimCrashPlan, SimLog, SimStore};
pub use record::WalRecord;
pub use replay::{replay, ReplayReport, TailState};
pub use snapshot::{decode_snapshot, encode_snapshot, DurableSubstrate};
pub use stream::{frame_len, log_floor, read_committed_frames, verify_store, VerifyReport};
pub use writer::{WalConfig, WalStats, WalWriter};

/// Errors of the durability layer.
#[derive(Debug)]
pub enum WalError {
    /// An underlying I/O failure (file system or simulated device).
    Io(String),
    /// The log or snapshot holds bytes that cannot be what was written:
    /// checksum mismatch off the torn tail, LSN gaps, garbage framing.
    Corrupt(String),
    /// The simulated device reached its scheduled kill point; every
    /// subsequent operation fails until the store is reopened.
    Crashed,
    /// A caller error (invalid configuration or operation).
    Config(&'static str),
    /// An index-layer failure while applying or snapshotting.
    Index(mst_index::IndexError),
    /// An executor-layer failure while applying an ingest operation.
    Exec(mst_exec::ExecError),
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(msg) => write!(f, "wal io: {msg}"),
            WalError::Corrupt(msg) => write!(f, "wal corrupt: {msg}"),
            WalError::Crashed => write!(f, "wal device crashed (simulated kill point)"),
            WalError::Config(msg) => write!(f, "wal config: {msg}"),
            WalError::Index(e) => write!(f, "wal index: {e}"),
            WalError::Exec(e) => write!(f, "wal exec: {e}"),
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Index(e) => Some(e),
            WalError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mst_index::IndexError> for WalError {
    fn from(e: mst_index::IndexError) -> Self {
        WalError::Index(e)
    }
}

impl From<mst_exec::ExecError> for WalError {
    fn from(e: mst_exec::ExecError) -> Self {
        WalError::Exec(e)
    }
}

/// Crate-wide result.
pub type Result<T> = std::result::Result<T, WalError>;
