//! The seam between log logic and the bytes underneath.
//!
//! [`LogIo`] is one open segment (append + fsync); [`LogStore`] is the
//! directory around it: create/read/list/remove segments, atomically
//! rewrite one (torn-tail repair), and write/read the snapshot image via
//! temp-file + rename. Two implementations:
//!
//! * [`FileStore`]/[`FileLog`] — real files. Segments are named
//!   `wal-<start-lsn>.log` (zero-padded so lexicographic = numeric
//!   order); every write path ends in an explicit `sync_data`/`sync_all`
//!   before the handle can be dropped, and renames are followed by a
//!   directory fsync so the *name* is as durable as the bytes.
//! * [`SimStore`]/[`SimLog`] — an in-memory double with a crash model.
//!   Each file is `durable` bytes plus a `volatile` tail; `append` lands
//!   in the tail, `sync` moves the tail below the durability line. An
//!   armed [`SimCrashPlan`] kills the store at operation `k`: the op
//!   fails with [`WalError::Crashed`] (as does everything after it), and
//!   each volatile tail collapses to a torn prefix drawn from the seeded
//!   [`FaultInjector`] stream — exactly the state a power cut leaves on a
//!   real disk. [`SimStore::reopen`] is the reboot.
//!
//! Mutating store operations (`create_log`, `remove_log`, `rewrite_log`,
//! `write_snapshot`, every `append` and `sync`) are the crash-schedule
//! points; reads are not (recovery happens after the reboot). Snapshot
//! and rewrite are modeled atomic because the file implementation goes
//! through rename, which either happens or does not.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use mst_index::{FaultConfig, FaultInjector};

use crate::{Result, WalError};

/// One open log segment: buffered appends made durable by [`sync`].
///
/// [`sync`]: LogIo::sync
pub trait LogIo {
    /// Appends `bytes` at the end of the segment. The bytes are *not*
    /// durable until the next [`LogIo::sync`] returns.
    fn append(&mut self, bytes: &[u8]) -> Result<()>;

    /// Makes every appended byte durable (one fsync).
    fn sync(&mut self) -> Result<()>;

    /// Bytes appended so far (durable or not).
    fn len(&self) -> u64;
}

/// The directory a write-ahead log lives in.
pub trait LogStore {
    /// The segment handle this store hands out.
    type Log: LogIo;

    /// Creates (truncating any previous file of the same name) the
    /// segment whose first record will carry `start_lsn`.
    fn create_log(&self, start_lsn: u64) -> Result<Self::Log>;

    /// The full contents of a segment, durable bytes and unsynced tail
    /// alike (what a reader of the live file would see).
    fn read_log(&self, start_lsn: u64) -> Result<Vec<u8>>;

    /// Start LSNs of every segment, ascending.
    fn list_logs(&self) -> Result<Vec<u64>>;

    /// Removes one segment (post-checkpoint truncation).
    fn remove_log(&self, start_lsn: u64) -> Result<()>;

    /// Atomically replaces one segment's contents (torn-tail repair:
    /// the valid prefix survives, the damage does not).
    fn rewrite_log(&self, start_lsn: u64, bytes: &[u8]) -> Result<()>;

    /// Atomically replaces the snapshot image (temp-file + rename).
    fn write_snapshot(&self, bytes: &[u8]) -> Result<()>;

    /// The snapshot image, if one has ever been written.
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>>;
}

fn io_err(context: &str, e: std::io::Error) -> WalError {
    WalError::Io(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// File-backed store
// ---------------------------------------------------------------------------

const SNAPSHOT_NAME: &str = "snapshot.img";
const TMP_SUFFIX: &str = ".tmp";

/// A directory of `wal-<start-lsn>.log` segments plus `snapshot.img`.
#[derive(Clone)]
pub struct FileStore {
    dir: PathBuf,
}

impl FileStore {
    /// Opens (creating if absent) the log directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create log dir", e))?;
        Ok(FileStore { dir })
    }

    fn segment_path(&self, start_lsn: u64) -> PathBuf {
        self.dir.join(format!("wal-{start_lsn:020}.log"))
    }

    /// Fsyncs the directory itself so renames/creates survive a crash.
    fn sync_dir(&self) -> Result<()> {
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(|e| io_err("sync log dir", e))
    }

    /// Writes `bytes` to `<path>.tmp`, fsyncs, renames over `path`,
    /// fsyncs the directory. The visible file is never half-written.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(TMP_SUFFIX);
        let tmp = PathBuf::from(tmp);
        let mut f = File::create(&tmp).map_err(|e| io_err("create temp file", e))?;
        f.write_all(bytes)
            .map_err(|e| io_err("write temp file", e))?;
        f.sync_all().map_err(|e| io_err("sync temp file", e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| io_err("rename over target", e))?;
        self.sync_dir()
    }
}

impl LogStore for FileStore {
    type Log = FileLog;

    fn create_log(&self, start_lsn: u64) -> Result<FileLog> {
        let file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(self.segment_path(start_lsn))
            .map_err(|e| io_err("create segment", e))?;
        // The directory entry must be durable before the first commit is
        // acked, and create_log is the only chance to sync it.
        self.sync_dir()?;
        Ok(FileLog {
            file,
            written: 0,
            dirty: false,
        })
    }

    fn read_log(&self, start_lsn: u64) -> Result<Vec<u8>> {
        fs::read(self.segment_path(start_lsn)).map_err(|e| io_err("read segment", e))
    }

    fn list_logs(&self) -> Result<Vec<u64>> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err("list log dir", e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list log dir", e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(lsn) = name
                .strip_prefix("wal-")
                .and_then(|rest| rest.strip_suffix(".log"))
                .and_then(|digits| digits.parse::<u64>().ok())
            {
                out.push(lsn);
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    fn remove_log(&self, start_lsn: u64) -> Result<()> {
        fs::remove_file(self.segment_path(start_lsn)).map_err(|e| io_err("remove segment", e))?;
        self.sync_dir()
    }

    fn rewrite_log(&self, start_lsn: u64, bytes: &[u8]) -> Result<()> {
        self.write_atomic(&self.segment_path(start_lsn), bytes)
    }

    fn write_snapshot(&self, bytes: &[u8]) -> Result<()> {
        self.write_atomic(&self.dir.join(SNAPSHOT_NAME), bytes)
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>> {
        match fs::read(self.dir.join(SNAPSHOT_NAME)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read snapshot", e)),
        }
    }
}

/// One open file segment. Appends buffer in the OS page cache;
/// [`LogIo::sync`] is `fdatasync`. Dropping an unsynced handle loses the
/// tail on a crash, so `Drop` downgrades to a best-effort sync — commit
/// paths must still sync explicitly (a failed sync in `Drop` cannot be
/// reported, only not-lied-about).
pub struct FileLog {
    file: File,
    written: u64,
    dirty: bool,
}

impl LogIo for FileLog {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("append to segment", e))?;
        self.written += bytes.len() as u64;
        self.dirty = true;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| io_err("sync segment", e))?;
        self.dirty = false;
        Ok(())
    }

    fn len(&self) -> u64 {
        self.written
    }
}

impl Drop for FileLog {
    fn drop(&mut self) {
        if self.dirty {
            // invariant: best-effort flush in Drop — commit() is the real
            // barrier, and Drop has no channel to report an error anyway
            let _ = self.file.sync_data();
        }
    }
}

// ---------------------------------------------------------------------------
// Simulated store with a crash model
// ---------------------------------------------------------------------------

/// Kill the store at durability operation `kill_at_op` (0-based over
/// every mutating store/segment operation); torn-prefix lengths come
/// from the [`FaultInjector`] stream seeded with `seed`.
#[derive(Debug, Clone, Copy)]
pub struct SimCrashPlan {
    /// The operation index at which the crash fires (the op itself never
    /// happens).
    pub kill_at_op: u64,
    /// Seed of the torn-prefix randomness.
    pub seed: u64,
}

struct SimFile {
    durable: Vec<u8>,
    volatile: Vec<u8>,
}

struct ArmedPlan {
    kill_at_op: u64,
    injector: FaultInjector,
}

struct SimState {
    segments: BTreeMap<u64, SimFile>,
    snapshot: Option<Vec<u8>>,
    plan: Option<ArmedPlan>,
    ops: u64,
    crashed: bool,
}

/// In-memory [`LogStore`] double with a durability line and a scheduled
/// crash. Clones share the same state — the crash harness keeps one
/// clone to arm plans and reboot while the database under test owns
/// another.
#[derive(Clone)]
pub struct SimStore {
    state: Arc<Mutex<SimState>>,
}

impl Default for SimStore {
    fn default() -> Self {
        SimStore::new()
    }
}

impl SimStore {
    /// An empty store with no crash scheduled.
    pub fn new() -> Self {
        SimStore {
            state: Arc::new(Mutex::new(SimState {
                segments: BTreeMap::new(),
                snapshot: None,
                plan: None,
                ops: 0,
                crashed: false,
            })),
        }
    }

    /// Poison recovery is sound here: every mutation under the lock is a
    /// whole-value replacement or append on one entry, and the crash
    /// model itself is the only multi-step transition — which is exactly
    /// the state a test wants to observe after a panic.
    fn lock(&self) -> MutexGuard<'_, SimState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Arms a crash: operation `plan.kill_at_op` (and everything after
    /// it) fails with [`WalError::Crashed`]. Re-arming replaces any
    /// previous plan; the op counter keeps running.
    pub fn arm(&self, plan: SimCrashPlan) {
        let mut state = self.lock();
        state.plan = Some(ArmedPlan {
            kill_at_op: plan.kill_at_op,
            injector: FaultInjector::new(FaultConfig::quiet(plan.seed)),
        });
    }

    /// Reboots after a crash: volatile tails are gone (the crash already
    /// collapsed them to their torn prefixes), the store works again.
    pub fn reopen(&self) {
        let mut state = self.lock();
        state.crashed = false;
        state.plan = None;
        for file in state.segments.values_mut() {
            file.volatile.clear();
        }
    }

    /// Whether the scheduled crash has fired.
    pub fn has_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Mutating operations performed so far — run a workload once
    /// without a plan to learn its schedule length, then kill at every
    /// `0..op_count` in turn.
    pub fn op_count(&self) -> u64 {
        self.lock().ops
    }

    /// The crash-schedule gate: every mutating operation passes through
    /// here exactly once. At the kill point the crash fires *instead of*
    /// the operation: each volatile tail collapses to a torn prefix
    /// (deterministic, keyed iteration order), and this plus every later
    /// operation reports [`WalError::Crashed`].
    fn gate(state: &mut SimState) -> Result<()> {
        if state.crashed {
            return Err(WalError::Crashed);
        }
        if let Some(plan) = &mut state.plan {
            if state.ops >= plan.kill_at_op {
                for file in state.segments.values_mut() {
                    let keep = plan.injector.draw_torn_len(file.volatile.len());
                    file.volatile.truncate(keep);
                    let torn = std::mem::take(&mut file.volatile);
                    file.durable.extend_from_slice(&torn);
                }
                state.plan = None;
                state.crashed = true;
                return Err(WalError::Crashed);
            }
        }
        state.ops += 1;
        Ok(())
    }

    fn read_gate(state: &SimState) -> Result<()> {
        if state.crashed {
            return Err(WalError::Crashed);
        }
        Ok(())
    }
}

impl LogStore for SimStore {
    type Log = SimLog;

    fn create_log(&self, start_lsn: u64) -> Result<SimLog> {
        let mut state = self.lock();
        SimStore::gate(&mut state)?;
        state.segments.insert(
            start_lsn,
            SimFile {
                durable: Vec::new(),
                volatile: Vec::new(),
            },
        );
        Ok(SimLog {
            start_lsn,
            state: Arc::clone(&self.state),
        })
    }

    fn read_log(&self, start_lsn: u64) -> Result<Vec<u8>> {
        let state = self.lock();
        SimStore::read_gate(&state)?;
        let file = state
            .segments
            .get(&start_lsn)
            .ok_or_else(|| WalError::Io(format!("no segment starting at lsn {start_lsn}")))?;
        let mut out = file.durable.clone();
        out.extend_from_slice(&file.volatile);
        Ok(out)
    }

    fn list_logs(&self) -> Result<Vec<u64>> {
        let state = self.lock();
        SimStore::read_gate(&state)?;
        Ok(state.segments.keys().copied().collect())
    }

    fn remove_log(&self, start_lsn: u64) -> Result<()> {
        let mut state = self.lock();
        SimStore::gate(&mut state)?;
        state
            .segments
            .remove(&start_lsn)
            .map(|_| ())
            .ok_or_else(|| WalError::Io(format!("no segment starting at lsn {start_lsn}")))
    }

    fn rewrite_log(&self, start_lsn: u64, bytes: &[u8]) -> Result<()> {
        let mut state = self.lock();
        SimStore::gate(&mut state)?;
        state.segments.insert(
            start_lsn,
            SimFile {
                durable: bytes.to_vec(),
                volatile: Vec::new(),
            },
        );
        Ok(())
    }

    fn write_snapshot(&self, bytes: &[u8]) -> Result<()> {
        let mut state = self.lock();
        SimStore::gate(&mut state)?;
        state.snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>> {
        let state = self.lock();
        SimStore::read_gate(&state)?;
        Ok(state.snapshot.clone())
    }
}

/// One simulated segment handle; see [`SimStore`].
pub struct SimLog {
    start_lsn: u64,
    state: Arc<Mutex<SimState>>,
}

impl SimLog {
    fn lock(&self) -> MutexGuard<'_, SimState> {
        // Same recovery rationale as SimStore::lock.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl LogIo for SimLog {
    fn append(&mut self, bytes: &[u8]) -> Result<()> {
        let mut state = self.lock();
        SimStore::gate(&mut state)?;
        let file = state
            .segments
            .get_mut(&self.start_lsn)
            .ok_or_else(|| WalError::Io(format!("segment {} was removed", self.start_lsn)))?;
        file.volatile.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let mut state = self.lock();
        SimStore::gate(&mut state)?;
        let file = state
            .segments
            .get_mut(&self.start_lsn)
            .ok_or_else(|| WalError::Io(format!("segment {} was removed", self.start_lsn)))?;
        let tail = std::mem::take(&mut file.volatile);
        file.durable.extend_from_slice(&tail);
        Ok(())
    }

    fn len(&self) -> u64 {
        let state = self.lock();
        state
            .segments
            .get(&self.start_lsn)
            .map(|f| (f.durable.len() + f.volatile.len()) as u64)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_unsynced_appends_do_not_fully_survive_a_crash() {
        let store = SimStore::new();
        let mut log = store.create_log(1).unwrap();
        log.append(b"durable-part").unwrap();
        log.sync().unwrap();
        log.append(b"volatile-part").unwrap();
        // Ops so far: create(0), append(1), sync(2), append(3). Kill at 4.
        store.arm(SimCrashPlan {
            kill_at_op: 4,
            seed: 7,
        });
        assert!(matches!(log.sync(), Err(WalError::Crashed)));
        assert!(store.has_crashed());
        assert!(matches!(log.append(b"x"), Err(WalError::Crashed)));

        store.reopen();
        let bytes = store.read_log(1).unwrap();
        assert!(bytes.starts_with(b"durable-part"), "synced bytes survive");
        assert!(
            bytes.len() <= b"durable-part".len() + b"volatile-part".len(),
            "the tail can only shrink"
        );
    }

    #[test]
    fn sim_torn_prefix_is_deterministic_per_seed() {
        let run = |seed| {
            let store = SimStore::new();
            let mut log = store.create_log(1).unwrap();
            log.append(&[0xAB; 64]).unwrap();
            store.arm(SimCrashPlan {
                kill_at_op: 2,
                seed,
            });
            let _ = log.sync();
            store.reopen();
            store.read_log(1).unwrap().len()
        };
        assert_eq!(run(42), run(42), "same seed, same tear");
    }

    #[test]
    fn sim_snapshot_writes_are_atomic_under_crash() {
        let store = SimStore::new();
        store.write_snapshot(b"first").unwrap();
        store.arm(SimCrashPlan {
            kill_at_op: 1,
            seed: 1,
        });
        assert!(matches!(
            store.write_snapshot(b"second"),
            Err(WalError::Crashed)
        ));
        store.reopen();
        assert_eq!(
            store.read_snapshot().unwrap().as_deref(),
            Some(&b"first"[..])
        );
    }

    #[test]
    fn file_store_roundtrips_segments_and_snapshots() {
        let dir = std::env::temp_dir().join(format!("mst-wal-io-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.read_snapshot().unwrap(), None);
        assert_eq!(store.list_logs().unwrap(), Vec::<u64>::new());

        let mut log = store.create_log(5).unwrap();
        log.append(b"hello ").unwrap();
        log.append(b"wal").unwrap();
        log.sync().unwrap();
        assert_eq!(log.len(), 9);
        drop(log);
        let _ = store.create_log(900).unwrap();

        assert_eq!(store.list_logs().unwrap(), vec![5, 900]);
        assert_eq!(store.read_log(5).unwrap(), b"hello wal");

        store.rewrite_log(5, b"hello").unwrap();
        assert_eq!(store.read_log(5).unwrap(), b"hello");

        store.write_snapshot(b"image-1").unwrap();
        store.write_snapshot(b"image-2").unwrap();
        assert_eq!(
            store.read_snapshot().unwrap().as_deref(),
            Some(&b"image-2"[..])
        );

        store.remove_log(900).unwrap();
        assert_eq!(store.list_logs().unwrap(), vec![5]);
        let _ = fs::remove_dir_all(&dir);
    }
}
