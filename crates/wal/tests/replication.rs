//! Replication chaos suite at the durable-store level: a primary killed
//! at every schedule point while a replica follows its committed log,
//! with mid-batch partitions and hostile streams injected on the way.
//!
//! The harness reuses the crash suite's machinery — a fixed ingest
//! workload against a [`SimStore`] whose every durability operation is
//! a schedule point — and adds a follower: after each acked batch the
//! primary's committed frames are "shipped" (read with
//! [`DurableDatabase::read_committed_frames`], applied with
//! [`DurableDatabase::apply_replicated`]) to a replica bootstrapped from
//! the primary's initial snapshot. For **every** kill point `k` the
//! primary is killed at operation `k`, rebooted, recovered, and the
//! replica caught up from the recovered log. Each run asserts:
//!
//! * nothing the replica applied is ever *ahead* of what the primary
//!   recovers — an acked, shipped write survives the primary's crash by
//!   definition of the committed watermark (only fsynced frames ship);
//! * after catch-up the replica's full store image is **bit-identical**
//!   to the recovered primary's ([`encode_snapshot`] equality);
//! * a partition mid-batch (truncated or dropped frames) refuses the
//!   whole batch, leaves the replica byte-for-byte unchanged, and a
//!   clean re-ship of the same range converges.

use mst_exec::IngestOp;
use mst_index::Rtree3D;
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};
use mst_wal::{
    encode_snapshot, DurableDatabase, DurableSubstrate, SimCrashPlan, SimStore, WalConfig, WalError,
};

fn traj(id: u64, n: usize) -> Trajectory {
    let pts = (0..n)
        .map(|i| {
            SamplePoint::new(
                i as f64,
                (i as f64 * 0.7 + id as f64 * 1.3) % 10.0,
                (id as f64 * 2.1 + i as f64 * 0.4) % 10.0,
            )
        })
        .collect();
    Trajectory::new(pts).expect("valid workload trajectory")
}

fn ins(id: u64) -> IngestOp {
    IngestOp::Insert {
        id: TrajectoryId(id),
        trajectory: traj(id, 5 + (id % 4) as usize),
    }
}

fn del(id: u64) -> IngestOp {
    IngestOp::Delete {
        id: TrajectoryId(id),
    }
}

/// The replicated workload: batched inserts and deletes, deletes always
/// targeting earlier inserts so every operation logs.
fn workload() -> Vec<Vec<IngestOp>> {
    vec![
        vec![ins(1), ins(2), ins(3)],
        vec![ins(4), ins(5)],
        vec![ins(6), del(2)],
        vec![ins(7), ins(8)],
        vec![del(5), ins(9)],
        vec![ins(10), ins(11)],
    ]
}

fn config() -> WalConfig {
    // Small segments so shipping crosses rotation boundaries.
    WalConfig { rotate_bytes: 512 }
}

/// Byte image of a database's full state, the cross-store comparison
/// key. Encoded at LSN 0 so only the *state* is compared, not the
/// position metadata.
fn image<I: DurableSubstrate, S: mst_wal::LogStore>(db: &DurableDatabase<I, S>) -> Vec<u8> {
    encode_snapshot(db.database(), 0).expect("state image")
}

/// Ships everything the primary has committed past the replica's
/// position, in bounded rounds (a tiny byte budget forces multi-frame
/// catch-up paths through the at-least-one-frame guarantee).
fn catch_up<I: DurableSubstrate>(
    primary: &DurableDatabase<I, SimStore>,
    replica: &mut DurableDatabase<I, SimStore>,
    max_bytes: usize,
) {
    while replica.applied_lsn() < primary.applied_lsn() {
        let frames = primary
            .read_committed_frames(replica.applied_lsn() + 1, max_bytes)
            .expect("primary reads its committed log");
        assert!(
            !frames.is_empty(),
            "a lagging replica always receives at least one frame"
        );
        replica
            .apply_replicated(&frames)
            .expect("clean frames apply");
    }
}

/// A replica bootstrapped from the primary's current state, exactly as
/// the serving layer does it (`Subscribe {{ from_lsn: 0 }}`).
fn bootstrap<I: DurableSubstrate>(
    primary: &DurableDatabase<I, SimStore>,
) -> DurableDatabase<I, SimStore> {
    let snapshot = primary
        .encode_current_snapshot()
        .expect("primary encodes its state");
    DurableDatabase::from_snapshot(SimStore::new(), config(), &snapshot)
        .expect("replica bootstraps from the snapshot")
}

/// Kill the primary at every schedule point while a replica follows;
/// recover; catch the replica up; demand bit-identical convergence.
#[test]
fn replica_converges_bit_identically_across_every_primary_kill_point() {
    let batches = workload();

    // Dry run to learn the schedule length.
    let dry_store = SimStore::new();
    let mut dry = DurableDatabase::<Rtree3D, _>::create(dry_store.clone(), config(), 2)
        .expect("dry-run create");
    let create_ops = dry_store.op_count();
    for batch in &batches {
        dry.apply(batch).expect("dry-run apply");
    }
    let total_ops = dry_store.op_count();
    drop(dry);

    // One extra point past the end = the never-crashing control run.
    for kill in create_ops..=total_ops {
        let store = SimStore::new();
        let mut primary = DurableDatabase::<Rtree3D, _>::create(store.clone(), config(), 2)
            .expect("create under sweep");
        let mut replica = bootstrap(&primary);

        store.arm(SimCrashPlan {
            kill_at_op: kill,
            seed: 0xBEEF ^ kill,
        });
        let mut crashed = false;
        for batch in &batches {
            match primary.apply(batch) {
                Ok(outcomes) => assert!(outcomes.iter().all(|o| o.applied)),
                Err(WalError::Crashed) => {
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected apply error: {e}"),
            }
            // The follower polls between batches; a small budget forces
            // several shipping rounds per batch.
            catch_up(&primary, &mut replica, 96);
        }
        assert_eq!(crashed, kill < total_ops, "kill point {kill}");
        let shipped_lsn = replica.applied_lsn();
        drop(primary);
        store.reopen();

        let recovered = DurableDatabase::<Rtree3D, _>::open(store, config())
            .unwrap_or_else(|e| panic!("recovery after kill at {kill} failed: {e}"));

        // Only fsynced frames ever shipped, so the replica can never be
        // ahead of what the primary's log recovers.
        assert!(
            shipped_lsn <= recovered.applied_lsn(),
            "kill {kill}: replica at {shipped_lsn} is ahead of the recovered \
             primary at {}",
            recovered.applied_lsn()
        );

        catch_up(&recovered, &mut replica, 96);
        assert_eq!(
            replica.applied_lsn(),
            recovered.applied_lsn(),
            "kill {kill}: catch-up must reach the recovered head"
        );
        assert_eq!(
            image(&replica),
            image(&recovered),
            "kill {kill}: replica state diverges from the recovered primary"
        );
    }
}

/// A partition mid-batch — frames truncated or dropped in flight — must
/// refuse the whole batch and leave the replica untouched; re-shipping
/// the same range cleanly must then converge.
#[test]
fn partitioned_batches_refuse_wholesale_and_reship_cleanly() {
    let mut primary =
        DurableDatabase::<Rtree3D, _>::create(SimStore::new(), config(), 2).expect("create");
    let mut replica = bootstrap(&primary);
    for batch in workload() {
        primary.apply(&batch).expect("primary applies");
    }

    let all = primary
        .read_committed_frames(replica.applied_lsn() + 1, usize::MAX)
        .expect("full committed run");
    assert!(all.len() >= 4, "the workload ships several frames");

    // Partition flavour 1: the final frame arrives truncated.
    let mut torn = all.clone();
    let last = torn.last_mut().expect("nonempty");
    last.truncate(last.len() / 2);
    let before = image(&replica);
    assert!(
        replica.apply_replicated(&torn).is_err(),
        "a truncated frame refuses the batch"
    );
    assert_eq!(
        image(&replica),
        before,
        "a refused batch must not half-apply"
    );
    assert_eq!(replica.applied_lsn(), 0, "position unchanged after refusal");

    // Partition flavour 2: a frame goes missing mid-stream (the batch
    // resumes after the gap) — gapless enforcement refuses it.
    let mut gapped = all.clone();
    gapped.remove(1);
    assert!(
        replica.apply_replicated(&gapped).is_err(),
        "a resequenced stream refuses the batch"
    );
    assert_eq!(image(&replica), before, "still untouched");

    // Partition flavour 3: a bit flips in flight.
    let mut tampered = all.clone();
    let mid = tampered[1].len() / 2;
    tampered[1][mid] ^= 0x40;
    assert!(
        replica.apply_replicated(&tampered).is_err(),
        "a corrupt frame refuses the batch"
    );
    assert_eq!(image(&replica), before, "still untouched");

    // The clean re-ship converges bit-identically.
    let applied = replica.apply_replicated(&all).expect("clean ship applies");
    assert_eq!(applied, primary.applied_lsn());
    assert_eq!(image(&replica), image(&primary));
}

/// A replica that resumes below the primary's replication floor (the
/// primary checkpointed past its position) needs a snapshot, and a
/// fresh bootstrap converges — the serving layer's restart-to-rebootstrap
/// path, exercised at the store level.
#[test]
fn checkpoints_raise_the_floor_and_bootstrap_recovers_the_laggard() {
    let mut primary =
        DurableDatabase::<Rtree3D, _>::create(SimStore::new(), config(), 2).expect("create");
    let mut replica = bootstrap(&primary);

    let batches = workload();
    primary.apply(&batches[0]).expect("first batch");
    catch_up(&primary, &mut replica, usize::MAX);
    let stale_position = replica.applied_lsn();

    // The primary moves on and checkpoints: its log now starts after
    // the laggard's position.
    for batch in &batches[1..] {
        primary.apply(batch).expect("later batches");
    }
    primary.checkpoint().expect("checkpoint");
    let floor = primary.replication_floor().expect("floor");
    assert!(
        floor > stale_position + 1,
        "the checkpoint must strand the laggard below the floor \
         (floor {floor}, laggard resumes at {})",
        stale_position + 1
    );

    // What the serving layer does on `Subscribe` below the floor: ship
    // a snapshot, not records. A fresh bootstrap from it is the
    // laggard's restart-with-empty-store path.
    let rebooted = bootstrap(&primary);
    assert_eq!(rebooted.applied_lsn(), primary.applied_lsn());
    assert_eq!(image(&rebooted), image(&primary));

    // And a subscriber at the head sees an empty run — the heartbeat.
    let frames = primary
        .read_committed_frames(primary.applied_lsn() + 1, usize::MAX)
        .expect("head read");
    assert!(frames.is_empty(), "nothing past the committed head");
}
