//! Crash-recovery suite: kill the writer at every schedule point,
//! recover, and prove the database indistinguishable from one that
//! never failed.
//!
//! The harness runs a fixed ingest workload (batched inserts, deletes on
//! the substrate that supports them, mid-workload checkpoints) against a
//! [`SimStore`], whose every durability operation — append, fsync,
//! segment create/remove, snapshot write — is a schedule point. A dry
//! run counts the schedule; then, for **every** kill point `k`, a fresh
//! run is killed at operation `k`, rebooted, and recovered. For each
//! recovery the suite asserts:
//!
//! * every *acked* operation survived (group commit is the ack line);
//! * the recovered operation set is a gapless prefix of the workload
//!   (acked ops, plus possibly a durable-but-unacked suffix);
//! * [`mst_index::check_invariants`] passes on every shard;
//! * the whole database — store contents and raw index pages — is
//!   **bit-identical** to a reference database built by applying that
//!   same prefix without any failure, compared via snapshot images;
//! * k-MST and kNN answers match the reference bit-for-bit.
//!
//! The sweep runs over both index substrates (R-tree with deletes,
//! TB-tree insert-only) and shard counts {1, 3}, with segments small
//! enough that rotation points fall inside the sweep.

use mst_exec::{BatchExecutor, BatchQuery, IngestOp, QueryAnswer, ShardedDatabase};
use mst_index::{check_invariants, Rtree3D, TbTree};
use mst_search::Query;
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};
use mst_wal::{
    encode_snapshot, DurableDatabase, DurableSubstrate, SimCrashPlan, SimStore, WalConfig, WalError,
};

/// One step of the workload.
enum Step {
    Batch(Vec<IngestOp>),
    Checkpoint,
}

fn traj(id: u64, n: usize) -> Trajectory {
    let pts = (0..n)
        .map(|i| {
            SamplePoint::new(
                i as f64,
                (i as f64 * 0.7 + id as f64 * 1.3) % 10.0,
                (id as f64 * 2.1 + i as f64 * 0.4) % 10.0,
            )
        })
        .collect();
    Trajectory::new(pts).expect("valid workload trajectory")
}

fn ins(id: u64) -> IngestOp {
    IngestOp::Insert {
        id: TrajectoryId(id),
        trajectory: traj(id, 5 + (id % 4) as usize),
    }
}

fn del(id: u64) -> IngestOp {
    IngestOp::Delete {
        id: TrajectoryId(id),
    }
}

/// The workload; every delete targets an id inserted earlier, so every
/// operation is loggable and the flat op list is the replay ground
/// truth.
fn workload(with_deletes: bool) -> Vec<Step> {
    if with_deletes {
        vec![
            Step::Batch(vec![ins(1), ins(2), ins(3)]),
            Step::Batch(vec![ins(4), ins(5)]),
            Step::Checkpoint,
            Step::Batch(vec![ins(6), del(2)]),
            Step::Batch(vec![ins(7), ins(8)]),
            Step::Batch(vec![del(5), ins(9)]),
            Step::Checkpoint,
            Step::Batch(vec![ins(10), ins(11)]),
        ]
    } else {
        vec![
            Step::Batch(vec![ins(1), ins(2), ins(3)]),
            Step::Batch(vec![ins(4), ins(5)]),
            Step::Checkpoint,
            Step::Batch(vec![ins(6)]),
            Step::Batch(vec![ins(7), ins(8)]),
            Step::Batch(vec![ins(9)]),
            Step::Checkpoint,
            Step::Batch(vec![ins(10), ins(11)]),
        ]
    }
}

fn flat_ops(steps: &[Step]) -> Vec<IngestOp> {
    steps
        .iter()
        .filter_map(|s| match s {
            Step::Batch(ops) => Some(ops.clone()),
            Step::Checkpoint => None,
        })
        .flatten()
        .collect()
}

fn config() -> WalConfig {
    // Small segments so the sweep crosses rotation boundaries.
    WalConfig { rotate_bytes: 512 }
}

/// Runs the workload until completion or the scheduled crash. Returns
/// the number of *acked* operations (batches whose group commit
/// returned) — panics on any error that is not the scheduled crash.
fn drive<I: DurableSubstrate>(
    db: &mut DurableDatabase<I, SimStore>,
    steps: &[Step],
) -> (usize, bool) {
    let mut acked = 0;
    for step in steps {
        let crashed = match step {
            Step::Batch(ops) => match db.apply(ops) {
                Ok(outcomes) => {
                    assert!(outcomes.iter().all(|o| o.applied));
                    acked += ops.len();
                    false
                }
                Err(WalError::Crashed) => true,
                Err(e) => panic!("unexpected apply error: {e}"),
            },
            Step::Checkpoint => match db.checkpoint() {
                Ok(()) => false,
                Err(WalError::Crashed) => true,
                Err(e) => panic!("unexpected checkpoint error: {e}"),
            },
        };
        if crashed {
            return (acked, true);
        }
    }
    (acked, false)
}

/// A reference database built by applying `ops` one at a time with no
/// failures anywhere.
fn reference<I: DurableSubstrate>(ops: &[IngestOp], shards: usize) -> DurableDatabase<I, SimStore> {
    let mut db = DurableDatabase::<I, _>::create(SimStore::new(), config(), shards)
        .expect("reference create");
    for op in ops {
        db.apply(std::slice::from_ref(op)).expect("reference apply");
    }
    db
}

/// Bit patterns of the k-MST and kNN answers for a fixed query — the
/// cross-run comparison key.
fn answer_bits<I: DurableSubstrate + Send>(db: &ShardedDatabase<I>) -> Vec<(u64, u64, u64)> {
    let q = Trajectory::new(vec![
        SamplePoint::new(0.0, 1.0, 1.0),
        SamplePoint::new(4.0, 5.0, 4.0),
        SamplePoint::new(8.0, 8.0, 8.0),
    ])
    .expect("query trajectory");
    let queries = vec![
        BatchQuery::kmst(Query::kmst(&q).k(5)).expect("kmst spec"),
        BatchQuery::knn(Query::knn(&q).k(4)).expect("knn spec"),
    ];
    let outcome = BatchExecutor::new().workers(1).run(db, queries);
    let mut bits = Vec::new();
    for result in outcome.outcomes {
        let result = result.expect("query runs");
        assert!(!result.degraded, "answers must be certified complete");
        match result.answer {
            QueryAnswer::Kmst(matches) => {
                bits.extend(matches.iter().map(|m| (m.traj.0, m.dissim.to_bits(), 0)));
            }
            QueryAnswer::Knn(matches) => {
                bits.extend(
                    matches
                        .iter()
                        .map(|m| (m.traj.0, m.distance.to_bits(), m.time.to_bits())),
                );
            }
            other => panic!("unexpected answer flavour: {other:?}"),
        }
    }
    bits
}

/// The full sweep for one substrate / shard-count pair.
fn sweep<I: DurableSubstrate + Send>(shards: usize, with_deletes: bool) {
    let steps = workload(with_deletes);
    let ops = flat_ops(&steps);

    // Dry run: learn the schedule length and the unfailed final state.
    let dry_store = SimStore::new();
    let mut dry = DurableDatabase::<I, _>::create(dry_store.clone(), config(), shards)
        .expect("dry-run create");
    let create_ops = dry_store.op_count();
    let (dry_acked, dry_crashed) = drive(&mut dry, &steps);
    assert!(!dry_crashed);
    assert_eq!(dry_acked, ops.len());
    let total_ops = dry_store.op_count();
    assert!(
        dry.stats().wal_rotations > 0,
        "the sweep must cross rotation points"
    );
    let full_reference = reference::<I>(&ops, shards);
    assert_eq!(
        encode_snapshot(dry.database(), 0).expect("dry image"),
        encode_snapshot(full_reference.database(), 0).expect("reference image"),
        "sanity: batch sizing must not change the state"
    );
    drop(dry);

    // One extra point past the end = the never-crashing control run.
    for kill in create_ops..=total_ops {
        let store = SimStore::new();
        let mut db = DurableDatabase::<I, _>::create(store.clone(), config(), shards)
            .expect("create under sweep");
        store.arm(SimCrashPlan {
            kill_at_op: kill,
            seed: 0xC0FFEE ^ kill,
        });
        let (acked, crashed) = drive(&mut db, &steps);
        assert_eq!(crashed, kill < total_ops, "kill point {kill}");
        drop(db);
        store.reopen();

        let recovered = DurableDatabase::<I, _>::open(store.clone(), config())
            .unwrap_or_else(|e| panic!("recovery after kill at {kill} failed: {e}"));

        // The recovered op set is a gapless prefix: everything acked,
        // possibly plus durable-but-unacked records from the torn group.
        let prefix = recovered.applied_lsn() as usize;
        assert!(
            prefix >= acked,
            "kill {kill}: acked {acked} ops but only {prefix} recovered"
        );
        assert!(
            prefix <= ops.len(),
            "kill {kill}: recovered beyond the workload"
        );

        for shard in recovered.database().shards() {
            shard
                .index()
                .with(|index| {
                    check_invariants(index)
                        .unwrap_or_else(|e| panic!("kill {kill}: invariants broken: {e}"));
                })
                .expect("index lock healthy");
        }

        // Bit-identical to the unfailed run over the same prefix: raw
        // index pages, stores, and answers.
        let reference = reference::<I>(&ops[..prefix], shards);
        assert_eq!(
            encode_snapshot(recovered.database(), 0).expect("recovered image"),
            encode_snapshot(reference.database(), 0).expect("reference image"),
            "kill {kill}: recovered state diverges from the unfailed run"
        );
        assert_eq!(
            answer_bits(recovered.database()),
            answer_bits(reference.database()),
            "kill {kill}: answers diverge from the unfailed run"
        );
    }
}

#[test]
fn rtree_single_shard_survives_every_kill_point() {
    sweep::<Rtree3D>(1, true);
}

#[test]
fn rtree_three_shards_survive_every_kill_point() {
    sweep::<Rtree3D>(3, true);
}

#[test]
fn tbtree_single_shard_survives_every_kill_point() {
    sweep::<TbTree>(1, false);
}

#[test]
fn tbtree_three_shards_survive_every_kill_point() {
    sweep::<TbTree>(3, false);
}
