//! Recovery-path tests that are not crash-schedule sweeps: replay-twice
//! idempotence on raw image bits, and the file-backed store end-to-end
//! (real segment files, real torn tails, real repair).

use std::path::PathBuf;

use mst_exec::{IngestOp, ShardedDatabase};
use mst_index::Rtree3D;
use mst_trajectory::{SamplePoint, Trajectory, TrajectoryId};
use mst_wal::{
    apply_replayed, decode_snapshot, encode_snapshot, replay, DurableDatabase, FileStore, LogStore,
    SimStore, TailState, WalConfig, WalRecord,
};

fn traj(id: u64, n: usize) -> Trajectory {
    let pts = (0..n)
        .map(|i| SamplePoint::new(i as f64, (i as f64 + id as f64) % 9.0, id as f64 % 7.0))
        .collect();
    Trajectory::new(pts).expect("valid")
}

fn ins(id: u64) -> IngestOp {
    IngestOp::Insert {
        id: TrajectoryId(id),
        trajectory: traj(id, 6),
    }
}

fn del(id: u64) -> IngestOp {
    IngestOp::Delete {
        id: TrajectoryId(id),
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mst-wal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn replaying_a_log_twice_produces_the_same_index_bits_as_once() {
    let store = SimStore::new();
    let mut db =
        DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 2).unwrap();
    db.apply(&[ins(1), ins(2), ins(3)]).unwrap();
    db.apply(&[del(2), ins(4)]).unwrap();
    drop(db);

    // Rebuild from the genesis snapshot by hand, applying the replayable
    // records once on one copy and twice on the other.
    let snapshot = store.read_snapshot().unwrap().expect("genesis snapshot");
    let report = replay(&store, 1).unwrap();
    assert_eq!(report.tail, TailState::Clean);
    assert_eq!(report.records.len(), 5);

    let build = |passes: usize| -> ShardedDatabase<Rtree3D> {
        let (db, _) = decode_snapshot::<Rtree3D>(&snapshot).unwrap();
        for _ in 0..passes {
            for (_, record) in &report.records {
                let op = record.to_op().unwrap().expect("logical record");
                apply_replayed(&db, &op).unwrap();
            }
        }
        db
    };
    let once = encode_snapshot(&build(1), 9).unwrap();
    let twice = encode_snapshot(&build(2), 9).unwrap();
    assert_eq!(once, twice, "guarded replay must be idempotent on raw bits");
}

#[test]
fn reopening_without_writes_is_stable() {
    let store = SimStore::new();
    let mut db =
        DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 3).unwrap();
    db.apply(&[ins(1), ins(2), ins(3), ins(4)]).unwrap();
    drop(db);

    let first = DurableDatabase::<Rtree3D, _>::open(store.clone(), WalConfig::default()).unwrap();
    let image_first = encode_snapshot(first.database(), 0).unwrap();
    drop(first);
    let second = DurableDatabase::<Rtree3D, _>::open(store, WalConfig::default()).unwrap();
    let image_second = encode_snapshot(second.database(), 0).unwrap();
    assert_eq!(image_first, image_second, "recovery is a fixed point");
}

#[test]
fn file_store_recovers_a_real_directory_end_to_end() {
    let dir = temp_dir("recovery");
    let store = FileStore::open(&dir).unwrap();
    let mut db =
        DurableDatabase::<Rtree3D, _>::create(store, WalConfig { rotate_bytes: 512 }, 2).unwrap();
    db.apply(&[ins(1), ins(2), ins(3)]).unwrap();
    db.checkpoint().unwrap();
    db.apply(&[ins(4), del(1), ins(5)]).unwrap();
    let reference = encode_snapshot(db.database(), 0).unwrap();
    assert!(
        db.stats().wal_rotations > 0,
        "512-byte segments must rotate"
    );
    drop(db);

    let store = FileStore::open(&dir).unwrap();
    let back = DurableDatabase::<Rtree3D, _>::open(store, WalConfig::default()).unwrap();
    assert_eq!(back.stats().replayed_records, 3);
    assert_eq!(
        encode_snapshot(back.database(), 0).unwrap(),
        reference,
        "file-backed recovery reproduces the pre-shutdown state bit for bit"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn file_store_repairs_a_torn_final_segment() {
    let dir = temp_dir("torn");
    let store = FileStore::open(&dir).unwrap();
    let mut db =
        DurableDatabase::<Rtree3D, _>::create(store.clone(), WalConfig::default(), 1).unwrap();
    db.apply(&[ins(1), ins(2)]).unwrap();
    db.apply(&[ins(3)]).unwrap();
    drop(db);

    // Tear the final segment mid-frame, as a crashed kernel would.
    let segments = store.list_logs().unwrap();
    let last = *segments.last().unwrap();
    let bytes = store.read_log(last).unwrap();
    store.rewrite_log(last, &bytes[..bytes.len() - 7]).unwrap();
    let report = replay(&store, 1).unwrap();
    assert_eq!(report.tail, TailState::Torn);
    assert_eq!(report.records.len(), 2, "record 3 lost to the tear");

    let back = DurableDatabase::<Rtree3D, _>::open(store.clone(), WalConfig::default()).unwrap();
    assert_eq!(back.applied_lsn(), 2);
    assert!(back.database().trajectory(TrajectoryId(3)).is_none());
    drop(back);

    // The open repaired the tear: a second scan sees a clean tail.
    let report = replay(&store, 1).unwrap();
    assert_eq!(report.tail, TailState::Clean);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn logical_records_roundtrip_through_ops() {
    let op = ins(12);
    let record = WalRecord::from_op(&op);
    assert_eq!(record.to_op().unwrap(), Some(op));
}
