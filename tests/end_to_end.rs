//! End-to-end integration tests: generators → indexes → search, verified
//! against the exact linear scan across datasets, index kinds, query
//! shapes, and k.

use mst::datagen::{GstdConfig, TrucksConfig};
use mst::index::{check_invariants, LeafEntry, Rtree3D, TbTree, TrajectoryIndex};
use mst::search::{
    bfmst_search, scan_kmst, Integration, MstConfig, NoShare, NoopSink, TrajectoryStore,
};
use mst::trajectory::{TimeInterval, TrajectoryId};

fn build_both(store: &TrajectoryStore) -> (Rtree3D, TbTree) {
    let mut entries: Vec<LeafEntry> = Vec::new();
    for (id, t) in store.iter() {
        for (seq, segment) in t.segments().enumerate() {
            entries.push(LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            });
        }
    }
    entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));
    let mut rtree = Rtree3D::new();
    let mut tbtree = TbTree::new();
    for e in entries {
        rtree.insert(e).unwrap();
        tbtree.insert(e).unwrap();
    }
    (rtree, tbtree)
}

fn ids(matches: &[mst::search::MstMatch]) -> Vec<TrajectoryId> {
    matches.iter().map(|m| m.traj).collect()
}

#[test]
fn gstd_pipeline_bfmst_equals_scan_for_many_settings() {
    for seed in [1u64, 22, 333] {
        let data = GstdConfig {
            num_objects: 25,
            samples_per_object: 200,
            ..GstdConfig::paper_dataset(25, seed)
        }
        .generate();
        let store = TrajectoryStore::from_trajectories(data);
        let (mut rtree, mut tbtree) = build_both(&store);
        check_invariants(&mut rtree).unwrap();
        check_invariants(&mut tbtree).unwrap();

        for (k, (a, b)) in [
            (1usize, (0.0, 199.0)),
            (3, (20.0, 90.0)),
            (7, (150.5, 180.25)),
        ] {
            let period = TimeInterval::new(a, b).unwrap();
            // Query: clip of a data trajectory (different one per setting).
            let q = store
                .get(TrajectoryId(seed % 25))
                .unwrap()
                .clip(&period)
                .unwrap();
            let expected = ids(&scan_kmst(&store, &q, &period, k, Integration::Exact).unwrap());
            let r = bfmst_search(
                &mut rtree,
                &store,
                &q,
                &period,
                &MstConfig::k(k),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
            let t = bfmst_search(
                &mut tbtree,
                &store,
                &q,
                &period,
                &MstConfig::k(k),
                &NoShare,
                &mut NoopSink,
            )
            .unwrap();
            assert_eq!(ids(&r.matches), expected, "rtree seed {seed} k {k}");
            assert_eq!(ids(&t.matches), expected, "tbtree seed {seed} k {k}");
        }
    }
}

#[test]
fn trucks_pipeline_identifies_compressed_originals() {
    let fleet = TrucksConfig::small(15, 4).generate();
    let store = TrajectoryStore::from_trajectories(fleet.clone());
    let (mut rtree, _) = build_both(&store);
    let period = fleet[0].time();
    for qi in [0usize, 7, 14] {
        let compressed = mst::datagen::td_tr_fraction(&fleet[qi], 0.01);
        let got = bfmst_search(
            &mut rtree,
            &store,
            &compressed,
            &period,
            &MstConfig::k(1),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(got.matches[0].traj, TrajectoryId(qi as u64));
    }
}

#[test]
fn foreign_query_trajectory_works() {
    // The query need not be part of the dataset at all.
    let data = GstdConfig {
        num_objects: 10,
        samples_per_object: 100,
        ..GstdConfig::paper_dataset(10, 5)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let (mut rtree, mut tbtree) = build_both(&store);
    let period = TimeInterval::new(10.0, 60.0).unwrap();
    // A synthetic diagonal crossing the unit square.
    let q = mst::trajectory::Trajectory::from_txy(&[
        (10.0, 0.1, 0.1),
        (35.0, 0.5, 0.6),
        (60.0, 0.9, 0.2),
    ])
    .unwrap();
    let expected = ids(&scan_kmst(&store, &q, &period, 4, Integration::Exact).unwrap());
    let r = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &MstConfig::k(4),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    let t = bfmst_search(
        &mut tbtree,
        &store,
        &q,
        &period,
        &MstConfig::k(4),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    assert_eq!(ids(&r.matches), expected);
    assert_eq!(ids(&t.matches), expected);
    // Exact values agree with the scan within post-processing tolerance.
    let scan = scan_kmst(&store, &q, &period, 4, Integration::Exact).unwrap();
    for (got, want) in r.matches.iter().zip(&scan) {
        assert!((got.dissim - want.dissim).abs() < 1e-9);
    }
}

#[test]
fn repeated_queries_are_deterministic_and_buffer_friendly() {
    let data = GstdConfig {
        num_objects: 15,
        samples_per_object: 150,
        ..GstdConfig::paper_dataset(15, 8)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let (mut rtree, _) = build_both(&store);
    let period = TimeInterval::new(30.0, 80.0).unwrap();
    let q = store.get(TrajectoryId(2)).unwrap().clip(&period).unwrap();

    rtree.clear_buffer().unwrap();
    rtree.reset_stats();
    let first = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &MstConfig::k(3),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    let cold_misses = rtree.stats().buffer.misses;

    rtree.reset_stats();
    let second = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &MstConfig::k(3),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    let warm_misses = rtree.stats().buffer.misses;

    assert_eq!(ids(&first.matches), ids(&second.matches));
    assert!(
        warm_misses <= cold_misses,
        "warm run missed more ({warm_misses}) than cold ({cold_misses})"
    );
}

#[test]
fn results_are_sorted_and_k_bounded() {
    let data = GstdConfig {
        num_objects: 30,
        samples_per_object: 80,
        ..GstdConfig::paper_dataset(30, 12)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let (mut rtree, _) = build_both(&store);
    let period = TimeInterval::new(0.0, 79.0).unwrap();
    let q = store.get(TrajectoryId(0)).unwrap().clone();
    for k in [1usize, 5, 29, 30, 100] {
        let got = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(k),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        assert!(got.matches.len() <= k);
        assert!(got.matches.len() <= store.len());
        for w in got.matches.windows(2) {
            assert!(w[0].dissim <= w[1].dissim);
        }
    }
}

#[test]
fn error_management_never_changes_the_winner_set() {
    // Trapezoid + error management must equal exact integration.
    let data = GstdConfig {
        num_objects: 20,
        samples_per_object: 120,
        ..GstdConfig::paper_dataset(20, 31)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let (mut rtree, _) = build_both(&store);
    let period = TimeInterval::new(5.0, 110.0).unwrap();
    for qi in 0..5u64 {
        let q = store.get(TrajectoryId(qi)).unwrap().clip(&period).unwrap();
        let approx = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(4),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let exact_cfg = MstConfig {
            integration: Integration::Exact,
            error_management: false,
            ..MstConfig::k(4)
        };
        let exact = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &exact_cfg,
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(ids(&approx.matches), ids(&exact.matches), "query {qi}");
    }
}

#[test]
fn range_mst_respects_the_ceiling_and_matches_scan_filtering() {
    let data = GstdConfig {
        num_objects: 20,
        samples_per_object: 100,
        ..GstdConfig::paper_dataset(20, 77)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let (mut rtree, _) = build_both(&store);
    let period = TimeInterval::new(0.0, 99.0).unwrap();
    let q = store.get(TrajectoryId(4)).unwrap().clone();

    // Derive a meaningful ceiling from the scan: between the 3rd and 4th
    // best values, so exactly 3 trajectories qualify.
    let scan = scan_kmst(&store, &q, &period, 20, Integration::Exact).unwrap();
    let theta = 0.5 * (scan[2].dissim + scan[3].dissim);

    let cfg = mst::search::MstConfig::within(20, theta);
    let got = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &cfg,
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    assert_eq!(got.matches.len(), 3);
    assert_eq!(
        ids(&got.matches),
        scan[..3].iter().map(|m| m.traj).collect::<Vec<_>>()
    );
    for m in &got.matches {
        assert!(m.dissim <= theta);
    }

    // A ceiling below the minimum yields an empty result set.
    let none = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &mst::search::MstConfig::within(5, scan[0].dissim * 0.5 - 1e-9),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    assert!(none.matches.is_empty());

    // The ceiling must also reduce work relative to the unbounded query.
    rtree.reset_stats();
    let unbounded = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &MstConfig::k(20),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    rtree.reset_stats();
    let bounded = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &cfg,
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    assert!(bounded.nodes_visited <= unbounded.nodes_visited);
}

#[test]
fn time_relaxed_query_end_to_end() {
    // Build a fleet where trajectory 0's movement is duplicated by
    // trajectory 5 with a +40 time-unit delay; the relaxed query must pair
    // them and report the delay.
    let mut data = GstdConfig {
        num_objects: 6,
        samples_per_object: 120,
        ..GstdConfig::paper_dataset(6, 13)
    }
    .generate();
    let delayed = data[0].shift_time(40.0).unwrap();
    data[5] = delayed;
    let store = TrajectoryStore::from_trajectories(data);
    let query = store
        .get(TrajectoryId(0))
        .unwrap()
        .clip(&TimeInterval::new(10.0, 80.0).unwrap())
        .unwrap();
    let got = mst::search::time_relaxed_kmst(&store, &query, &mst::search::TimeRelaxedConfig::k(2))
        .unwrap();
    // Both the original (shift 0) and the delayed copy (shift 40) are
    // essentially perfect matches.
    let ids: Vec<_> = got.iter().map(|m| m.traj).collect();
    assert!(ids.contains(&TrajectoryId(0)));
    assert!(ids.contains(&TrajectoryId(5)));
    for m in &got {
        assert!(m.dissim < 1e-6, "dissim {}", m.dissim);
        let expected_shift = if m.traj == TrajectoryId(0) { 0.0 } else { 40.0 };
        assert!(
            (m.shift - expected_shift).abs() < 0.1,
            "shift {} for {}",
            m.shift,
            m.traj
        );
    }
}

#[test]
fn strtree_bfmst_equals_scan_too() {
    let data = GstdConfig {
        num_objects: 18,
        samples_per_object: 150,
        ..GstdConfig::paper_dataset(18, 41)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let mut strtree = mst::index::StrTree::new();
    for (id, t) in store.iter() {
        strtree.insert_trajectory(id, t).unwrap();
    }
    check_invariants(&mut strtree).unwrap();
    for (k, (a, b)) in [(1usize, (0.0, 149.0)), (4, (30.0, 100.0))] {
        let period = TimeInterval::new(a, b).unwrap();
        let q = store.get(TrajectoryId(9)).unwrap().clip(&period).unwrap();
        let expected = ids(&scan_kmst(&store, &q, &period, k, Integration::Exact).unwrap());
        let got = bfmst_search(
            &mut strtree,
            &store,
            &q,
            &period,
            &MstConfig::k(k),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        assert_eq!(ids(&got.matches), expected, "k={k}");
    }
}

#[test]
fn nearest_trajectories_consistent_with_dissim_on_parallel_lanes() {
    // On parallel lanes, the closest-approach ranking and the DISSIM
    // ranking coincide — both indexes agree with the scan.
    let trajs: Vec<mst::trajectory::Trajectory> = (0..12)
        .map(|i| {
            let y = f64::from(i) * 4.0;
            mst::trajectory::Trajectory::from_txy(
                &(0..=60)
                    .map(|s| (f64::from(s), f64::from(s) * 0.5, y))
                    .collect::<Vec<_>>(),
            )
            .unwrap()
        })
        .collect();
    let store = TrajectoryStore::from_trajectories(trajs);
    let (mut rtree, _) = build_both(&store);
    let period = TimeInterval::new(0.0, 60.0).unwrap();
    let q = store.get(TrajectoryId(6)).unwrap().clone();
    let nn = mst::search::nearest_trajectories(&mut rtree, &q, &period, 5, &NoShare, &mut NoopSink)
        .unwrap();
    let mst_res = bfmst_search(
        &mut rtree,
        &store,
        &q,
        &period,
        &MstConfig::k(5),
        &NoShare,
        &mut NoopSink,
    )
    .unwrap();
    assert_eq!(
        nn.matches.iter().map(|m| m.traj).collect::<Vec<_>>(),
        ids(&mst_res.matches)
    );
    assert_eq!(nn.matches[0].distance, 0.0);
}

#[test]
fn corrupted_index_image_fails_cleanly_not_by_panic() {
    let data = GstdConfig {
        num_objects: 8,
        samples_per_object: 80,
        ..GstdConfig::paper_dataset(8, 21)
    }
    .generate();
    let store = TrajectoryStore::from_trajectories(data);
    let (mut rtree, _) = build_both(&store);
    let mut bytes = Vec::new();
    rtree.save(&mut bytes).unwrap();

    // Truncated image: load must error.
    assert!(Rtree3D::load(&bytes[..bytes.len() / 2]).is_err());

    // Flip the node-type byte of a page in the middle of the file: the load
    // succeeds (pages are lazily validated), but the first query that
    // touches the bad page reports a corrupt node instead of panicking.
    let mut evil = bytes.clone();
    let header_end = evil.len() - rtree.num_pages() * 4096;
    let victim = header_end + (rtree.num_pages() / 2) * 4096;
    evil[victim] = 0xFF;
    if let Ok(mut loaded) = Rtree3D::load(&evil[..]) {
        let period = TimeInterval::new(0.0, 79.0).unwrap();
        let q = store.get(TrajectoryId(0)).unwrap().clone();
        // Force a full traversal so the bad page is hit.
        let cfg = MstConfig {
            use_heuristic1: false,
            use_heuristic2: false,
            ..MstConfig::k(8)
        };
        let result = bfmst_search(
            &mut loaded,
            &store,
            &q,
            &period,
            &cfg,
            &NoShare,
            &mut NoopSink,
        );
        assert!(result.is_err(), "query over a corrupt page must error");
    }
}
