//! Cross-substrate parity: the metric tree's exact DISSIM k-MST must be
//! bit-identical to the linear-scan ground truth and to the R-tree BFMST
//! answer — on both seeded datasets (Trucks-like and GSTD synthetic),
//! through the single-index `Query` builder and through the sharded
//! batch executor across 1/4 shards x 1/8 workers.

use mst::datagen::{GstdConfig, TrucksConfig};
use mst::exec::{BatchExecutor, BatchQuery, ShardedDatabase};
use mst::search::{
    scan_kmst, Integration, MovingObjectDatabase, MstMatch, Query, Substrate, TrajectoryStore,
};
use mst::trajectory::{TimeInterval, Trajectory, TrajectoryId};

fn trucks_store() -> TrajectoryStore {
    let trajs = TrucksConfig {
        num_trucks: 10,
        ..TrucksConfig::paper_like(5)
    }
    .generate();
    TrajectoryStore::from_trajectories(trajs)
}

fn synthetic_store() -> TrajectoryStore {
    let trajs = GstdConfig {
        num_objects: 10,
        samples_per_object: 150,
        ..GstdConfig::paper_dataset(10, 7)
    }
    .generate();
    TrajectoryStore::from_trajectories(trajs)
}

/// Query workload over a store: a handful of member trajectories clipped
/// to the middle half of their own lifetime.
fn workload(store: &TrajectoryStore, k: usize) -> Vec<(Trajectory, TimeInterval, usize)> {
    (0..4u64)
        .map(|qi| {
            let t = store.get(TrajectoryId(qi)).expect("query trajectory");
            let span = t.time();
            let quarter = span.duration() * 0.25;
            let period = TimeInterval::new(span.start() + quarter, span.end() - quarter)
                .expect("valid period");
            let q = t.clip(&period).expect("clip to period");
            (q, period, k)
        })
        .collect()
}

fn bits(matches: &[MstMatch]) -> Vec<(TrajectoryId, u64)> {
    matches
        .iter()
        .map(|m| (m.traj, m.dissim.to_bits()))
        .collect()
}

fn ground_truth(
    store: &TrajectoryStore,
    workload: &[(Trajectory, TimeInterval, usize)],
) -> Vec<Vec<(TrajectoryId, u64)>> {
    workload
        .iter()
        .map(|(q, period, k)| {
            bits(&scan_kmst(store, q, period, *k, Integration::Exact).expect("scan ground truth"))
        })
        .collect()
}

/// Single-index parity on one dataset: scan == metric tree == R-tree,
/// bit for bit, through the `Query` builder.
fn check_single_index(name: &str, store: &TrajectoryStore) {
    let wl = workload(store, 3);
    let truth = ground_truth(store, &wl);

    let mut metric = MovingObjectDatabase::with_metric();
    let mut rtree = MovingObjectDatabase::with_rtree();
    for (id, t) in store.iter() {
        metric.insert_trajectory(id, t).expect("metric insert");
        rtree.insert_trajectory(id, t).expect("rtree insert");
    }

    for (i, (q, period, k)) in wl.iter().enumerate() {
        let m = Query::kmst(q)
            .k(*k)
            .during(period)
            .substrate(Substrate::Metric)
            .run(&mut metric)
            .expect("metric query");
        let r = Query::kmst(q)
            .k(*k)
            .during(period)
            .substrate(Substrate::Rtree)
            .run(&mut rtree)
            .expect("rtree query");
        assert_eq!(bits(&m), truth[i], "{name} q{i}: metric vs scan");
        assert_eq!(bits(&r), truth[i], "{name} q{i}: rtree vs scan");
    }
}

/// Sharded parity on one dataset: every shard count x worker count cell
/// reproduces the scan answer bit-for-bit on the metric substrate.
fn check_sharded(name: &str, store: &TrajectoryStore) {
    let wl = workload(store, 3);
    let truth = ground_truth(store, &wl);
    let fleet: Vec<(TrajectoryId, Trajectory)> =
        store.iter().map(|(id, t)| (id, t.clone())).collect();

    for shards in [1usize, 4] {
        let db = ShardedDatabase::with_metric(shards, fleet.iter().cloned())
            .expect("sharded metric build");
        assert_eq!(db.substrate(), Substrate::Metric);
        for workers in [1usize, 8] {
            let batch: Vec<BatchQuery> = wl
                .iter()
                .map(|(q, period, k)| {
                    BatchQuery::kmst(
                        Query::kmst(q)
                            .k(*k)
                            .during(period)
                            .substrate(Substrate::Metric),
                    )
                    .expect("kmst spec")
                })
                .collect();
            let outcome = BatchExecutor::new().workers(workers).run(&db, batch);
            assert_eq!(outcome.degraded_count(), 0, "{name} s={shards} w={workers}");
            for (i, want) in truth.iter().enumerate() {
                let got = outcome.outcomes[i].as_ref().expect("query ok");
                let matches = got.answer.as_kmst().expect("kmst answer");
                assert_eq!(
                    &bits(matches),
                    want,
                    "{name} s={shards} w={workers} q{i}: metric shard parity"
                );
            }
        }
    }
}

#[test]
fn metric_tree_matches_scan_and_rtree_on_trucks() {
    check_single_index("trucks", &trucks_store());
}

#[test]
fn metric_tree_matches_scan_and_rtree_on_synthetic() {
    check_single_index("synthetic", &synthetic_store());
}

#[test]
fn sharded_metric_tree_matches_scan_on_trucks() {
    check_sharded("trucks", &trucks_store());
}

#[test]
fn sharded_metric_tree_matches_scan_on_synthetic() {
    check_sharded("synthetic", &synthetic_store());
}

#[test]
fn substrate_pin_refuses_the_wrong_index() {
    let store = synthetic_store();
    let mut metric = MovingObjectDatabase::with_metric();
    for (id, t) in store.iter() {
        metric.insert_trajectory(id, t).expect("insert");
    }
    let (q, period, k) = workload(&store, 2).remove(0);
    // Pinned to the R-tree, a metric-backed database must refuse rather
    // than silently answer from a different structure.
    let err = Query::kmst(&q)
        .k(k)
        .during(&period)
        .substrate(Substrate::Rtree)
        .run(&mut metric)
        .expect_err("substrate mismatch");
    let text = err.to_string();
    assert!(text.contains("substrate"), "{text}");
    // Auto (the default) runs on whatever the database holds.
    let auto = Query::kmst(&q)
        .k(k)
        .during(&period)
        .run(&mut metric)
        .expect("auto substrate");
    assert_eq!(
        bits(&auto),
        ground_truth(&store, &[(q, period, k)]).remove(0)
    );
}
