//! Seeded chaos suite for the fault-tolerance layer: deterministic fault
//! schedules swept over fault rates × both index substrates × 1/4 shards.
//!
//! The contract under test, end to end:
//!
//! * **No panics** anywhere in the sweep — every fault surfaces as a
//!   typed error or is masked by the retry/checksum machinery.
//! * **Fault rate 0 is invisible**: an armed-but-quiet injector produces
//!   answers bit-identical to the single-threaded [`Query::run`]
//!   baseline on an unsharded database.
//! * **Masked faults are invisible too**: whenever retries absorb every
//!   injected fault (no shard failed), the merged answers are
//!   bit-identical to the baseline and the candidate ledger balances.
//! * **Unmasked faults degrade honestly**: a query whose shard died is
//!   flagged `degraded` with a non-empty [`ShardFailure`] list naming
//!   the shard, and its merged ledger still balances.
//!
//! `chaos_smoke` is the fast subset `ci.sh` runs in release mode.

use mst::exec::{BatchExecutor, BatchQuery, QueryAnswer, ShardedDatabase};
use mst::index::{FaultConfig, TrajectoryIndex, TrajectoryIndexWrite};
use mst::search::{KmstSubstrate, MovingObjectDatabase, MstMatch, NnMatch, Query};
use mst::trajectory::{SamplePoint, TimeInterval, Trajectory, TrajectoryId};

/// A deterministic fleet: even ids hug an origin lane, odd ids fan out,
/// so shards see genuinely different pruning work.
fn fleet(n: u64, points: usize) -> Vec<(TrajectoryId, Trajectory)> {
    (0..n)
        .map(|id| {
            let (dx, dy) = if id % 2 == 0 {
                (id as f64 * 0.25, 0.5 * id as f64)
            } else {
                (id as f64 * 3.0, 40.0 + 7.0 * id as f64)
            };
            let pts = (0..points)
                .map(|i| {
                    let t = i as f64;
                    SamplePoint::new(t, t * 0.8 + dx, dy + t * 0.1)
                })
                .collect();
            (
                TrajectoryId(id),
                Trajectory::new(pts).expect("valid fleet trajectory"),
            )
        })
        .collect()
}

/// The batch every sweep point runs: two k-MST queries and one kNN.
fn batch_for(fleet: &[(TrajectoryId, Trajectory)], period: &TimeInterval) -> Vec<BatchQuery> {
    vec![
        BatchQuery::kmst(Query::kmst(&fleet[0].1).k(5).during(period)).expect("kmst spec"),
        BatchQuery::kmst(Query::kmst(&fleet[3].1).k(3).during(period)).expect("kmst spec"),
        BatchQuery::knn(Query::knn(&fleet[1].1).k(4).during(period)).expect("knn spec"),
    ]
}

/// The certified answers, straight from the paper-faithful single-index
/// [`Query::run`] path on an unsharded database.
fn baseline<I: TrajectoryIndexWrite + KmstSubstrate>(
    mut db: MovingObjectDatabase<I>,
    fleet: &[(TrajectoryId, Trajectory)],
    period: &TimeInterval,
) -> (Vec<Vec<MstMatch>>, Vec<NnMatch>) {
    for (id, traj) in fleet {
        db.insert_trajectory(*id, traj).expect("baseline insert");
    }
    let kmst = vec![
        Query::kmst(&fleet[0].1)
            .k(5)
            .during(period)
            .run(&mut db)
            .expect("baseline kmst"),
        Query::kmst(&fleet[3].1)
            .k(3)
            .during(period)
            .run(&mut db)
            .expect("baseline kmst"),
    ];
    let knn = Query::knn(&fleet[1].1)
        .k(4)
        .during(period)
        .run(&mut db)
        .expect("baseline knn");
    (kmst, knn)
}

fn assert_bit_identical(
    answer: &QueryAnswer,
    want: &(Vec<Vec<MstMatch>>, Vec<NnMatch>),
    query: usize,
    what: &str,
) {
    match (query, answer) {
        (0 | 1, QueryAnswer::Kmst(got)) => {
            let want = &want.0[query];
            assert_eq!(got.len(), want.len(), "{what} q{query}: result count");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.traj, w.traj, "{what} q{query}: trajectory id");
                assert_eq!(
                    g.dissim.to_bits(),
                    w.dissim.to_bits(),
                    "{what} q{query}: dissim must be bit-identical"
                );
            }
        }
        (2, QueryAnswer::Knn(got)) => {
            let want = &want.1;
            assert_eq!(got.len(), want.len(), "{what} q{query}: result count");
            for (g, w) in got.iter().zip(want) {
                assert_eq!(g.traj, w.traj, "{what} q{query}: trajectory id");
                assert_eq!(
                    g.distance.to_bits(),
                    w.distance.to_bits(),
                    "{what} q{query}: distance must be bit-identical"
                );
            }
        }
        _ => panic!("{what} q{query}: unexpected answer flavour"),
    }
}

/// Arms `config` on every shard and drops the warm buffer pages so the
/// fault schedule actually sees physical reads.
fn arm_all<I: TrajectoryIndex>(db: &ShardedDatabase<I>, config: FaultConfig) {
    for shard in 0..db.num_shards() {
        db.set_fault_injection(shard, Some(config.with_seed(config.seed + shard as u64)))
            .expect("arm faults");
        db.shards()[shard]
            .index()
            .with(|index| index.clear_buffer())
            .expect("lock")
            .expect("clear buffer");
    }
}

/// One sweep point: run the batch under `config` and check the honesty
/// contract. Returns how many queries were degraded.
fn run_case<I: TrajectoryIndex + Send + KmstSubstrate>(
    db: &ShardedDatabase<I>,
    fleet: &[(TrajectoryId, Trajectory)],
    period: &TimeInterval,
    config: FaultConfig,
    want: &(Vec<Vec<MstMatch>>, Vec<NnMatch>),
    workers: usize,
    what: &str,
) -> usize {
    arm_all(db, config);
    let outcome = BatchExecutor::new()
        .workers(workers)
        .run(db, batch_for(fleet, period));
    assert_eq!(outcome.outcomes.len(), 3, "{what}: batch size");
    let mut degraded = 0;
    for (q, result) in outcome.outcomes.iter().enumerate() {
        let query = result.as_ref().unwrap_or_else(|e| {
            panic!("{what} q{q}: a fault must degrade, never fail the query: {e}")
        });
        assert!(
            query.profile.is_consistent(),
            "{what} q{q}: candidate ledger unbalanced: {:?}",
            query.profile.candidates
        );
        assert!(
            !query.deadline_expired,
            "{what} q{q}: no deadline was configured"
        );
        assert_eq!(
            query.degraded,
            !query.failures.is_empty(),
            "{what} q{q}: degraded flag must track the failure list"
        );
        if query.failures.is_empty() {
            // Every injected fault was masked (retries, checksum re-reads):
            // the answer must be exactly the certified baseline.
            assert_bit_identical(&query.answer, want, q, what);
        } else {
            degraded += 1;
            for failure in &query.failures {
                assert!(
                    failure.shard < db.num_shards(),
                    "{what} q{q}: failure names a nonexistent shard"
                );
                assert!(
                    !failure.error.to_string().is_empty(),
                    "{what} q{q}: failure cause must be reportable"
                );
            }
        }
    }
    // The injector saw the traffic: reads flowed through at least one
    // shard's armed store.
    let reads: u64 = (0..db.num_shards())
        .filter_map(|s| db.fault_stats(s))
        .map(|s| s.reads)
        .sum();
    assert!(reads > 0, "{what}: no physical read crossed the injector");
    degraded
}

/// Fault-rate 0, both substrates, 1 and 4 shards: an armed injector with
/// nothing to inject is bit-for-bit invisible.
#[test]
fn fault_rate_zero_is_bit_identical_to_query_run() {
    let fleet = fleet(16, 24);
    let period = TimeInterval::new(0.0, 23.0).expect("period");
    let rtree_want = baseline(MovingObjectDatabase::with_rtree(), &fleet, &period);
    let tbtree_want = baseline(MovingObjectDatabase::with_tbtree(), &fleet, &period);

    for shards in [1usize, 4] {
        for workers in [1usize, 3] {
            let db = ShardedDatabase::with_rtree(shards, fleet.clone()).expect("build");
            let degraded = run_case(
                &db,
                &fleet,
                &period,
                FaultConfig::quiet(11),
                &rtree_want,
                workers,
                &format!("rtree s={shards} w={workers} rate=0"),
            );
            assert_eq!(degraded, 0, "a quiet injector degraded something");

            let db = ShardedDatabase::with_tbtree(shards, fleet.clone()).expect("build");
            let degraded = run_case(
                &db,
                &fleet,
                &period,
                FaultConfig::quiet(13),
                &tbtree_want,
                workers,
                &format!("tbtree s={shards} w={workers} rate=0"),
            );
            assert_eq!(degraded, 0, "a quiet injector degraded something");
        }
    }
}

/// The full sweep: fault rates from easily-masked to unmaskable, all
/// four fault kinds, both substrates, 1 and 4 shards. Honesty is checked
/// at every point; at the unmaskable end at least something must degrade
/// (otherwise the sweep is vacuous).
#[test]
fn chaos_sweep_is_honest_across_rates_substrates_and_shards() {
    let fleet = fleet(16, 24);
    let period = TimeInterval::new(0.0, 23.0).expect("period");
    let rtree_want = baseline(MovingObjectDatabase::with_rtree(), &fleet, &period);
    let tbtree_want = baseline(MovingObjectDatabase::with_tbtree(), &fleet, &period);

    let schedules: Vec<(&str, FaultConfig)> = vec![
        (
            "transient=0.05",
            FaultConfig::quiet(101).with_read_transient(0.05),
        ),
        (
            "transient=0.5",
            FaultConfig::quiet(102).with_read_transient(0.5),
        ),
        (
            "transient=1.0",
            FaultConfig::quiet(103).with_read_transient(1.0),
        ),
        (
            "corrupt=0.05",
            FaultConfig::quiet(104).with_read_corrupt(0.05),
        ),
        (
            "corrupt=1.0",
            FaultConfig::quiet(105).with_read_corrupt(1.0),
        ),
        (
            "mixed",
            FaultConfig::quiet(106)
                .with_read_transient(0.1)
                .with_read_corrupt(0.1)
                .with_torn_write(0.2)
                .with_stall(0.3, 250),
        ),
    ];

    let mut degraded_total = 0;
    for shards in [1usize, 4] {
        for (label, config) in &schedules {
            let db = ShardedDatabase::with_rtree(shards, fleet.clone()).expect("build");
            degraded_total += run_case(
                &db,
                &fleet,
                &period,
                *config,
                &rtree_want,
                2,
                &format!("rtree s={shards} {label}"),
            );
            let db = ShardedDatabase::with_tbtree(shards, fleet.clone()).expect("build");
            degraded_total += run_case(
                &db,
                &fleet,
                &period,
                *config,
                &tbtree_want,
                2,
                &format!("tbtree s={shards} {label}"),
            );
        }
    }
    assert!(
        degraded_total > 0,
        "the unmaskable end of the sweep never degraded anything — the injector is dead"
    );
}

/// Unmaskable schedules must degrade: with every physical read failing
/// (or arriving corrupt) past what `RETRY_LIMIT` can absorb, each query
/// reports at least one shard failure — never a panic, never a silent
/// wrong answer.
#[test]
fn unmaskable_rates_always_degrade_with_named_causes() {
    let fleet = fleet(16, 24);
    let period = TimeInterval::new(0.0, 23.0).expect("period");
    let want = baseline(MovingObjectDatabase::with_rtree(), &fleet, &period);
    for (label, config) in [
        (
            "transient=1.0",
            FaultConfig::quiet(201).with_read_transient(1.0),
        ),
        (
            "corrupt=1.0",
            FaultConfig::quiet(202).with_read_corrupt(1.0),
        ),
    ] {
        let db = ShardedDatabase::with_rtree(4, fleet.clone()).expect("build");
        let degraded = run_case(&db, &fleet, &period, config, &want, 2, label);
        assert_eq!(degraded, 3, "{label}: every query must degrade");
        // The retry machinery fought before giving up, and gave an
        // honest account of itself.
        let stats = db.fault_stats(0).expect("armed shard has stats");
        assert!(stats.reads > 0, "{label}: no reads reached shard 0");
    }
}

/// The fast subset `ci.sh` runs in release: one substrate, two shards,
/// a quiet schedule (bit-identical check) and a mixed noisy one
/// (honesty check).
#[test]
fn chaos_smoke() {
    let fleet = fleet(12, 16);
    let period = TimeInterval::new(0.0, 15.0).expect("period");
    let want = baseline(MovingObjectDatabase::with_rtree(), &fleet, &period);

    let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("build");
    let degraded = run_case(
        &db,
        &fleet,
        &period,
        FaultConfig::quiet(31),
        &want,
        2,
        "smoke rate=0",
    );
    assert_eq!(degraded, 0);

    let db = ShardedDatabase::with_rtree(2, fleet.clone()).expect("build");
    run_case(
        &db,
        &fleet,
        &period,
        FaultConfig::quiet(32)
            .with_read_transient(0.3)
            .with_read_corrupt(0.2)
            .with_stall(0.2, 100),
        &want,
        2,
        "smoke noisy",
    );
}
