//! Integration tests for the query observability layer: the candidate
//! ledger must balance on realistic workloads, profiles must accumulate
//! monotonically, the profile must agree with the search's own report,
//! and attaching a sink must never change a single result bit.

use mst::datagen::GstdConfig;
use mst::index::{LeafEntry, Rtree3D, TbTree, TrajectoryIndex};
use mst::search::{
    bfmst_search, scan_kmst, scan_kmst_traced, time_relaxed_kmst, time_relaxed_kmst_traced,
    Integration, MstConfig, NoShare, NoopSink, QueryProfile, TimeRelaxedConfig, TrajectoryStore,
};
use mst::trajectory::{TimeInterval, TrajectoryId};

fn gstd_store(objects: usize, samples: usize, seed: u64) -> TrajectoryStore {
    let data = GstdConfig {
        num_objects: objects,
        samples_per_object: samples,
        ..GstdConfig::paper_dataset(objects, seed)
    }
    .generate();
    TrajectoryStore::from_trajectories(data)
}

fn build_both(store: &TrajectoryStore) -> (Rtree3D, TbTree) {
    let mut entries: Vec<LeafEntry> = Vec::new();
    for (id, t) in store.iter() {
        for (seq, segment) in t.segments().enumerate() {
            entries.push(LeafEntry {
                traj: id,
                seq: seq as u32,
                segment,
            });
        }
    }
    entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));
    let mut rtree = Rtree3D::new();
    let mut tbtree = TbTree::new();
    for e in entries {
        rtree.insert(e).unwrap();
        tbtree.insert(e).unwrap();
    }
    (rtree, tbtree)
}

fn dissim_bits(matches: &[mst::search::MstMatch]) -> Vec<(TrajectoryId, u64)> {
    matches
        .iter()
        .map(|m| (m.traj, m.dissim.to_bits()))
        .collect()
}

/// The candidate ledger balances (`seen == pruned + refined + pending`)
/// for every query of a seeded workload, on both index substrates, with
/// both heuristics on and off.
#[test]
fn candidate_ledger_balances_on_both_substrates() {
    for seed in [3u64, 19] {
        let store = gstd_store(30, 180, seed);
        let (mut rtree, mut tbtree) = build_both(&store);
        for qi in 0..6u64 {
            let period = TimeInterval::new(10.0, 160.0).unwrap();
            let q = store.get(TrajectoryId(qi)).unwrap().clip(&period).unwrap();
            for config in [
                MstConfig::k(3),
                MstConfig {
                    use_heuristic1: false,
                    use_heuristic2: false,
                    ..MstConfig::k(3)
                },
            ] {
                let mut pr = QueryProfile::new();
                bfmst_search(&mut rtree, &store, &q, &period, &config, &NoShare, &mut pr).unwrap();
                assert!(
                    pr.is_consistent(),
                    "rtree seed {seed} q {qi}: seen {} != {} pruned + {} refined + {} pending",
                    pr.candidates.seen,
                    pr.candidates.pruned,
                    pr.candidates.refined,
                    pr.candidates.pending
                );
                let mut pt = QueryProfile::new();
                bfmst_search(&mut tbtree, &store, &q, &period, &config, &NoShare, &mut pt).unwrap();
                assert!(pt.is_consistent(), "tbtree seed {seed} q {qi}");
            }
        }
    }
}

/// A reused profile only ever accumulates: running a second query on the
/// same profile never decreases any counter.
#[test]
fn counters_are_monotone_across_queries() {
    let store = gstd_store(20, 150, 5);
    let (mut rtree, _) = build_both(&store);
    let period = TimeInterval::new(0.0, 140.0).unwrap();
    let mut profile = QueryProfile::new();
    let mut last = QueryProfile::new();
    for qi in 0..5u64 {
        let q = store.get(TrajectoryId(qi)).unwrap().clip(&period).unwrap();
        bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(2),
            &NoShare,
            &mut profile,
        )
        .unwrap();
        assert!(profile.heap_pushes >= last.heap_pushes);
        assert!(profile.heap_pops >= last.heap_pops);
        assert!(profile.nodes_accessed() >= last.nodes_accessed());
        assert!(profile.buffer_hits >= last.buffer_hits);
        assert!(profile.buffer_misses >= last.buffer_misses);
        assert!(profile.bytes_decoded >= last.bytes_decoded);
        assert!(profile.piece_evals() >= last.piece_evals());
        assert!(profile.candidates.seen >= last.candidates.seen);
        assert!(profile.pruning.ldd_evals >= last.pruning.ldd_evals);
        assert!(profile.pruning.pes_dissim_evals >= last.pruning.pes_dissim_evals);
        // Every query does real work, so the headline counters strictly grow.
        assert!(
            profile.heap_pops > last.heap_pops,
            "query {qi} popped nothing"
        );
        assert!(profile.candidates.seen > last.candidates.seen);
        last = profile.clone();
    }
}

/// The profile and the search's own `SearchReport` describe the same
/// traversal: node accesses, completions, rejections, and the early
/// termination flag must line up.
#[test]
fn profile_agrees_with_the_search_report() {
    fn check<I: TrajectoryIndex>(label: &str, index: &mut I, store: &TrajectoryStore) {
        let period = TimeInterval::new(20.0, 180.0).unwrap();
        for qi in 0..5u64 {
            let q = store.get(TrajectoryId(qi)).unwrap().clip(&period).unwrap();
            let mut profile = QueryProfile::new();
            let report = bfmst_search(
                index,
                store,
                &q,
                &period,
                &MstConfig::k(3),
                &NoShare,
                &mut profile,
            )
            .unwrap();
            assert_eq!(
                profile.nodes_accessed(),
                report.nodes_visited,
                "{label} q {qi}: node accesses"
            );
            assert_eq!(
                profile.candidates.refined, report.candidates_completed as u64,
                "{label} q {qi}: refinements"
            );
            assert_eq!(
                profile.candidates.pruned, report.candidates_rejected as u64,
                "{label} q {qi}: rejections"
            );
            assert_eq!(
                profile.early_terminations,
                u64::from(report.terminated_early),
                "{label} q {qi}: early termination"
            );
            // Every pushed node is either popped or discarded unvisited at
            // early termination; without termination the heap drains fully.
            if !report.terminated_early {
                assert_eq!(profile.heap_pushes, profile.heap_pops, "{label} q {qi}");
            } else {
                assert!(profile.heap_pushes >= profile.heap_pops, "{label} q {qi}");
            }
        }
    }
    let store = gstd_store(25, 200, 9);
    let (mut rtree, mut tbtree) = build_both(&store);
    check("rtree", &mut rtree, &store);
    check("tbtree", &mut tbtree, &store);
}

/// Attaching a profile must not change any result: the traced and
/// untraced entry points return bit-identical dissimilarities for k-MST
/// (both substrates), the scan, and the time-relaxed search.
#[test]
fn tracing_never_changes_a_result_bit() {
    let store = gstd_store(25, 180, 27);
    let (mut rtree, mut tbtree) = build_both(&store);
    let period = TimeInterval::new(5.0, 170.0).unwrap();
    for qi in [0u64, 8, 16, 24] {
        let q = store.get(TrajectoryId(qi)).unwrap().clip(&period).unwrap();

        let plain = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(4),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let mut profile = QueryProfile::new();
        let traced = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(4),
            &NoShare,
            &mut profile,
        )
        .unwrap();
        assert_eq!(dissim_bits(&plain.matches), dissim_bits(&traced.matches));

        let plain_tb = bfmst_search(
            &mut tbtree,
            &store,
            &q,
            &period,
            &MstConfig::k(4),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let mut ptb = QueryProfile::new();
        let traced_tb = bfmst_search(
            &mut tbtree,
            &store,
            &q,
            &period,
            &MstConfig::k(4),
            &NoShare,
            &mut ptb,
        )
        .unwrap();
        assert_eq!(
            dissim_bits(&plain_tb.matches),
            dissim_bits(&traced_tb.matches)
        );

        let scan_plain = scan_kmst(&store, &q, &period, 4, Integration::Exact).unwrap();
        let mut ps = QueryProfile::new();
        let scan_traced =
            scan_kmst_traced(&store, &q, &period, 4, Integration::Exact, &mut ps).unwrap();
        assert_eq!(dissim_bits(&scan_plain), dissim_bits(&scan_traced));
        // The scan refines every candidate it sees — the pruning-power
        // denominator.
        assert_eq!(ps.candidates.seen, ps.candidates.refined);
        assert!(ps.is_consistent());

        let relax_plain = time_relaxed_kmst(&store, &q, &TimeRelaxedConfig::k(2)).unwrap();
        let mut prx = QueryProfile::new();
        let relax_traced =
            time_relaxed_kmst_traced(&store, &q, &TimeRelaxedConfig::k(2), &mut prx).unwrap();
        assert_eq!(
            relax_plain
                .iter()
                .map(|m| (m.traj, m.dissim.to_bits(), m.shift.to_bits()))
                .collect::<Vec<_>>(),
            relax_traced
                .iter()
                .map(|m| (m.traj, m.dissim.to_bits(), m.shift.to_bits()))
                .collect::<Vec<_>>()
        );
        assert!(prx.is_consistent());
    }
}

/// The builder facade returns exactly what the underlying search
/// functions return, and its profiled variant reports live counters.
#[test]
fn builder_matches_the_direct_entry_points() {
    use mst::search::{MovingObjectDatabase, Query};
    let store = gstd_store(20, 150, 33);
    let mut db = MovingObjectDatabase::with_tbtree();
    let mut feed: Vec<(TrajectoryId, mst::trajectory::SamplePoint)> = Vec::new();
    for (id, t) in store.iter() {
        for p in t.points() {
            feed.push((id, *p));
        }
    }
    feed.sort_by(|a, b| a.1.t.total_cmp(&b.1.t).then(a.0.cmp(&b.0)));
    for (id, p) in feed {
        db.append(id, p).unwrap();
    }

    let period = TimeInterval::new(10.0, 140.0).unwrap();
    let q = db
        .trajectory(TrajectoryId(3))
        .unwrap()
        .clip(&period)
        .unwrap();

    let via_builder = Query::kmst(&q).k(3).during(&period).run(&mut db).unwrap();
    let (profiled, profile) = Query::kmst(&q)
        .k(3)
        .during(&period)
        .profile(&mut db)
        .unwrap();
    assert_eq!(dissim_bits(&via_builder), dissim_bits(&profiled));
    assert!(profile.is_consistent());
    assert!(profile.nodes_accessed() > 0);
    assert!(profile.candidates.seen > 0);
    assert!(profile.piece_evals() > 0);

    let direct = db.with_store(|s| {
        scan_kmst(s, &q, &period, 3, Integration::Trapezoid).map(|m| dissim_bits(&m))
    });
    // The index search post-refines with the same integration rule, so the
    // winner set agrees with the scan (ids, not necessarily bits).
    let scan_ids: Vec<TrajectoryId> = direct.unwrap().iter().map(|(id, _)| *id).collect();
    let builder_ids: Vec<TrajectoryId> = via_builder.iter().map(|m| m.traj).collect();
    assert_eq!(scan_ids, builder_ids);
}
