//! Property-based tests on the core invariants, spanning crates:
//!
//! * the trapezoid DISSIM enclosure always contains the exact integral;
//! * OPTDISSIM/PESDISSIM sandwich the exact DISSIM for arbitrary partial
//!   retrievals;
//! * BFMST on both index structures equals the exact linear scan;
//! * MINDIST lower-bounds every realized query–candidate distance;
//! * TD-TR respects its tolerance and keeps endpoints;
//! * R-tree / TB-tree structural invariants survive arbitrary insertions.

use proptest::prelude::*;

use mst::datagen::td_tr;
use mst::index::mindist::trajectory_mbb_mindist;
use mst::index::{check_invariants, LeafEntry, Rtree3D, TbTree, TrajectoryIndex};
use mst::search::bounds::Candidate;
use mst::search::dissim::{dissim_between, dissim_exact, piece};
use mst::search::{bfmst_search, scan_kmst, Integration, MstConfig, TrajectoryStore};
use mst::trajectory::cosample::co_segments;
use mst::trajectory::{TimeInterval, Trajectory, TrajectoryId};

/// Strategy: a trajectory with `n` points on the shared time grid
/// `0, 1, ..., n-1` and coordinates in [-10, 10].
fn trajectory(n: usize) -> impl Strategy<Value = Trajectory> {
    prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), n).prop_map(|coords| {
        Trajectory::new(
            coords
                .into_iter()
                .enumerate()
                .map(|(i, (x, y))| mst::trajectory::SamplePoint::new(i as f64, x, y))
                .collect(),
        )
        .expect("grid timestamps are strictly increasing")
    })
}

/// Strategy: a small dataset of trajectories over the same grid.
fn dataset(objects: usize, n: usize) -> impl Strategy<Value = Vec<Trajectory>> {
    prop::collection::vec(trajectory(n), objects)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trapezoid_enclosure_contains_exact((a, b) in (trajectory(8), trajectory(12))) {
        let period = TimeInterval::new(0.0, 7.0).unwrap();
        let exact = dissim_exact(&a, &b, &period).unwrap();
        let approx = dissim_between(&a, &b, &period, Integration::Trapezoid).unwrap();
        prop_assert!(exact <= approx.upper() + 1e-9 * (1.0 + exact.abs()));
        prop_assert!(exact >= approx.lower() - 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn dissim_is_symmetric_and_nonnegative((a, b) in (trajectory(6), trajectory(9))) {
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        let ab = dissim_exact(&a, &b, &period).unwrap();
        let ba = dissim_exact(&b, &a, &period).unwrap();
        prop_assert!(ab >= -1e-12);
        prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn partial_candidate_bounds_sandwich_exact(
        (q, t) in (trajectory(7), trajectory(7)),
        mask in prop::collection::vec(any::<bool>(), 16),
    ) {
        let period = TimeInterval::new(0.0, 6.0).unwrap();
        let exact = dissim_exact(&q, &t, &period).unwrap();
        let vmax = q.max_speed() + t.max_speed();
        let pairs = co_segments(&q, &t, &period).unwrap();
        let mut cand = Candidate::new(TrajectoryId(0), 1e-9);
        let mut any = false;
        for (i, pair) in pairs.iter().enumerate() {
            if mask[i % mask.len()] {
                let p = piece(&pair.first, &pair.second, Integration::Trapezoid).unwrap();
                cand.add_piece(&p);
                any = true;
            }
        }
        prop_assume!(any);
        let opt = cand.opt_dissim(&period, vmax);
        let pes = cand.pes_dissim(&period, vmax);
        let tol = 1e-9 * (1.0 + exact.abs());
        prop_assert!(opt <= exact + tol, "opt {opt} > exact {exact}");
        prop_assert!(pes >= exact - tol, "pes {pes} < exact {exact}");
    }

    #[test]
    fn bfmst_equals_scan_on_random_datasets(
        data in dataset(8, 6),
        k in 1usize..6,
        qi in 0usize..8,
    ) {
        let store = TrajectoryStore::from_trajectories(data);
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        let q = store.get(TrajectoryId(qi as u64)).unwrap().clone();
        let expected: Vec<_> = scan_kmst(&store, &q, &period, k, Integration::Exact)
            .unwrap()
            .into_iter()
            .map(|m| m.traj)
            .collect();

        let mut rtree = Rtree3D::new();
        let mut tbtree = TbTree::new();
        for (id, t) in store.iter() {
            rtree.insert_trajectory(id, t).unwrap();
            tbtree.insert_trajectory(id, t).unwrap();
        }
        let r = bfmst_search(&mut rtree, &store, &q, &period, &MstConfig::k(k)).unwrap();
        let t = bfmst_search(&mut tbtree, &store, &q, &period, &MstConfig::k(k)).unwrap();
        let got_r: Vec<_> = r.matches.iter().map(|m| m.traj).collect();
        let got_t: Vec<_> = t.matches.iter().map(|m| m.traj).collect();
        prop_assert_eq!(got_r, expected.clone());
        prop_assert_eq!(got_t, expected);
    }

    #[test]
    fn mindist_lower_bounds_realized_distances(
        (q, t) in (trajectory(6), trajectory(6)),
    ) {
        // For any candidate segment's MBB, MINDIST(Q, mbb) must lower-bound
        // the actual distance between the query and that segment over the
        // overlap.
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        for seg in t.segments() {
            let mbb = seg.mbb();
            let Some(lower) = trajectory_mbb_mindist(&q, &mbb, &period) else { continue };
            // Sample the realized distance densely over the overlap.
            let window = period.intersect(&seg.time()).unwrap();
            for i in 0..=50 {
                let tt = window.start()
                    + (window.end() - window.start()) * f64::from(i) / 50.0;
                let qp = q.position_at(tt).unwrap();
                let sp = seg.position_at(tt).unwrap();
                let d = qp.distance(&sp);
                prop_assert!(
                    lower <= d + 1e-9,
                    "mindist {lower} exceeds realized {d} at t={tt}"
                );
            }
        }
    }

    #[test]
    fn tdtr_respects_tolerance(t in trajectory(30), tol in 0.01f64..5.0) {
        let c = td_tr(&t, tol);
        // Endpoints survive.
        prop_assert_eq!(c.points()[0], t.points()[0]);
        prop_assert_eq!(*c.points().last().unwrap(), *t.points().last().unwrap());
        // Every original sample within tolerance of the compressed line.
        for p in t.points() {
            let pos = c.position_at(p.t).unwrap();
            let d = ((p.x - pos.x).powi(2) + (p.y - pos.y).powi(2)).sqrt();
            prop_assert!(d <= tol + 1e-9, "deviation {d} > tol {tol}");
        }
    }

    #[test]
    fn index_invariants_hold_after_random_insertions(data in dataset(6, 12)) {
        let mut rtree = Rtree3D::new();
        let mut tbtree = TbTree::new();
        // Temporal interleave.
        let mut entries: Vec<LeafEntry> = Vec::new();
        for (i, t) in data.iter().enumerate() {
            for (seq, segment) in t.segments().enumerate() {
                entries.push(LeafEntry {
                    traj: TrajectoryId(i as u64),
                    seq: seq as u32,
                    segment,
                });
            }
        }
        entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));
        for e in entries {
            rtree.insert(e).unwrap();
            tbtree.insert(e).unwrap();
        }
        check_invariants(&mut rtree).unwrap();
        check_invariants(&mut tbtree).unwrap();
        prop_assert_eq!(rtree.num_entries(), tbtree.num_entries());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn strtree_matches_rtree_query_results(data in dataset(6, 10), qi in 0usize..6) {
        let store = TrajectoryStore::from_trajectories(data);
        let mut rtree = Rtree3D::new();
        let mut strtree = mst::index::StrTree::new();
        for (id, t) in store.iter() {
            rtree.insert_trajectory(id, t).unwrap();
            strtree.insert_trajectory(id, t).unwrap();
        }
        check_invariants(&mut strtree).unwrap();
        let period = TimeInterval::new(0.0, 9.0).unwrap();
        let q = store.get(TrajectoryId(qi as u64)).unwrap().clone();
        let a = bfmst_search(&mut rtree, &store, &q, &period, &MstConfig::k(3)).unwrap();
        let b = bfmst_search(&mut strtree, &store, &q, &period, &MstConfig::k(3)).unwrap();
        let ids_a: Vec<_> = a.matches.iter().map(|m| m.traj).collect();
        let ids_b: Vec<_> = b.matches.iter().map(|m| m.traj).collect();
        prop_assert_eq!(ids_a, ids_b);
    }

    #[test]
    fn persistence_roundtrip_preserves_query_answers(data in dataset(5, 8), qi in 0usize..5) {
        let store = TrajectoryStore::from_trajectories(data);
        let mut tree = Rtree3D::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let period = TimeInterval::new(0.0, 7.0).unwrap();
        let q = store.get(TrajectoryId(qi as u64)).unwrap().clone();
        let before = bfmst_search(&mut tree, &store, &q, &period, &MstConfig::k(2)).unwrap();
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let mut loaded = Rtree3D::load(&bytes[..]).unwrap();
        check_invariants(&mut loaded).unwrap();
        let after = bfmst_search(&mut loaded, &store, &q, &period, &MstConfig::k(2)).unwrap();
        let ids_before: Vec<_> = before.matches.iter().map(|m| m.traj).collect();
        let ids_after: Vec<_> = after.matches.iter().map(|m| m.traj).collect();
        prop_assert_eq!(ids_before, ids_after);
    }

    #[test]
    fn rtree_delete_then_query_is_consistent(
        data in dataset(5, 10),
        kill in prop::collection::vec((0u64..5, 0u32..9), 1..12),
    ) {
        let store = TrajectoryStore::from_trajectories(data);
        let mut tree = Rtree3D::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let mut removed = std::collections::HashSet::new();
        for (traj, seq) in kill {
            let id = TrajectoryId(traj);
            let was_present = !removed.contains(&(id, seq));
            let deleted = tree.delete(id, seq).unwrap();
            prop_assert_eq!(deleted, was_present);
            removed.insert((id, seq));
        }
        check_invariants(&mut tree).unwrap();
        let expected = 5 * 9 - removed.len() as u64;
        prop_assert_eq!(tree.num_entries(), expected);
    }

    #[test]
    fn knn_segments_matches_oracle(
        data in dataset(4, 8),
        px in -10.0f64..10.0,
        py in -10.0f64..10.0,
    ) {
        let store = TrajectoryStore::from_trajectories(data);
        let mut tree = Rtree3D::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let window = TimeInterval::new(1.0, 6.0).unwrap();
        let point = mst::trajectory::Point::new(px, py);
        let got = mst::index::knn_segments(&mut tree, point, &window, 4).unwrap();
        // Oracle: every indexed segment, clipped, measured directly.
        let mut all: Vec<f64> = Vec::new();
        for (_, t) in store.iter() {
            for seg in t.segments() {
                if let Some(c) = seg.clip(&window) {
                    all.push(mst::index::mindist::segment_rect_mindist(
                        &c,
                        &mst::trajectory::Rect::from_point(point),
                    ));
                }
            }
        }
        all.sort_by(f64::total_cmp);
        prop_assert_eq!(got.len(), 4.min(all.len()));
        for (g, want) in got.iter().zip(&all) {
            prop_assert!((g.distance - want).abs() < 1e-9);
        }
    }
}
