//! Property-based tests on the core invariants, spanning crates:
//!
//! * the trapezoid DISSIM enclosure always contains the exact integral;
//! * OPTDISSIM/PESDISSIM sandwich the exact DISSIM for arbitrary partial
//!   retrievals;
//! * BFMST on both index structures equals the exact linear scan;
//! * MINDIST lower-bounds every realized query–candidate distance;
//! * TD-TR respects its tolerance and keeps endpoints;
//! * R-tree / TB-tree structural invariants survive arbitrary insertions.
//!
//! The hermetic build carries no `proptest`; each property runs as a seeded
//! deterministic loop over [`mst_prng`]-generated inputs, with the failing
//! case index reported for exact replay.

use mst::datagen::td_tr;
use mst::index::mindist::trajectory_mbb_mindist;
use mst::index::{check_invariants, LeafEntry, Rtree3D, TbTree, TrajectoryIndex};
use mst::search::bounds::Candidate;
use mst::search::dissim::{dissim_between, dissim_exact, piece};
use mst::search::{
    bfmst_search, scan_kmst, Integration, MstConfig, NoShare, NoopSink, TrajectoryStore,
};
use mst::trajectory::cosample::co_segments;
use mst::trajectory::{TimeInterval, Trajectory, TrajectoryId};
use mst_prng::Rng;

/// A trajectory with `n` points on the shared time grid `0, 1, ..., n-1`
/// and coordinates in [-10, 10].
fn trajectory(rng: &mut Rng, n: usize) -> Trajectory {
    Trajectory::new(
        (0..n)
            .map(|i| {
                mst::trajectory::SamplePoint::new(
                    i as f64,
                    rng.f64_range(-10.0, 10.0),
                    rng.f64_range(-10.0, 10.0),
                )
            })
            .collect(),
    )
    .expect("grid timestamps are strictly increasing")
}

/// A small dataset of trajectories over the same grid.
fn dataset(rng: &mut Rng, objects: usize, n: usize) -> Vec<Trajectory> {
    (0..objects).map(|_| trajectory(rng, n)).collect()
}

/// Runs `cases` independently seeded iterations of `body`, reporting the
/// case index (hence the exact input stream) on failure.
fn check(name: &str, cases: u64, mut body: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let mut rng = Rng::seed_from(0x5EED_CA5E ^ case.wrapping_mul(0x9E37_79B9));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            panic!("property `{name}` failed at case {case}: {e:?}");
        }
    }
}

#[test]
fn trapezoid_enclosure_contains_exact() {
    check("trapezoid_enclosure", 64, |rng| {
        let a = trajectory(rng, 8);
        let b = trajectory(rng, 12);
        let period = TimeInterval::new(0.0, 7.0).unwrap();
        let exact = dissim_exact(&a, &b, &period).unwrap();
        let approx = dissim_between(&a, &b, &period, Integration::Trapezoid).unwrap();
        assert!(exact <= approx.upper() + 1e-9 * (1.0 + exact.abs()));
        assert!(exact >= approx.lower() - 1e-9 * (1.0 + exact.abs()));
    });
}

#[test]
fn dissim_is_symmetric_and_nonnegative() {
    check("dissim_symmetric", 64, |rng| {
        let a = trajectory(rng, 6);
        let b = trajectory(rng, 9);
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        let ab = dissim_exact(&a, &b, &period).unwrap();
        let ba = dissim_exact(&b, &a, &period).unwrap();
        assert!(ab >= -1e-12);
        assert!((ab - ba).abs() < 1e-9 * (1.0 + ab.abs()));
    });
}

#[test]
fn partial_candidate_bounds_sandwich_exact() {
    check("partial_bounds_sandwich", 64, |rng| {
        let q = trajectory(rng, 7);
        let t = trajectory(rng, 7);
        let mask: Vec<bool> = (0..16).map(|_| rng.bool()).collect();
        let period = TimeInterval::new(0.0, 6.0).unwrap();
        let exact = dissim_exact(&q, &t, &period).unwrap();
        let vmax = q.max_speed() + t.max_speed();
        let pairs = co_segments(&q, &t, &period).unwrap();
        let mut cand = Candidate::new(TrajectoryId(0), 1e-9);
        let mut any = false;
        for (i, pair) in pairs.iter().enumerate() {
            if mask[i % mask.len()] {
                let p = piece(&pair.first, &pair.second, Integration::Trapezoid).unwrap();
                cand.add_piece(&p);
                any = true;
            }
        }
        if !any {
            return; // the vacuous mask carries no information
        }
        let opt = cand.opt_dissim(&period, vmax);
        let pes = cand.pes_dissim(&period, vmax);
        let tol = 1e-9 * (1.0 + exact.abs());
        assert!(opt <= exact + tol, "opt {opt} > exact {exact}");
        assert!(pes >= exact - tol, "pes {pes} < exact {exact}");
    });
}

#[test]
fn bfmst_equals_scan_on_random_datasets() {
    check("bfmst_equals_scan", 64, |rng| {
        let data = dataset(rng, 8, 6);
        let k = 1 + rng.usize_below(5);
        let qi = rng.usize_below(8);
        let store = TrajectoryStore::from_trajectories(data);
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        let q = store.get(TrajectoryId(qi as u64)).unwrap().clone();
        let expected: Vec<_> = scan_kmst(&store, &q, &period, k, Integration::Exact)
            .unwrap()
            .into_iter()
            .map(|m| m.traj)
            .collect();

        let mut rtree = Rtree3D::new();
        let mut tbtree = TbTree::new();
        for (id, t) in store.iter() {
            rtree.insert_trajectory(id, t).unwrap();
            tbtree.insert_trajectory(id, t).unwrap();
        }
        let r = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(k),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let t = bfmst_search(
            &mut tbtree,
            &store,
            &q,
            &period,
            &MstConfig::k(k),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let got_r: Vec<_> = r.matches.iter().map(|m| m.traj).collect();
        let got_t: Vec<_> = t.matches.iter().map(|m| m.traj).collect();
        assert_eq!(got_r, expected);
        assert_eq!(got_t, expected);
    });
}

#[test]
fn mindist_lower_bounds_realized_distances() {
    check("mindist_lower_bounds", 64, |rng| {
        // For any candidate segment's MBB, MINDIST(Q, mbb) must lower-bound
        // the actual distance between the query and that segment over the
        // overlap.
        let q = trajectory(rng, 6);
        let t = trajectory(rng, 6);
        let period = TimeInterval::new(0.0, 5.0).unwrap();
        for seg in t.segments() {
            let mbb = seg.mbb();
            let Some(lower) = trajectory_mbb_mindist(&q, &mbb, &period) else {
                continue;
            };
            // Sample the realized distance densely over the overlap.
            let window = period.intersect(&seg.time()).unwrap();
            for i in 0..=50 {
                let tt = window.start() + (window.end() - window.start()) * f64::from(i) / 50.0;
                let qp = q.position_at(tt).unwrap();
                let sp = seg.position_at(tt).unwrap();
                let d = qp.distance(&sp);
                assert!(
                    lower <= d + 1e-9,
                    "mindist {lower} exceeds realized {d} at t={tt}"
                );
            }
        }
    });
}

#[test]
fn tdtr_respects_tolerance() {
    check("tdtr_tolerance", 64, |rng| {
        let t = trajectory(rng, 30);
        let tol = rng.f64_range(0.01, 5.0);
        let c = td_tr(&t, tol);
        // Endpoints survive.
        assert_eq!(c.points()[0], t.points()[0]);
        assert_eq!(*c.points().last().unwrap(), *t.points().last().unwrap());
        // Every original sample within tolerance of the compressed line.
        for p in t.points() {
            let pos = c.position_at(p.t).unwrap();
            let d = ((p.x - pos.x).powi(2) + (p.y - pos.y).powi(2)).sqrt();
            assert!(d <= tol + 1e-9, "deviation {d} > tol {tol}");
        }
    });
}

#[test]
fn index_invariants_hold_after_random_insertions() {
    check("index_invariants", 64, |rng| {
        let data = dataset(rng, 6, 12);
        let mut rtree = Rtree3D::new();
        let mut tbtree = TbTree::new();
        // Temporal interleave.
        let mut entries: Vec<LeafEntry> = Vec::new();
        for (i, t) in data.iter().enumerate() {
            for (seq, segment) in t.segments().enumerate() {
                entries.push(LeafEntry {
                    traj: TrajectoryId(i as u64),
                    seq: seq as u32,
                    segment,
                });
            }
        }
        entries.sort_by(|a, b| a.segment.start().t.total_cmp(&b.segment.start().t));
        for e in entries {
            rtree.insert(e).unwrap();
            tbtree.insert(e).unwrap();
        }
        check_invariants(&mut rtree).unwrap();
        check_invariants(&mut tbtree).unwrap();
        assert_eq!(rtree.num_entries(), tbtree.num_entries());
    });
}

#[test]
fn strtree_matches_rtree_query_results() {
    check("strtree_matches_rtree", 32, |rng| {
        let data = dataset(rng, 6, 10);
        let qi = rng.usize_below(6);
        let store = TrajectoryStore::from_trajectories(data);
        let mut rtree = Rtree3D::new();
        let mut strtree = mst::index::StrTree::new();
        for (id, t) in store.iter() {
            rtree.insert_trajectory(id, t).unwrap();
            strtree.insert_trajectory(id, t).unwrap();
        }
        check_invariants(&mut strtree).unwrap();
        let period = TimeInterval::new(0.0, 9.0).unwrap();
        let q = store.get(TrajectoryId(qi as u64)).unwrap().clone();
        let a = bfmst_search(
            &mut rtree,
            &store,
            &q,
            &period,
            &MstConfig::k(3),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let b = bfmst_search(
            &mut strtree,
            &store,
            &q,
            &period,
            &MstConfig::k(3),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let ids_a: Vec<_> = a.matches.iter().map(|m| m.traj).collect();
        let ids_b: Vec<_> = b.matches.iter().map(|m| m.traj).collect();
        assert_eq!(ids_a, ids_b);
    });
}

#[test]
fn persistence_roundtrip_preserves_query_answers() {
    check("persistence_roundtrip", 32, |rng| {
        let data = dataset(rng, 5, 8);
        let qi = rng.usize_below(5);
        let store = TrajectoryStore::from_trajectories(data);
        let mut tree = Rtree3D::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let period = TimeInterval::new(0.0, 7.0).unwrap();
        let q = store.get(TrajectoryId(qi as u64)).unwrap().clone();
        let before = bfmst_search(
            &mut tree,
            &store,
            &q,
            &period,
            &MstConfig::k(2),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let mut bytes = Vec::new();
        tree.save(&mut bytes).unwrap();
        let mut loaded = Rtree3D::load(&bytes[..]).unwrap();
        check_invariants(&mut loaded).unwrap();
        let after = bfmst_search(
            &mut loaded,
            &store,
            &q,
            &period,
            &MstConfig::k(2),
            &NoShare,
            &mut NoopSink,
        )
        .unwrap();
        let ids_before: Vec<_> = before.matches.iter().map(|m| m.traj).collect();
        let ids_after: Vec<_> = after.matches.iter().map(|m| m.traj).collect();
        assert_eq!(ids_before, ids_after);
    });
}

#[test]
fn rtree_delete_then_query_is_consistent() {
    check("rtree_delete_consistent", 32, |rng| {
        let data = dataset(rng, 5, 10);
        let kills = 1 + rng.usize_below(11);
        let kill: Vec<(u64, u32)> = (0..kills)
            .map(|_| (rng.u64_below(5), rng.u64_below(9) as u32))
            .collect();
        let store = TrajectoryStore::from_trajectories(data);
        let mut tree = Rtree3D::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let mut removed = std::collections::HashSet::new();
        for (traj, seq) in kill {
            let id = TrajectoryId(traj);
            let was_present = !removed.contains(&(id, seq));
            let deleted = tree.delete(id, seq).unwrap();
            assert_eq!(deleted, was_present);
            removed.insert((id, seq));
        }
        check_invariants(&mut tree).unwrap();
        let expected = 5 * 9 - removed.len() as u64;
        assert_eq!(tree.num_entries(), expected);
    });
}

#[test]
fn knn_segments_matches_oracle() {
    check("knn_matches_oracle", 32, |rng| {
        let data = dataset(rng, 4, 8);
        let px = rng.f64_range(-10.0, 10.0);
        let py = rng.f64_range(-10.0, 10.0);
        let store = TrajectoryStore::from_trajectories(data);
        let mut tree = Rtree3D::new();
        for (id, t) in store.iter() {
            tree.insert_trajectory(id, t).unwrap();
        }
        let window = TimeInterval::new(1.0, 6.0).unwrap();
        let point = mst::trajectory::Point::new(px, py);
        let got = mst::index::knn_segments(&mut tree, point, &window, 4).unwrap();
        // Oracle: every indexed segment, clipped, measured directly.
        let mut all: Vec<f64> = Vec::new();
        for (_, t) in store.iter() {
            for seg in t.segments() {
                if let Some(c) = seg.clip(&window) {
                    all.push(mst::index::mindist::segment_rect_mindist(
                        &c,
                        &mst::trajectory::Rect::from_point(point),
                    ));
                }
            }
        }
        all.sort_by(f64::total_cmp);
        assert_eq!(got.len(), 4.min(all.len()));
        for (g, want) in got.iter().zip(&all) {
            assert!((g.distance - want).abs() < 1e-9);
        }
    });
}
