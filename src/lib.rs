//! Umbrella crate re-exporting the MST reproduction workspace.
//!
//! See the member crates for the substance:
//! [`trajectory`](mst_trajectory), [`index`](mst_index),
//! [`search`](mst_search), [`exec`](mst_exec),
//! [`baselines`](mst_baselines), [`datagen`](mst_datagen).
#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub use mst_baselines as baselines;
pub use mst_datagen as datagen;
pub use mst_exec as exec;
pub use mst_index as index;
pub use mst_search as search;
pub use mst_trajectory as trajectory;

/// Everything a typical user needs, in one import:
/// `use mst::prelude::*;`
pub mod prelude {
    pub use mst_datagen::{td_tr, td_tr_fraction, GstdConfig, TrucksConfig};
    pub use mst_exec::{BatchExecutor, BatchQuery, QueryAnswer, ShardedDatabase};
    pub use mst_index::{
        check_invariants, knn_segments, Rtree3D, StrTree, TbTree, TrajectoryIndex,
        TrajectoryIndexWrite,
    };
    pub use mst_search::{
        bfmst_search, bfmst_search_traced, nearest_trajectories, scan_kmst, time_relaxed_kmst,
        Integration, MetricsSink, MovingObjectDatabase, MstConfig, MstMatch, NoopSink,
        PruningBound, Query, QueryMetrics, QueryProfile, TimeRelaxedConfig, TrajectoryStore,
    };
    pub use mst_trajectory::{
        Mbb, Point, SamplePoint, Segment, TimeInterval, Trajectory, TrajectoryBuilder, TrajectoryId,
    };
}
