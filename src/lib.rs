//! Umbrella crate re-exporting the MST reproduction workspace.
//!
//! See the member crates for the substance:
//! [`trajectory`](mst_trajectory), [`index`](mst_index),
//! [`search`](mst_search), [`exec`](mst_exec), [`serve`](mst_serve),
//! [`baselines`](mst_baselines), [`datagen`](mst_datagen).
//!
//! Cross-layer code that wants one error type to match on can use
//! [`Error`]: every layer's error converts into it via `From`, so `?`
//! works across trajectory → index → search → exec → serve boundaries.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
pub use mst_baselines as baselines;
pub use mst_datagen as datagen;
pub use mst_exec as exec;
pub use mst_index as index;
pub use mst_search as search;
pub use mst_serve as serve;
pub use mst_trajectory as trajectory;

/// The workspace-wide error: every layer's error enum converts into it,
/// so application code holds a single `Result<T, mst::Error>` instead of
/// one alias per crate.
#[derive(Debug)]
pub enum Error {
    /// A trajectory-model operation failed (construction, validation).
    Trajectory(mst_trajectory::TrajectoryError),
    /// An index operation failed (structure, persistence, poisoning).
    Index(mst_index::IndexError),
    /// A search failed (query/period mismatch, missing store entries,
    /// misconfigured builder).
    Search(mst_search::SearchError),
    /// Batch or pooled execution failed (configuration, lost workers).
    Exec(mst_exec::ExecError),
    /// A submission was refused by admission control (overload or
    /// shutdown) — typed backpressure, not a fault.
    Submit(mst_exec::SubmitError),
    /// The wire protocol failed (truncation, oversized frames, transport
    /// I/O).
    Wire(mst_serve::WireError),
    /// The server failed to start or serve.
    Serve(mst_serve::ServeError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Trajectory(e) => write!(f, "trajectory: {e}"),
            Error::Index(e) => write!(f, "index: {e}"),
            Error::Search(e) => write!(f, "search: {e}"),
            Error::Exec(e) => write!(f, "exec: {e}"),
            Error::Submit(e) => write!(f, "submit: {e}"),
            Error::Wire(e) => write!(f, "wire: {e}"),
            Error::Serve(e) => write!(f, "serve: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Trajectory(e) => Some(e),
            Error::Index(e) => Some(e),
            Error::Search(e) => Some(e),
            Error::Exec(e) => Some(e),
            Error::Submit(e) => Some(e),
            Error::Wire(e) => Some(e),
            Error::Serve(e) => Some(e),
        }
    }
}

impl From<mst_trajectory::TrajectoryError> for Error {
    fn from(e: mst_trajectory::TrajectoryError) -> Self {
        Error::Trajectory(e)
    }
}

impl From<mst_index::IndexError> for Error {
    fn from(e: mst_index::IndexError) -> Self {
        Error::Index(e)
    }
}

impl From<mst_search::SearchError> for Error {
    fn from(e: mst_search::SearchError) -> Self {
        Error::Search(e)
    }
}

impl From<mst_exec::ExecError> for Error {
    fn from(e: mst_exec::ExecError) -> Self {
        Error::Exec(e)
    }
}

impl From<mst_exec::SubmitError> for Error {
    fn from(e: mst_exec::SubmitError) -> Self {
        Error::Submit(e)
    }
}

impl From<mst_serve::WireError> for Error {
    fn from(e: mst_serve::WireError) -> Self {
        Error::Wire(e)
    }
}

impl From<mst_serve::ServeError> for Error {
    fn from(e: mst_serve::ServeError) -> Self {
        Error::Serve(e)
    }
}

/// Result alias over the workspace-wide [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Everything a typical user needs, in one import:
/// `use mst::prelude::*;`
pub mod prelude {
    pub use crate::{Error, Result};
    pub use mst_datagen::{td_tr, td_tr_fraction, GstdConfig, TrucksConfig};
    pub use mst_exec::{
        BatchExecutor, BatchQuery, ExecHandle, QueryAnswer, ShardedDatabase, SubmitError, Ticket,
    };
    pub use mst_index::{
        check_invariants, knn_segments, MetricTree, Rtree3D, StrTree, TbTree, TrajectoryIndex,
        TrajectoryIndexWrite,
    };
    pub use mst_search::{
        bfmst_search, nearest_trajectories, scan_kmst, time_relaxed_kmst, Integration,
        KmstSubstrate, MetricsSink, MovingObjectDatabase, MstConfig, MstMatch, NoShare, NoopSink,
        PruningBound, Query, QueryMetrics, QueryOptions, QueryProfile, Substrate,
        TimeRelaxedConfig, TrajectoryStore,
    };
    pub use mst_serve::{
        Request, Response, ServeClient, Server, ServerConfig, ServerHandle, StatsReport, WireError,
    };
    pub use mst_trajectory::{
        Mbb, Point, SamplePoint, Segment, TimeInterval, Trajectory, TrajectoryBuilder, TrajectoryId,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_error_converts_into_the_unified_enum() {
        fn trip(which: usize) -> Result<()> {
            match which {
                0 => Err(mst_search::SearchError::MisconfiguredQuery("k is zero"))?,
                1 => Err(mst_exec::ExecError::Config("no workers"))?,
                2 => Err(mst_exec::SubmitError::ShuttingDown)?,
                3 => Err(mst_serve::WireError::Truncated)?,
                4 => Err(mst_serve::ServeError::Exec(mst_exec::ExecError::Config(
                    "no workers",
                )))?,
                _ => Ok(()),
            }
        }
        assert!(matches!(trip(0), Err(Error::Search(_))));
        assert!(matches!(trip(1), Err(Error::Exec(_))));
        assert!(matches!(trip(2), Err(Error::Submit(_))));
        assert!(matches!(trip(3), Err(Error::Wire(_))));
        assert!(matches!(trip(4), Err(Error::Serve(_))));
        assert!(trip(5).is_ok());
    }

    #[test]
    fn unified_errors_render_with_a_layer_prefix_and_expose_a_source() {
        let e = Error::from(mst_exec::SubmitError::Overloaded {
            queued: 4,
            capacity: 4,
        });
        let text = e.to_string();
        assert!(text.starts_with("submit: "), "{text}");
        assert!(std::error::Error::source(&e).is_some());
    }
}
