#!/bin/bash
# Regenerates every table and figure of the paper at recorded scale.
set -e
cd "$(dirname "$0")"
BIN=target/release
echo "=== table2 (full scale) ==="
$BIN/table2 --scale 1.0 --csv results
echo "=== figure8 ==="
$BIN/figure8 --trucks 273 --trajectory 0 --csv results
echo "=== figure9 (273 trucks, 100 queries) ==="
$BIN/figure9 --trucks 273 --queries 100 --csv results
echo "=== figure10 q1/q2/q3 (full scale, 100 queries/setting) ==="
$BIN/figure10 all --scale 1.0 --queries 100 --csv results
echo "=== ablation ==="
$BIN/ablation --objects 250 --samples 2000 --queries 25 --csv results
echo "=== index comparison ==="
$BIN/index_comparison --csv results
echo "=== buffer sweep ==="
$BIN/buffer_sweep --csv results
echo "ALL EXPERIMENTS DONE"
