#!/usr/bin/env bash
# Offline correctness gate for the MST reproduction.
#
# Runs everything a reviewer needs before merging, with no network access:
#   1. formatting drift
#   2. the static-analysis framework's own test suite (lexer, rule
#      fixtures, seeded fixture trees — `cargo test -p xtask`)
#   3. the zero-dependency static-analysis pass (crates/xtask); the
#      machine-readable report is archived to results/xtask_report.json
#   4. a release build of the whole workspace
#   5. the full test suite
#   6. the index tests again with `paranoid` audits after every mutation
#   7. the observability smoke benchmark (regenerates BENCH_kmst.json and
#      fails if any metrics counter stays zero across the workload)
#   8. the batch-execution smoke benchmark (2 workers x 2 shards;
#      regenerates BENCH_throughput.json and fails on executor
#      nondeterminism, dead cross-shard pruning, or spurious degradation)
#   9. the chaos smoke test in release mode (seeded fault injection:
#      quiet schedule must be bit-identical, noisy schedule must stay
#      honest — no panics, balanced ledgers, named shard failures)
#  10. the server smoke test in release mode (real TCP loopback: a k-MST
#      answer, a malformed frame answered with a typed error, honest
#      stats counters, and a graceful drain on an ephemeral port)
#  11. the serving smoke benchmark (concurrent pipelined loopback
#      clients; regenerates BENCH_serve.json and fails on pass-to-pass
#      nondeterminism, counter drift, dead admission control, a cold
#      answer cache, or steady throughput below 520 qps)
#  12. the durability smoke benchmark (real files + fsync; regenerates
#      BENCH_wal.json and fails on a group-commit breakdown, an inexact
#      replay, lost or mangled objects after recovery, or a checkpoint
#      that fails to truncate the replay work)
#  13. the replication smoke benchmark (a live primary/replica pair over
#      loopback TCP; regenerates BENCH_repl.json and fails on a p99
#      replication lag over the gate, a catch-up that does not converge
#      bit-identically, a missed failover, or a write accepted with no
#      primary), followed by an offline --verify-store sweep of a
#      freshly written durable store
#
# Each gate prints its wall time so slow gates are easy to spot.
set -euo pipefail
cd "$(dirname "$0")"

# gate <label> <cmd...>: run one gate, timing it. A failing gate aborts
# the script (set -e) after the failure propagates out of the function.
gate() {
    local label="$1"
    shift
    echo "==> $label"
    local t0=$SECONDS
    "$@"
    echo "    [$label: $((SECONDS - t0))s]"
}

gate "cargo fmt --check" cargo fmt --check

gate "static analysis self-tests (cargo test -p xtask)" \
    cargo test -q -p xtask

# The check gate doubles as the report archiver: --json writes the
# deterministic violation report to stdout (empty array when clean)
# while human-readable diagnostics still go to stderr on failure.
xtask_check() {
    mkdir -p results
    cargo run --release -q -p xtask -- check --json >results/xtask_report.json
}
gate "static analysis (xtask check, report -> results/xtask_report.json)" \
    xtask_check

gate "cargo build --release --workspace" cargo build --release --workspace

gate "cargo test --workspace" cargo test -q --workspace

gate "cargo test -p mst-index --features paranoid" \
    cargo test -q -p mst-index --features paranoid

gate "observability smoke bench (BENCH_kmst.json)" \
    cargo run --release -q -p mst-bench --bin kmst_profile -- --smoke

gate "index shootout smoke (R-tree / TB-tree / Metric tree agree with the scan)" \
    cargo run --release -q -p mst-bench --bin index_comparison -- \
    --objects 16 --samples 200 --queries 6 --k 2 --seed 11

gate "batch executor smoke bench (BENCH_throughput.json)" \
    cargo run --release -q -p mst-bench --bin throughput -- --smoke

gate "chaos smoke (seeded fault injection)" \
    cargo test -q --release --test chaos chaos_smoke

gate "server smoke (TCP loopback, malformed frame, stats, drain)" \
    cargo test -q --release -p mst-serve --test loopback server_smoke

gate "serving smoke bench (BENCH_serve.json, >= 520 qps steady)" \
    cargo run --release -q -p mst-bench --bin serve -- --smoke --min-qps 520

gate "durability smoke bench (BENCH_wal.json, fsynced group commit + recovery)" \
    cargo run --release -q -p mst-bench --bin wal -- --smoke

gate "replication smoke bench (BENCH_repl.json, max-lag + failover gates)" \
    cargo run --release -q -p mst-bench --bin repl -- --smoke

# Seed a durable store (the server checkpoints the seed before it prints
# its port), stop the process, and sweep the store offline: the
# --verify-store path must report it clean and exit 0.
verify_store_smoke() {
    local dir store pid
    dir=$(mktemp -d)
    store="$dir/store"
    cargo run --release -q -p mst-serve -- \
        --store "$store" --objects 24 --shards 2 --port 0 \
        >"$dir/out.log" 2>"$dir/err.log" &
    pid=$!
    for _ in $(seq 1 150); do
        grep -q "listening on" "$dir/out.log" 2>/dev/null && break
        sleep 0.2
    done
    kill "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
    cargo run --release -q -p mst-serve -- --verify-store "$store"
    rm -rf "$dir"
}
gate "offline store verification (mst-serve --verify-store)" \
    verify_store_smoke

echo "ci.sh: all gates passed"
