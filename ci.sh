#!/usr/bin/env bash
# Offline correctness gate for the MST reproduction.
#
# Runs everything a reviewer needs before merging, with no network access:
#   1. formatting drift
#   2. the zero-dependency static-analysis pass (crates/xtask)
#   3. a release build of the whole workspace
#   4. the full test suite
#   5. the index tests again with `paranoid` audits after every mutation
#   6. the observability smoke benchmark (regenerates BENCH_kmst.json and
#      fails if any metrics counter stays zero across the workload)
#   7. the batch-execution smoke benchmark (2 workers x 2 shards;
#      regenerates BENCH_throughput.json and fails on executor
#      nondeterminism, dead cross-shard pruning, or spurious degradation)
#   8. the chaos smoke test in release mode (seeded fault injection:
#      quiet schedule must be bit-identical, noisy schedule must stay
#      honest — no panics, balanced ledgers, named shard failures)
#   9. the server smoke test in release mode (real TCP loopback: a k-MST
#      answer, a malformed frame answered with a typed error, honest
#      stats counters, and a graceful drain on an ephemeral port)
#  10. the serving smoke benchmark (concurrent loopback clients;
#      regenerates BENCH_serve.json and fails on cross-client
#      nondeterminism, counter drift, or dead admission control)
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> static analysis (xtask)"
cargo run --release -q -p xtask -- check

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test -q --workspace

echo "==> cargo test -p mst-index --features paranoid"
cargo test -q -p mst-index --features paranoid

echo "==> observability smoke bench (BENCH_kmst.json)"
cargo run --release -q -p mst-bench --bin kmst_profile -- --smoke

echo "==> batch executor smoke bench (BENCH_throughput.json)"
cargo run --release -q -p mst-bench --bin throughput -- --smoke

echo "==> chaos smoke (seeded fault injection)"
cargo test -q --release --test chaos chaos_smoke

echo "==> server smoke (TCP loopback, malformed frame, stats, drain)"
cargo test -q --release -p mst-serve --test loopback server_smoke

echo "==> serving smoke bench (BENCH_serve.json)"
cargo run --release -q -p mst-bench --bin serve -- --smoke

echo "ci.sh: all gates passed"
